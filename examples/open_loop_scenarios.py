#!/usr/bin/env python
"""Open-loop workloads: from one pipelined client to the scenario registry.

The seed repo's replayer was strictly closed-loop (one outstanding update
per client).  This example shows the workload subsystem that replaces it:

1. a single client driven open-loop at iodepth 8 with Poisson arrivals,
   showing in-flight updates genuinely overlapping;
2. the same cluster under an ON/OFF bursty arrival process;
3. the scenario registry — the one-liner equivalent of all of the above —
   reporting throughput and p50/p95/p99 update latency per scenario.

Run:  PYTHONPATH=src python examples/open_loop_scenarios.py
"""

import numpy as np

from repro.cluster import Cluster, ClusterConfig
from repro.harness.experiment import drain_all
from repro.sim import Simulator
from repro.traces import tencloud_trace
from repro.update import make_strategy_factory
from repro.workload import (
    OnOffArrivals,
    OpenLoopGenerator,
    PoissonArrivals,
    WorkloadSpec,
    run_all_scenarios,
)


def drive(title, spec):
    sim = Simulator()
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=8, k=4, m=2, block_size=32 * 1024, seed=1),
        make_strategy_factory(
            "tsue", unit_bytes=256 * 1024, flush_age=0.02, flush_interval=0.01
        ),
    )
    inode, file_size = 1000, 8 * 4 * 32 * 1024
    cluster.register_sparse_file(inode, file_size)
    client = cluster.add_client("client0")
    trace = tencloud_trace(file_size, spec.n_requests, cluster.rng.get("trace"))
    gen = OpenLoopGenerator(client, [(inode, trace)], cluster.rng.get("w"), spec)
    cluster.start()

    def main():
        yield sim.process(gen.run())
        yield from drain_all(cluster)

    done = sim.process(main())
    while not done.fired and sim.peek() != float("inf"):
        sim.step()
    cluster.stop()

    s = client.update_latency.summary()
    print(f"{title}")
    print(f"  completed {gen.completed} updates in {sim.now * 1e3:,.1f} ms "
          f"(peak {client.peak_inflight_updates} in flight)")
    print(f"  latency p50/p95/p99: {s['p50'] * 1e6:,.0f} / "
          f"{s['p95'] * 1e6:,.0f} / {s['p99'] * 1e6:,.0f} us")
    print(f"  parity consistent: "
          f"{all(cluster.stripe_consistent(inode, st) for st in range(8))}\n")


if __name__ == "__main__":
    drive(
        "open loop, Poisson 5k req/s, iodepth 8",
        WorkloadSpec(arrivals=PoissonArrivals(5000.0), n_requests=300, iodepth=8),
    )
    drive(
        "open loop, ON/OFF bursts (15k req/s bursts), iodepth 16",
        WorkloadSpec(
            arrivals=OnOffArrivals(burst_rate=15000.0, on_s=0.02, off_s=0.04),
            n_requests=300,
            iodepth=16,
        ),
    )
    print("scenario registry (repro bench):")
    for res in run_all_scenarios(requests_per_client=100):
        print(res.render())
