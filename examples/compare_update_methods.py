#!/usr/bin/env python
"""Compare all six update methods on a cloud-trace workload.

Run:  python examples/compare_update_methods.py [--trace ten|ali] [--m 2|3|4]

Replays the same synthetic Ten-Cloud (or Ali-Cloud) update stream through
FO, PL, PLR, PARIX, CoRD and TSUE on identical 16-node SSD clusters and
prints the Fig. 5-style comparison: aggregate IOPS, mean latency, device
operations and network traffic.
"""

import argparse

from repro.harness import ExperimentConfig, run_experiment
from repro.metrics.report import format_table

METHODS = ("fo", "pl", "plr", "parix", "cord", "tsue")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", choices=["ten", "ali"], default="ten")
    ap.add_argument("--m", type=int, choices=[2, 3, 4], default=2)
    ap.add_argument("--clients", type=int, default=24)
    ap.add_argument("--updates", type=int, default=100)
    args = ap.parse_args()

    rows = []
    tsue_iops = None
    for method in METHODS:
        cfg = ExperimentConfig(
            method=method,
            trace=args.trace,
            k=6,
            m=args.m,
            n_clients=args.clients,
            updates_per_client=args.updates,
            seed=7,
            verify=True,
        )
        res = run_experiment(cfg)
        assert res.consistent, f"{method} left an inconsistent stripe!"
        if method == "tsue":
            tsue_iops = res.agg_iops
        rows.append(
            [
                method.upper(),
                round(res.agg_iops),
                round(res.mean_latency * 1e6, 1),
                res.rw_ops,
                res.overwrite_ops,
                round(res.net_bytes / 1e6, 1),
            ]
        )
        print(f"  {method}: done ({res.n_updates} updates, verified)")

    print()
    print(
        format_table(
            ["METHOD", "IOPS", "mean lat (us)", "R/W ops", "overwrites", "net MB"],
            rows,
            title=f"Update methods on {args.trace}-cloud, RS(6,{args.m}), "
            f"{args.clients} clients",
        )
    )
    print()
    for row in rows:
        if row[0] != "TSUE":
            print(f"TSUE speedup over {row[0]:6s}: {tsue_iops / row[1]:.2f}x")


if __name__ == "__main__":
    main()
