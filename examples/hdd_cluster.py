#!/usr/bin/env python
"""TSUE on an HDD cluster with MSR-Cambridge workloads (paper §5.4).

Run:  python examples/hdd_cluster.py [--volume hm0]

On seek-bound disks the gap between sequential log appends and in-place
random updates is dramatic.  Per the paper's HDD configuration, TSUE runs
three DataLog copies and disables the DeltaLog (the harness applies this
automatically for ``device_kind="hdd"``).
"""

import argparse

from repro.harness import ExperimentConfig, run_experiment
from repro.metrics.report import format_table
from repro.traces import MSR_VOLUMES


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--volume", default="hm0", choices=sorted(MSR_VOLUMES))
    ap.add_argument("--clients", type=int, default=16)
    ap.add_argument("--updates", type=int, default=120)
    args = ap.parse_args()

    rows = []
    for method in ("fo", "pl", "plr", "parix", "tsue"):
        cfg = ExperimentConfig(
            method=method,
            trace=f"msr:{args.volume}",
            k=6,
            m=4,
            device_kind="hdd",
            n_clients=args.clients,
            updates_per_client=args.updates,
            seed=9,
            verify=True,
        )
        res = run_experiment(cfg)
        assert res.consistent, f"{method} inconsistent!"
        rows.append(
            [
                method.upper(),
                round(res.agg_iops),
                round(res.mean_latency * 1e3, 2),
                res.rw_ops,
            ]
        )
        print(f"  {method}: done")

    print()
    print(
        format_table(
            ["METHOD", "IOPS", "mean lat (ms)", "device ops"],
            rows,
            title=f"HDD cluster, MSR volume {args.volume}, RS(6,4)",
        )
    )


if __name__ == "__main__":
    main()
