#!/usr/bin/env python
"""Node failure and recovery under active update load.

Run:  python examples/failure_recovery.py [--method tsue|pl|fo]

Warms a cluster up with updates, kills the most-loaded OSD, and recovers
every block it hosted — showing the paper's §2.3.2 point: deferred parity
logs (try ``--method pl``) must be recycled before reconstruction can
begin, while TSUE's real-time recycling leaves almost nothing to drain.
Recovered bytes are verified against the pre-failure content.
"""

import argparse

import numpy as np

from repro.cluster import Cluster, ClusterConfig
from repro.recovery import recover_node
from repro.sim import AllOf, Simulator
from repro.update import make_strategy_factory

K, M, BLOCK = 6, 2, 64 * 1024


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--method", default="tsue",
                    choices=["fo", "pl", "plr", "parix", "cord", "tsue"])
    ap.add_argument("--files", type=int, default=4)
    ap.add_argument("--updates", type=int, default=80)
    args = ap.parse_args()

    sim = Simulator()
    params = {}
    if args.method == "tsue":
        params = dict(unit_bytes=256 * 1024, flush_age=0.05, flush_interval=0.02)
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=16, k=K, m=M, block_size=BLOCK, seed=1),
        make_strategy_factory(args.method, **params),
    )

    rng = np.random.default_rng(3)
    file_size = 4 * K * BLOCK  # 4 stripes per file
    clients = []
    for i in range(args.files):
        cluster.instant_load_file(
            100 + i, rng.integers(0, 256, file_size, dtype=np.uint8)
        )
        clients.append(cluster.add_client(f"app{i}"))
    cluster.start()

    def updater(client, inode):
        local = np.random.default_rng(inode)
        for _ in range(args.updates):
            off = int(local.integers(0, file_size - 4096))
            yield from client.update(
                inode, off, local.integers(0, 256, 4096, dtype=np.uint8)
            )

    procs = [
        sim.process(updater(c, 100 + i)) for i, c in enumerate(clients)
    ]
    joined = AllOf(sim, procs)
    while not joined.fired and sim.peek() != float("inf"):
        sim.step()
    print(f"warm-up: {args.files * args.updates} updates completed "
          f"at t={sim.now * 1000:.1f} ms (virtual)")

    victim = max(cluster.osds, key=lambda o: len(o.store.blocks)).name
    n_blocks = len(cluster.osd_by_name(victim).store.blocks)
    print(f"failing {victim} ({n_blocks} blocks) ...")

    result = recover_node(cluster, victim)
    cluster.stop()

    print(f"log drain before reconstruction: {result.drain_seconds * 1000:8.1f} ms")
    print(f"reconstruction:                  {result.rebuild_seconds * 1000:8.1f} ms")
    print(f"recovered {result.blocks_recovered} blocks "
          f"({result.bytes_recovered / 1e6:.1f} MB) "
          f"at {result.bandwidth_mbps:.1f} MB/s effective")
    print(f"byte-exact: {result.correct}")
    assert result.correct


if __name__ == "__main__":
    main()
