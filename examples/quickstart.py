#!/usr/bin/env python
"""Quickstart: build an ECFS cluster with TSUE, update a file, read it back.

Run:  python examples/quickstart.py

Walks the core API end to end:
1. build a 16-OSD SSD cluster running the TSUE update strategy;
2. create a file and write a full stripe through the client;
3. issue small random updates (the paper's measured path);
4. read the data back — served from TSUE's log read-cache;
5. drain the logs and verify parity consistency byte-for-byte.
"""

import numpy as np

from repro.cluster import Cluster, ClusterConfig
from repro.harness.experiment import drain_all
from repro.sim import Simulator
from repro.update import make_strategy_factory

K, M = 6, 2
BLOCK = 64 * 1024
INODE = 1


def main() -> None:
    sim = Simulator()
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=16, k=K, m=M, block_size=BLOCK, seed=0),
        make_strategy_factory(
            "tsue", unit_bytes=256 * 1024, flush_age=0.05, flush_interval=0.02
        ),
    )
    client = cluster.add_client("app")
    cluster.start()

    rng = np.random.default_rng(7)
    stripe_bytes = K * BLOCK
    initial = rng.integers(0, 256, stripe_bytes, dtype=np.uint8)

    def workload():
        # 1. create + full-stripe write (encode at the client, distribute).
        yield from client.create(INODE, stripe_bytes)
        yield from client.write(INODE, 0, initial)
        print(f"wrote one RS({K},{M}) stripe of {stripe_bytes // 1024} KiB")

        # 2. small random updates: appended to the DataLog, acked fast.
        for i in range(50):
            offset = int(rng.integers(0, stripe_bytes - 4096))
            payload = rng.integers(0, 256, 4096, dtype=np.uint8)
            yield from client.update(INODE, offset, payload)
        mean_us = client.update_latency.mean() * 1e6
        print(f"50 updates acked, mean latency {mean_us:.0f} us (virtual)")

        # 3. read-your-writes straight from the log cache.
        probe_off = int(rng.integers(0, stripe_bytes - 64))
        got = yield from client.read(INODE, probe_off, 64)
        print(f"read 64 B @ {probe_off}: first bytes {list(got[:4])}")

    done = sim.process(workload())
    while not done.fired and sim.peek() != float("inf"):
        sim.step()
    done.value  # surface any failure

    # 4. drain the three-layer log pipeline, then verify.
    drain = sim.process(drain_all(cluster))
    while not drain.fired and sim.peek() != float("inf"):
        sim.step()
    cluster.stop()

    ok = cluster.stripe_consistent(INODE, 0)
    print(f"stripe parity consistent after drain: {ok}")
    ops = cluster.total_ops()
    print(
        f"device ops: {ops.rw_ops} total, {ops.overwrite_ops} overwrites; "
        f"network: {cluster.total_net().bytes_sent / 1e6:.2f} MB"
    )
    assert ok


if __name__ == "__main__":
    main()
