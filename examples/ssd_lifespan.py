#!/usr/bin/env python
"""SSD wear under different update methods (paper §5.3.4).

Run:  python examples/ssd_lifespan.py

Replays the same Ten-Cloud update stream through each method and compares
flash wear: page writes, erase operations, and the projected endurance if
the workload ran continuously — the accounting behind the paper's claim
that TSUE extends SSD lifespan by reducing overwrites and erases.
"""

from repro.harness import ExperimentConfig, run_experiment
from repro.metrics.lifespan import endurance_years
from repro.metrics.report import format_table

METHODS = ("fo", "pl", "plr", "parix", "cord", "tsue")
DEVICE_BYTES = 400 * 10**9


def main() -> None:
    rows = []
    wear = {}
    for method in METHODS:
        cfg = ExperimentConfig(
            method=method,
            trace="ten",
            k=6,
            m=4,
            n_clients=24,
            updates_per_client=100,
            seed=5,
            verify=False,
        )
        res = run_experiment(cfg)
        wear[method] = res
        # Endurance if this (short) workload looped forever on one device.
        # The bench workload is an extreme burst (its virtual horizon is
        # well under a second), so endurance at *continuous* burst intensity
        # is short — days; report it in days.
        days = 365.25 * endurance_years(
            _wear_of(res), DEVICE_BYTES, workload_duration_s=res.horizon
        )
        rows.append(
            [method.upper(), res.page_writes, round(res.erase_ops, 1),
             round(res.overwrite_ops), f"{days:.1f}"]
        )
        print(f"  {method}: done")

    print()
    print(
        format_table(
            ["METHOD", "page writes", "erase ops", "overwrites", "endurance (days)"],
            rows,
            title="Flash wear per method (Ten-Cloud, RS(6,4), 16 SSDs)",
        )
    )
    worst = max(wear.values(), key=lambda r: r.erase_ops)
    best = min(wear.values(), key=lambda r: r.erase_ops)
    print(
        f"\nlifespan spread: best ({best.config.method}) outlasts "
        f"worst ({worst.config.method}) by {worst.erase_ops / best.erase_ops:.1f}x"
    )


def _wear_of(res):
    from repro.metrics.counters import WearModel

    w = WearModel()
    w.page_writes = res.page_writes
    w.erase_ops = res.erase_ops
    return w


if __name__ == "__main__":
    main()
