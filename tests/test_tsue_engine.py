"""Unit/integration tests for the TSUE engine internals."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.harness.experiment import drain_all
from repro.sim import Simulator
from repro.tsue.engine import DATA, DELTA, PARITY, TSUEConfig
from repro.update import make_strategy_factory

K, M, BLOCK = 4, 2, 2048


def build(seed=0, **flags):
    params = dict(unit_bytes=8 * 1024, flush_age=0.01, flush_interval=0.005)
    params.update(flags)
    sim = Simulator()
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=8, k=K, m=M, block_size=BLOCK, seed=seed,
                      client_overhead_s=0.0),
        make_strategy_factory("tsue", **params),
    )
    inode = 5
    cluster.register_sparse_file(inode, 2 * K * BLOCK)
    client = cluster.add_client("c0")
    cluster.start()
    return sim, cluster, client, inode


def run_to(sim, proc):
    while not proc.fired and sim.peek() != float("inf"):
        sim.step()
    assert proc.fired
    return proc.value


def test_config_validation():
    with pytest.raises(ValueError):
        TSUEConfig(replicas=0)
    with pytest.raises(ValueError):
        TSUEConfig(n_pools=0)
    with pytest.raises(NotImplementedError):
        TSUEConfig(compression="zstd")


def test_config_pool_kwargs_o3_off_forces_single_unit():
    cfg = TSUEConfig(use_log_pool=False, min_units=2, max_units=8)
    kw = cfg.pool_kwargs("overwrite", keep_raw=False)
    assert kw["min_units"] == kw["max_units"] == 1


def test_front_end_appends_before_parity_updates():
    """The ack path must not touch data or parity blocks."""
    sim, cluster, client, inode = build(flush_age=10.0, flush_interval=5.0)

    def one():
        yield from client.update(inode, 0, np.full(100, 7, dtype=np.uint8))

    run_to(sim, sim.process(one()))
    # No overwrites anywhere yet: only sequential log writes happened.
    assert cluster.total_ops().overwrite_ops == 0
    assert cluster.total_ops().write_ops > 0
    # But the data is readable (log overlay).
    def rd():
        return (yield from client.read(inode, 0, 100))

    got = run_to(sim, sim.process(rd()))
    assert np.all(got == 7)
    cluster.stop()


def test_replica_forward_costs_network():
    sim, cluster, client, inode = build()

    def one():
        yield from client.update(inode, 0, np.full(64, 1, dtype=np.uint8))

    run_to(sim, sim.process(one()))
    kinds = cluster.fabric.counters.by_kind
    assert any(k.startswith("tsue_replica") for k in kinds)
    cluster.stop()


def test_three_replicas_forward_twice():
    sim, cluster, client, inode = build(replicas=3)

    def one():
        yield from client.update(inode, 0, np.full(64, 1, dtype=np.uint8))

    run_to(sim, sim.process(one()))
    from repro.fs.messages import MSG_OVERHEAD

    # Two replica forwards, each charged payload + protocol overhead.
    assert cluster.fabric.counters.by_kind.get("tsue_replica", 0) == 2 * (64 + MSG_OVERHEAD)
    cluster.stop()


def test_pipeline_layers_all_exercised():
    sim, cluster, client, inode = build()
    rng = np.random.default_rng(1)

    def many():
        for _ in range(30):
            off = int(rng.integers(0, K * BLOCK - 64))
            yield from client.update(inode, off, rng.integers(0, 256, 64, dtype=np.uint8))

    run_to(sim, sim.process(many()))
    run_to(sim, sim.process(drain_all(cluster)))
    samples = {DATA: 0, DELTA: 0, PARITY: 0}
    for osd in cluster.osds:
        for layer in samples:
            samples[layer] += osd.strategy.engine.residency.samples(layer)
    cluster.stop()
    assert samples[DATA] > 0 and samples[DELTA] > 0 and samples[PARITY] > 0


def test_delta_log_off_goes_straight_to_parity_log():
    sim, cluster, client, inode = build(use_delta_log=False)

    def one():
        yield from client.update(inode, 0, np.full(64, 3, dtype=np.uint8))

    run_to(sim, sim.process(one()))
    run_to(sim, sim.process(drain_all(cluster)))
    for osd in cluster.osds:
        assert osd.strategy.engine.residency.samples(DELTA) == 0
    cluster.stop()
    assert cluster.stripe_consistent(inode, 0)


def test_m1_code_skips_delta_log():
    """With a single parity block there is no second DeltaLog host."""
    sim = Simulator()
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=8, k=4, m=1, block_size=BLOCK, seed=2,
                      client_overhead_s=0.0),
        make_strategy_factory("tsue", unit_bytes=8 * 1024, flush_age=0.01,
                              flush_interval=0.005),
    )
    inode = 6
    cluster.register_sparse_file(inode, 4 * BLOCK)
    client = cluster.add_client("c0")
    cluster.start()

    def one():
        yield from client.update(inode, 100, np.full(64, 9, dtype=np.uint8))

    run_to(sim, sim.process(one()))
    run_to(sim, sim.process(drain_all(cluster)))
    cluster.stop()
    assert cluster.stripe_consistent(inode, 0)


def test_backpressure_blocks_then_recovers():
    """A tiny pool quota forces append waits but never deadlocks."""
    sim, cluster, client, inode = build(
        unit_bytes=2 * 1024, min_units=1, max_units=1, n_pools=1
    )
    rng = np.random.default_rng(3)

    def many():
        for _ in range(40):
            off = int(rng.integers(0, K * BLOCK - 256))
            yield from client.update(
                inode, off, rng.integers(0, 256, 256, dtype=np.uint8)
            )

    run_to(sim, sim.process(many()))
    run_to(sim, sim.process(drain_all(cluster)))
    cluster.stop()
    assert cluster.stripe_consistent(inode, 0)
    assert cluster.stripe_consistent(inode, 1)


def test_read_cache_hit_skips_device():
    sim, cluster, client, inode = build(flush_age=10.0, flush_interval=5.0)

    def scenario():
        yield from client.update(inode, 50, np.full(32, 4, dtype=np.uint8))
        before = cluster.total_ops().read_ops
        got = yield from client.read(inode, 50, 32)
        after = cluster.total_ops().read_ops
        return before, after, got

    before, after, got = run_to(sim, sim.process(scenario()))
    cluster.stop()
    assert np.all(got == 4)
    assert after == before  # full overlay hit: no device read


def test_partial_read_overlays_log_on_disk_data():
    sim, cluster, client, inode = build(flush_age=10.0, flush_interval=5.0)

    def scenario():
        yield from client.update(inode, 100, np.full(16, 8, dtype=np.uint8))
        got = yield from client.read(inode, 96, 24)
        return got

    got = run_to(sim, sim.process(scenario()))
    cluster.stop()
    assert list(got[:4]) == [0, 0, 0, 0]
    assert np.all(got[4:20] == 8)
    assert list(got[20:]) == [0, 0, 0, 0]


def test_residency_append_recorded_on_front_end():
    sim, cluster, client, inode = build()

    def one():
        yield from client.update(inode, 0, np.full(64, 2, dtype=np.uint8))

    run_to(sim, sim.process(one()))
    total = sum(
        osd.strategy.engine.residency.mean_us(DATA)[0] for osd in cluster.osds
    )
    cluster.stop()
    assert total > 0


def test_engine_memory_accounting():
    sim, cluster, client, inode = build()
    engine = cluster.osds[0].strategy.engine
    assert engine.log_memory_bytes() > 0
    assert engine.peak_log_memory_bytes() >= engine.log_memory_bytes()
    cluster.stop()


def test_stop_is_idempotent_and_halts_flush():
    sim, cluster, client, inode = build()
    cluster.stop()
    cluster.stop()
    sim.run()  # no runaway flush timers keep the heap alive forever


def test_recycle_job_failure_unblocks_backpressure():
    """Regression: a crashing recycle job must not wedge the pool.

    Before the fix, a job that raised left state["left"] undecremented, so
    the unit never finished recycling, _notify_space never fired, and every
    appender waiting in _append_with_backpressure deadlocked forever.
    """
    sim, cluster, client, inode = build(
        unit_bytes=2 * 1024, min_units=1, max_units=1, n_pools=1
    )
    for osd in cluster.osds:
        eng = osd.strategy.engine

        def boom(key, pieces):
            raise RuntimeError("injected recycle failure")
            yield  # pragma: no cover - generator-ness only

        eng._recycle_data_block = boom

    rng = np.random.default_rng(5)

    def many():
        for _ in range(40):
            off = int(rng.integers(0, K * BLOCK - 256))
            yield from client.update(
                inode, off, rng.integers(0, 256, 256, dtype=np.uint8)
            )
        return "done"

    p = sim.process(many())
    # The injected error surfaces out of the kernel (via sim._crash) ...
    with pytest.raises(RuntimeError, match="injected recycle failure"):
        while not p.fired and sim.peek() != float("inf"):
            sim.step()
    # ... and the front end still drains: backpressure waiters were woken,
    # so the full update stream completes despite every data recycle failing.
    while not p.fired and sim.peek() != float("inf"):
        try:
            sim.step()
        except RuntimeError as err:
            if "injected recycle failure" not in str(err):
                raise
    assert p.fired and p.value == "done"
    assert all(
        osd.strategy.engine.pending_recycles() == 0 for osd in cluster.osds
    )
    cluster.stop()


def test_worker_split_respects_budget():
    """recycle_workers=1 must not silently spawn 3x the configured budget
    beyond the documented floor of one worker per layer (3 total)."""
    for budget, expect_total in ((1, 3), (3, 3), (4, 4), (5, 5), (8, 8), (16, 16)):
        sim, cluster, client, inode = build(recycle_workers=budget)
        eng = cluster.osds[0].strategy.engine
        counts = {layer: len(qs) for layer, qs in eng._worker_queues.items()}
        total = sum(counts.values())
        assert total == expect_total == max(3, budget)
        assert all(c >= 1 for c in counts.values())  # deadlock-freedom floor
        assert counts[DATA] >= max(counts[DELTA], counts[PARITY])
        cluster.stop()


def test_append_zone_precomputed_per_pool():
    sim, cluster, client, inode = build(n_pools=3)
    eng = cluster.osds[0].strategy.engine
    for prefix, pools in (
        ("dlog", eng.data_pools),
        ("xlog", eng.delta_pools),
        ("plog", eng.parity_pools),
    ):
        for i, pool in enumerate(pools):
            assert eng._pool_zone[id(pool)] == f"{prefix}{i}"
    cluster.stop()
