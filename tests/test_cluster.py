"""Tests for cluster assembly and placement."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig, placement
from repro.sim import Simulator
from repro.update import make_strategy_factory


def make_cluster(**kw):
    defaults = dict(n_osds=8, k=4, m=2, block_size=1024, seed=5)
    defaults.update(kw)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(**defaults), make_strategy_factory("fo"))
    return sim, cluster


def test_placement_distinct_osds_per_stripe():
    for stripe in range(20):
        idx = placement(16, 10, inode=3, stripe=stripe)
        assert len(set(idx)) == 10
        assert all(0 <= i < 16 for i in idx)


def test_placement_rotates_across_stripes():
    starts = {placement(16, 8, 1, s)[0] for s in range(50)}
    assert len(starts) > 4  # parity load spreads


def test_placement_width_validation():
    with pytest.raises(ValueError):
        placement(4, 5, 0, 0)


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(n_osds=4, k=4, m=2)
    with pytest.raises(ValueError):
        ClusterConfig(device_kind="tape")


def test_cluster_builds_nodes_and_routes():
    sim, cluster = make_cluster()
    assert len(cluster.osds) == 8
    assert cluster.mds.name == "mds"
    names = cluster.placement(7, 0)
    assert len(names) == 6
    assert cluster.osd_of_block(7, 0, 2) == names[2]


def test_replica_of_is_ring_successor():
    sim, cluster = make_cluster()
    assert cluster.replica_of("osd0") == "osd1"
    assert cluster.replica_of("osd7") == "osd0"


def test_instant_load_and_stripe_consistency():
    sim, cluster = make_cluster()
    data = np.arange(2 * 4 * 1024, dtype=np.uint8).astype(np.uint8)  # 2 stripes
    cluster.instant_load_file(42, data)
    assert cluster.stripe_consistent(42, 0)
    assert cluster.stripe_consistent(42, 1)
    # Corrupt one parity block: consistency must fail.
    names = cluster.placement(42, 0)
    osd = cluster.osd_by_name(names[4])
    osd.store.blocks[(42, 0, 4)][0] ^= 0xFF
    assert not cluster.stripe_consistent(42, 0)


def test_instant_load_size_validation():
    sim, cluster = make_cluster()
    with pytest.raises(ValueError):
        cluster.instant_load_file(1, np.zeros(100, dtype=np.uint8))


def test_sparse_file_is_consistent_by_linearity():
    sim, cluster = make_cluster()
    cluster.register_sparse_file(9, 4 * 1024 * 3)  # 3 stripes
    # All-zero data encodes to all-zero parity: consistent without bytes.
    assert cluster.stripe_consistent(9, 0)
    assert 9 in cluster.mds.files
    with pytest.raises(ValueError):
        cluster.register_sparse_file(10, 100)


def test_counter_aggregation_spans_all_osds():
    sim, cluster = make_cluster()

    def one_write(osd):
        yield from osd.store.write_range((1, 0, 0), 0, np.ones(8, dtype=np.uint8))

    for osd in cluster.osds[:3]:
        sim.process(one_write(osd))
    sim.run()
    assert cluster.total_ops().write_ops == 3
    assert cluster.total_wear().erase_ops > 0


def test_mds_classifies_first_write_vs_update():
    sim, cluster = make_cluster()
    meta = cluster.mds.register_file(5, 8192)
    assert meta.is_update(0, 100)
    fresh = cluster.mds.files[5]
    # A brand-new file region beyond the registered size is not yet written.
    assert not fresh.is_update(1 << 20, 10)
