"""Unit + property tests for IntervalSet."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logstruct import IntervalSet


def test_empty_set():
    s = IntervalSet()
    assert not s
    assert s.covered_bytes == 0
    assert not s.covers(0, 1)
    assert s.covers(5, 5)  # empty range is vacuously covered
    assert s.uncovered(0, 4) == [(0, 4)]


def test_add_and_cover():
    s = IntervalSet()
    s.add(10, 20)
    assert s.covers(10, 20)
    assert s.covers(12, 15)
    assert not s.covers(9, 11)
    assert not s.covers(19, 21)
    assert s.covered_bytes == 10


def test_adjacent_intervals_merge():
    s = IntervalSet()
    s.add(0, 5)
    s.add(5, 10)
    assert s.intervals() == [(0, 10)]


def test_overlapping_intervals_merge():
    s = IntervalSet()
    s.add(0, 6)
    s.add(4, 12)
    s.add(20, 30)
    assert s.intervals() == [(0, 12), (20, 30)]


def test_bridge_merge():
    s = IntervalSet()
    s.add(0, 5)
    s.add(10, 15)
    s.add(4, 11)
    assert s.intervals() == [(0, 15)]


def test_empty_add_is_noop():
    s = IntervalSet()
    s.add(5, 5)
    s.add(7, 3)
    assert not s


def test_uncovered_subranges():
    s = IntervalSet()
    s.add(2, 4)
    s.add(8, 10)
    assert s.uncovered(0, 12) == [(0, 2), (4, 8), (10, 12)]
    assert s.uncovered(2, 4) == []
    assert s.uncovered(3, 9) == [(4, 8)]


ops = st.lists(
    st.tuples(st.integers(0, 100), st.integers(1, 20)), min_size=0, max_size=30
)


@settings(deadline=None, max_examples=300)
@given(ops, st.integers(0, 110), st.integers(1, 30))
def test_matches_naive_set_model(adds, qstart, qlen):
    s = IntervalSet()
    shadow = set()
    for start, length in adds:
        s.add(start, start + length)
        shadow.update(range(start, start + length))
    qend = qstart + qlen
    assert s.covers(qstart, qend) == all(b in shadow for b in range(qstart, qend))
    # uncovered() partitions exactly the missing bytes, in order.
    unc = s.uncovered(qstart, qend)
    missing = sorted(b for b in range(qstart, qend) if b not in shadow)
    flat = [b for a, e in unc for b in range(a, e)]
    assert flat == missing
    # Intervals stay sorted, disjoint, non-adjacent.
    ivs = s.intervals()
    for (a1, e1), (a2, e2) in zip(ivs, ivs[1:]):
        assert e1 < a2
    assert s.covered_bytes == len(shadow)
