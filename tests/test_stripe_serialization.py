"""Per-stripe update serialization: KeyedLock units + strategy properties.

The unit half exercises :class:`repro.sim.resources.KeyedLock` directly
(FIFO ordering, reentrancy rejection, wait-time accounting).  The property
half drives pipelined concurrent same-stripe updates through every update
method and asserts the post-drain parity-consistency the locks exist to
guarantee.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterConfig
from repro.harness.experiment import drain_all
from repro.sim import AllOf, KeyedLock, Simulator
from repro.update import STRATEGIES, make_strategy_factory

K, M, BLOCK = 3, 2, 512
FILE = 2 * K * BLOCK

IN_PLACE = ("fo", "pl", "plr", "parix", "cord")
LOG_STRUCTURED = ("fl", "tsue")


# ----------------------------------------------------------------------
# KeyedLock units
# ----------------------------------------------------------------------
def test_keyed_lock_uncontended_grant_is_immediate():
    sim = Simulator()
    lock = KeyedLock(sim, name="t")
    holder = object()
    ev = lock.acquire("k", holder)
    assert ev.triggered
    assert lock.held("k") and lock.holder("k") is holder
    assert lock.acquisitions == 1 and lock.contended == 0
    assert lock.wait_times == [0.0]
    lock.release("k", holder)
    assert not lock.held("k") and lock.keys_held == 0


def test_keyed_lock_fifo_ordering():
    sim = Simulator()
    lock = KeyedLock(sim, name="t")
    order = []

    def worker(i, delay, hold):
        yield sim.timeout(delay)
        token = ("w", i)
        yield lock.acquire("stripe", token)
        order.append(i)
        yield sim.timeout(hold)
        lock.release("stripe", token)

    # Request order 0, 1, 2 (staggered arrivals, long holds force queueing).
    sim.process(worker(0, 0.0, 3.0))
    sim.process(worker(1, 0.1, 1.0))
    sim.process(worker(2, 0.2, 1.0))
    sim.run()
    assert order == [0, 1, 2]
    assert lock.acquisitions == 3
    assert lock.contended == 2
    assert lock.keys_held == 0


def test_keyed_lock_independent_keys_do_not_contend():
    sim = Simulator()
    lock = KeyedLock(sim, name="t")
    starts = []

    def worker(key, i):
        token = ("w", key, i)
        yield lock.acquire(key, token)
        starts.append((key, sim.now))
        yield sim.timeout(1.0)
        lock.release(key, token)

    sim.process(worker("a", 0))
    sim.process(worker("b", 0))
    sim.run()
    assert starts == [("a", 0.0), ("b", 0.0)]
    assert lock.contended == 0


def test_keyed_lock_rejects_reentrant_acquire():
    sim = Simulator()
    lock = KeyedLock(sim, name="t")
    holder = object()
    lock.acquire("k", holder)
    with pytest.raises(RuntimeError, match="not re-entrant"):
        lock.acquire("k", holder)
    # A queued holder re-requesting is rejected too.
    waiter = object()
    lock.acquire("k", waiter)
    with pytest.raises(RuntimeError, match="already waiting"):
        lock.acquire("k", waiter)


def test_keyed_lock_rejects_release_by_non_holder():
    sim = Simulator()
    lock = KeyedLock(sim, name="t")
    holder = object()
    with pytest.raises(RuntimeError, match="non-holder"):
        lock.release("k", holder)
    lock.acquire("k", holder)
    with pytest.raises(RuntimeError, match="non-holder"):
        lock.release("k", object())


def test_keyed_lock_wait_time_accounting():
    sim = Simulator()
    lock = KeyedLock(sim, name="t")
    waits_seen = []

    def holder_proc():
        token = "holder"
        yield lock.acquire("k", token)
        yield sim.timeout(2.5)
        lock.release("k", token)

    def waiter_proc():
        token = "waiter"
        yield sim.timeout(1.0)  # request at t=1, grant at t=2.5
        yield lock.acquire("k", token)
        waits_seen.append(sim.now)
        lock.release("k", token)

    sim.process(holder_proc())
    sim.process(waiter_proc())
    sim.run()
    assert waits_seen == [2.5]
    assert lock.wait_times == [0.0, pytest.approx(1.5)]
    assert lock.acquisitions == 2 and lock.contended == 1


# ----------------------------------------------------------------------
# strategy integration
# ----------------------------------------------------------------------
def _build(method, seed=3):
    sim = Simulator()
    params = (
        dict(unit_bytes=2048, flush_age=0.005, flush_interval=0.002)
        if method == "tsue"
        else {}
    )
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=6, k=K, m=M, block_size=BLOCK, seed=seed,
                      client_overhead_s=0.0),
        make_strategy_factory(method, **params),
    )
    cluster.register_sparse_file(1, FILE)
    client = cluster.add_client("c0")
    cluster.start()
    return sim, cluster, client


def _run_to(sim, proc):
    while not proc.fired and sim.peek() != float("inf"):
        sim.step()
    assert proc.fired
    return proc.value


def _run_pipelined(method, updates):
    """Issue every update concurrently (full pipelining), then drain."""
    sim, cluster, client = _build(method)

    def driver():
        procs = []
        for off, size, fill in updates:
            size = min(size, FILE - off)
            payload = np.full(size, fill, dtype=np.uint8)
            procs.append(client.submit_update(1, off, payload))
        yield AllOf(sim, procs)

    _run_to(sim, sim.process(driver()))
    _run_to(sim, sim.process(drain_all(cluster)))
    cluster.stop()
    return cluster


# Offsets biased into stripe 0 so concurrent same-block overlap (the race
# the per-stripe locks close) is drawn often.
updates_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=K * BLOCK - 1),
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=2,
    max_size=12,
)


@pytest.mark.parametrize("method", sorted(STRATEGIES))
@settings(
    deadline=None,
    max_examples=8,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(updates_strategy)
def test_pipelined_same_stripe_updates_stay_consistent(method, updates):
    cluster = _run_pipelined(method, updates)
    for s in range(2):
        assert cluster.stripe_consistent(1, s)


@pytest.mark.parametrize("method", sorted(STRATEGIES))
def test_hammering_one_offset_stays_consistent(method):
    """The maximal race: many concurrent updates of the exact same bytes."""
    updates = [(64, 200, fill) for fill in range(10)]
    cluster = _run_pipelined(method, updates)
    for s in range(2):
        assert cluster.stripe_consistent(1, s)
    acq = sum(o.stripe_locks.acquisitions for o in cluster.osds)
    contended = sum(o.stripe_locks.contended for o in cluster.osds)
    if method in IN_PLACE:
        # Every update serialized through one stripe's lock, and the
        # concurrent issues genuinely queued behind each other.
        assert acq == len(updates)
        assert contended > 0
        assert max(
            w for o in cluster.osds for w in o.stripe_locks.wait_times
        ) > 0.0
    else:
        # Log-structured appends commute: no locks taken, ever.
        assert acq == 0 and contended == 0


def test_active_process_tracks_the_stepping_process():
    sim = Simulator()
    seen = []

    def proc():
        seen.append(sim.active_process)
        yield sim.timeout(1.0)
        seen.append(sim.active_process)

    p = sim.process(proc())
    assert sim.active_process is None
    sim.run()
    assert seen == [p, p]
    assert sim.active_process is None


def test_nested_serialize_stripe_raises_instead_of_deadlocking():
    """A double-wrap on the same stripe would self-deadlock; the running
    process is the holder token, so the inner acquire must trip the
    KeyedLock reentrancy check instead of queueing behind itself."""
    sim, cluster, client = _build("fo")
    strat = cluster.osds[0].strategy
    key = (1, 0, 0)

    def nested():
        inner = strat.rmw_delta(key, 0, np.zeros(4, dtype=np.uint8))
        yield from strat.serialize_stripe(key, strat.serialize_stripe(key, inner))

    proc = sim.process(nested())
    with pytest.raises(RuntimeError, match="not re-entrant"):
        while not proc.fired and sim.peek() != float("inf"):
            sim.step()
        proc.value
    cluster.stop()


def test_serializes_stripes_flags():
    for name in IN_PLACE:
        assert STRATEGIES[name].serializes_stripes is True
    for name in LOG_STRUCTURED:
        assert STRATEGIES[name].serializes_stripes is False
