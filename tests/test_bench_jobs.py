"""The parallel bench orchestrator: ``--jobs N`` must be invisible.

Every scenario x method cell is an isolated simulator and a pure function
of its arguments, so fanning the rows over a process pool may change wall
time only — the merged JSON payload (minus the machine-dependent ``perf``
section) must be byte-identical to the serial reference path, with row
order independent of worker completion order.  Also covers the atomic
``--json`` write and the --jobs flag validation.
"""

import json

import pytest

from repro import cli


def _bench(tmp_path, tag, jobs, extra=()):
    out = tmp_path / f"bench-{tag}.json"
    rc = cli.main(
        [
            "bench",
            "--clients", "2",
            "--requests", "20",
            "--scenarios", "steady",
            "--methods", "tsue", "fl",
            "--recovery-scenario", "none",
            "--scale-up-scenario", "none",
            "--jobs", str(jobs),
            "--json", str(out),
            *extra,
        ]
    )
    assert rc == 0
    return json.loads(out.read_text())


def _sans_perf(payload):
    return {k: v for k, v in payload.items() if k != "perf"}


def test_jobs_output_identical_to_serial(tmp_path):
    serial = _bench(tmp_path, "serial", 1)
    pooled = _bench(tmp_path, "pooled", 3)
    assert _sans_perf(pooled) == _sans_perf(serial)
    # Both runs carry a perf section for every simulated registry row.
    assert set(pooled["perf"]) == set(serial["perf"])


def test_jobs_check_baseline_round_trip(tmp_path):
    """A --jobs N run passes --check-baseline against a serial baseline."""
    out = tmp_path / "base.json"
    args = [
        "bench", "--clients", "2", "--requests", "15",
        "--scenarios", "steady", "--methods", "tsue",
        "--recovery-scenario", "none", "--scale-up-scenario", "none",
        "--json", str(out),
    ]
    assert cli.main(args) == 0
    assert cli.main(args + ["--jobs", "2", "--check-baseline", str(out)]) == 0


def test_jobs_flag_validation(tmp_path, capsys):
    base = ["bench", "--scenarios", "steady", "--methods"]
    assert cli.main(base + ["--jobs", "0"]) == 2
    assert cli.main(base + ["--jobs", "2", "--profile",
                            str(tmp_path / "p.txt")]) == 2
    err = capsys.readouterr().err
    assert "--jobs" in err and "--profile" in err


def test_json_write_is_atomic(tmp_path, monkeypatch):
    """A crash mid-serialisation must not clobber the existing baseline."""
    out = tmp_path / "bench.json"
    out.write_text('{"sentinel": true}\n')

    def boom(*a, **k):
        raise RuntimeError("simulated crash mid-dump")

    monkeypatch.setattr(json, "dump", boom)
    with pytest.raises(RuntimeError, match="mid-dump"):
        cli.main(
            [
                "bench", "--clients", "2", "--requests", "5",
                "--scenarios", "steady", "--methods",
                "--recovery-scenario", "none", "--scale-up-scenario", "none",
                "--json", str(out),
            ]
        )
    monkeypatch.undo()
    # Old content intact, no temp litter.
    assert json.loads(out.read_text()) == {"sentinel": True}
    assert list(tmp_path.glob("*.tmp")) == []
