"""Tests for the storage device models."""

import pytest

from repro.devices import HDD, SSD, HDD_2TB_7200, SSD_DATACENTER_400GB, StorageDevice
from repro.sim import Simulator


def test_ssd_random_small_io_much_slower_than_sequential():
    sim = Simulator()
    ssd = SSD(sim)
    seq = ssd.service_time("write", 4096, sequential=True)
    rand = ssd.service_time("write", 4096, sequential=False)
    assert rand > 2.5 * seq  # the premise the paper exploits


def test_hdd_random_penalty_is_huge():
    sim = Simulator()
    hdd = HDD(sim)
    seq = hdd.service_time("read", 4096, sequential=True)
    rand = hdd.service_time("read", 4096, sequential=False)
    assert rand > 25 * seq


def test_service_time_monotone_in_size():
    sim = Simulator()
    ssd = SSD(sim)
    for seq in (True, False):
        assert ssd.service_time("read", 8192, seq) > ssd.service_time("read", 4096, seq)


def test_service_time_validation():
    sim = Simulator()
    ssd = SSD(sim)
    with pytest.raises(ValueError):
        ssd.service_time("erase", 4096, True)
    with pytest.raises(ValueError):
        ssd.service_time("read", -1, True)


def test_profile_type_enforcement():
    sim = Simulator()
    with pytest.raises(ValueError):
        SSD(sim, profile=HDD_2TB_7200)
    with pytest.raises(ValueError):
        HDD(sim, profile=SSD_DATACENTER_400GB)


def test_auto_classification_by_zone_head():
    sim = Simulator()
    ssd = SSD(sim)
    assert ssd.classify("log", 0, 100) is False  # first touch: random
    assert ssd.classify("log", 100, 50) is True  # continues
    assert ssd.classify("log", 500, 50) is False  # jump
    assert ssd.classify("log", 550, 50) is True


def test_zones_have_independent_heads():
    sim = Simulator()
    ssd = SSD(sim)
    ssd.classify("a", 0, 10)
    ssd.classify("b", 100, 10)
    assert ssd.classify("a", 10, 10) is True
    assert ssd.classify("b", 110, 10) is True


def test_read_write_advance_clock_and_count():
    sim = Simulator()
    ssd = SSD(sim)

    def proc(sim, ssd):
        yield from ssd.write(4096, zone="blk", offset=0, pattern="rand", overwrite=True)
        yield from ssd.read(4096, zone="blk", offset=0, pattern="rand")

    p = sim.process(proc(sim, ssd))
    sim.run()
    assert p.ok
    expected = ssd.service_time("write", 4096, False) + ssd.service_time(
        "read", 4096, False
    )
    assert sim.now == pytest.approx(expected)
    c = ssd.counters
    assert c.write_ops_rand == 1 and c.read_ops_rand == 1
    assert c.overwrite_ops == 1 and c.overwrite_bytes == 4096


def test_channels_parallelize_io():
    sim = Simulator()
    ssd = SSD(sim)
    n = ssd.profile.channels

    def one_io(sim, ssd):
        yield from ssd.read(4096, pattern="rand")

    for _ in range(2 * n):
        sim.process(one_io(sim, ssd))
    sim.run()
    # Two waves of `channels` concurrent commands: twice one service time.
    assert sim.now == pytest.approx(2 * ssd.service_time("read", 4096, False))


def test_hdd_few_channels_serialize():
    sim = Simulator()
    hdd = HDD(sim)
    n = hdd.profile.channels

    def one_io(sim, hdd):
        yield from hdd.read(4096, pattern="rand")

    for _ in range(3 * n):
        sim.process(one_io(sim, hdd))
    sim.run()
    assert sim.now == pytest.approx(3 * hdd.service_time("read", 4096, False))


def test_wear_random_overwrite_erases_more_than_sequential():
    sim = Simulator()
    a, b = SSD(sim, name="a"), SSD(sim, name="b")

    def do(ssd, pattern):
        for i in range(64):
            yield from ssd.write(
                4096, zone="blk", offset=i * 4096, pattern=pattern, overwrite=True
            )

    sim.process(do(a, "rand"))
    sim.process(do(b, "seq"))
    sim.run()
    assert a.erase_ops > 2 * b.erase_ops
    assert a.page_writes > b.page_writes


def test_fresh_append_wear_is_minimal():
    sim = Simulator()
    ssd = SSD(sim)

    def do(ssd):
        for i in range(16):
            yield from ssd.write(
                16384, zone="log", offset=i * 16384, pattern="seq", overwrite=False
            )

    sim.process(do(ssd))
    sim.run()
    # 16*16 KiB / 256 KiB erase blocks = 1 erase-equivalent.
    assert ssd.erase_ops == pytest.approx(1.0)


def test_hdd_has_no_flash_wear():
    sim = Simulator()
    hdd = HDD(sim)

    def do(hdd):
        yield from hdd.write(4096, pattern="rand", overwrite=True)

    sim.process(do(hdd))
    sim.run()
    assert hdd.wear.erase_ops == 0
    assert hdd.counters.overwrite_ops == 1


def test_trace_hook_sees_requests():
    sim = Simulator()
    ssd = SSD(sim)
    seen = []
    ssd.trace_hook = seen.append

    def do(ssd):
        yield from ssd.write(100, zone="z", offset=0, pattern="seq")

    sim.process(do(ssd))
    sim.run()
    assert len(seen) == 1
    assert (seen[0].op, seen[0].nbytes, seen[0].sequential) == ("write", 100, True)


def test_bad_pattern_rejected():
    sim = Simulator()
    ssd = SSD(sim)

    def do(ssd):
        yield from ssd.read(10, pattern="zigzag")

    sim.process(do(ssd))
    with pytest.raises(ValueError):
        sim.run()
