"""Tests for the open-loop workload subsystem (arrivals + generator)."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.harness.experiment import drain_all
from repro.sim import AllOf, Simulator
from repro.traces import TraceReplayer
from repro.traces.synth import TraceRecord
from repro.update import make_strategy_factory
from repro.workload import (
    ClosedLoop,
    DiurnalArrivals,
    OnOffArrivals,
    OpenLoopGenerator,
    PoissonArrivals,
    WorkloadSpec,
)

K, M, BLOCK = 4, 2, 2048


def build(seed=0, **flags):
    params = dict(unit_bytes=8 * 1024, flush_age=0.01, flush_interval=0.005)
    params.update(flags)
    sim = Simulator()
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=8, k=K, m=M, block_size=BLOCK, seed=seed,
                      client_overhead_s=0.0),
        make_strategy_factory("tsue", **params),
    )
    inode = 5
    cluster.register_sparse_file(inode, 2 * K * BLOCK)
    client = cluster.add_client("c0")
    cluster.start()
    return sim, cluster, client, inode


def run_to(sim, proc):
    while not proc.fired and sim.peek() != float("inf"):
        sim.step()
    assert proc.fired
    return proc.value


def records(n, size=64, span=K * BLOCK):
    rng = np.random.default_rng(42)
    return [
        TraceRecord(int(rng.integers(0, span - size)), size) for _ in range(n)
    ]


# ----------------------------------------------------------------------
# arrival processes
# ----------------------------------------------------------------------
def test_closed_loop_gap_is_zero():
    rng = np.random.default_rng(0)
    assert ClosedLoop().next_gap(3.0, rng) == 0.0


def test_poisson_mean_gap_matches_rate():
    rng = np.random.default_rng(1)
    arr = PoissonArrivals(rate=2000.0)
    gaps = [arr.next_gap(0.0, rng) for _ in range(5000)]
    assert np.mean(gaps) == pytest.approx(1 / 2000.0, rel=0.1)
    assert min(gaps) >= 0


def test_poisson_rejects_bad_rate():
    with pytest.raises(ValueError):
        PoissonArrivals(rate=0.0)


def test_onoff_mixes_dense_bursts_and_silences():
    rng = np.random.default_rng(2)
    arr = OnOffArrivals(burst_rate=1000.0, on_s=0.01, off_s=0.5)
    now, gaps = 0.0, []
    for _ in range(400):
        g = arr.next_gap(now, rng)
        gaps.append(g)
        now += g
    gaps = np.array(gaps)
    # Intra-burst gaps cluster near 1ms; OFF windows inject much longer ones.
    assert np.median(gaps) < 0.01
    assert gaps.max() > 0.1


def test_onoff_never_returns_negative_gap_after_stall():
    """A caller that stalls (e.g. on iodepth backpressure) can outrun the
    stored ON window; the sampler must resume from the caller's clock, not
    hand back negative gaps that silently erase the OFF silences."""
    rng = np.random.default_rng(4)
    arr = OnOffArrivals(burst_rate=1000.0, on_s=0.01, off_s=0.02)
    arr.next_gap(0.0, rng)
    now = 1.0  # stalled a full second past every stored window
    for _ in range(200):
        g = arr.next_gap(now, rng)
        assert g >= 0.0
        now += g + (0.05 if rng.random() < 0.1 else 0.0)  # occasional stalls


def test_onoff_validation():
    with pytest.raises(ValueError):
        OnOffArrivals(burst_rate=0.0, on_s=1.0, off_s=1.0)
    with pytest.raises(ValueError):
        OnOffArrivals(burst_rate=1.0, on_s=1.0, off_s=-0.1)


def test_diurnal_rate_ramps_to_peak_mid_period():
    arr = DiurnalArrivals(low=100.0, peak=4000.0, period=1.0)
    assert arr.rate(0.0) == pytest.approx(100.0)
    assert arr.rate(0.5) == pytest.approx(4000.0)
    rng = np.random.default_rng(3)
    now, times = 0.0, []
    while now < 1.0:
        now += arr.next_gap(now, rng)
        times.append(now)
    times = np.array(times)
    trough = np.sum(times < 0.25)
    crest = np.sum((times >= 0.25) & (times < 0.75))
    assert crest > 3 * trough  # most arrivals land around the peak


def test_diurnal_validation():
    with pytest.raises(ValueError):
        DiurnalArrivals(low=0.0, peak=10.0, period=1.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(low=5.0, peak=1.0, period=1.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(low=1.0, peak=2.0, period=0.0)


# ----------------------------------------------------------------------
# spec / generator validation
# ----------------------------------------------------------------------
def test_workload_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(iodepth=0)
    with pytest.raises(ValueError):
        WorkloadSpec(read_fraction=1.5)
    with pytest.raises(ValueError):
        WorkloadSpec(n_requests=-1)


def test_generator_requires_tenants_with_records():
    sim, cluster, client, inode = build()
    with pytest.raises(ValueError):
        OpenLoopGenerator(client, [], np.random.default_rng(0))
    with pytest.raises(ValueError):
        OpenLoopGenerator(
            client, [(inode, [])], np.random.default_rng(0),
            WorkloadSpec(n_requests=5),
        )
    cluster.stop()


# ----------------------------------------------------------------------
# pipelining (the acceptance-criterion overlap test)
# ----------------------------------------------------------------------
def test_iodepth_overlaps_inflight_updates():
    """Open-loop replay at iodepth > 1 keeps several updates in flight."""
    sim, cluster, client, inode = build()
    gen = OpenLoopGenerator(
        client,
        [(inode, records(30))],
        np.random.default_rng(7),
        WorkloadSpec(arrivals=ClosedLoop(), n_requests=30, iodepth=6),
    )
    done = run_to(sim, sim.process(gen.run()))
    run_to(sim, sim.process(drain_all(cluster)))
    cluster.stop()
    assert done == 30 and gen.completed == 30
    # In-flight updates genuinely overlapped, both as seen by the generator
    # and by the client's own accounting.
    assert gen.peak_inflight > 1
    assert client.peak_inflight_updates > 1
    assert gen.peak_inflight <= 6
    assert cluster.stripe_consistent(inode, 0)
    assert cluster.stripe_consistent(inode, 1)


def test_iodepth_one_never_overlaps():
    sim, cluster, client, inode = build()
    gen = OpenLoopGenerator(
        client,
        [(inode, records(15))],
        np.random.default_rng(8),
        WorkloadSpec(arrivals=ClosedLoop(), n_requests=15, iodepth=1),
    )
    run_to(sim, sim.process(gen.run()))
    cluster.stop()
    assert gen.peak_inflight == 1
    assert client.peak_inflight_updates == 1


def test_submit_update_pipelines_on_the_client():
    sim, cluster, client, inode = build()

    def two():
        a = client.submit_update(inode, 0, np.full(64, 1, dtype=np.uint8))
        b = client.submit_update(inode, 4096, np.full(64, 2, dtype=np.uint8))
        yield AllOf(sim, [a, b])

    run_to(sim, sim.process(two()))
    cluster.stop()
    assert client.peak_inflight_updates == 2
    assert len(client.update_latency) == 2


# ----------------------------------------------------------------------
# read/update mix and tenant sharding
# ----------------------------------------------------------------------
def test_read_fraction_splits_ops():
    sim, cluster, client, inode = build()
    gen = OpenLoopGenerator(
        client,
        [(inode, records(40))],
        np.random.default_rng(9),
        WorkloadSpec(arrivals=ClosedLoop(), n_requests=40, iodepth=4,
                     read_fraction=0.5),
    )
    run_to(sim, sim.process(gen.run()))
    cluster.stop()
    assert gen.completed > 0 and gen.reads_completed > 0
    assert gen.completed + gen.reads_completed == 40
    assert gen.bytes_read > 0


def test_all_reads_touch_no_parity():
    sim, cluster, client, inode = build()
    gen = OpenLoopGenerator(
        client,
        [(inode, records(10))],
        np.random.default_rng(10),
        WorkloadSpec(arrivals=ClosedLoop(), n_requests=10, read_fraction=1.0),
    )
    run_to(sim, sim.process(gen.run()))
    cluster.stop()
    assert gen.reads_completed == 10 and gen.completed == 0
    assert cluster.total_ops().overwrite_ops == 0


def test_multi_tenant_sharding_touches_every_file():
    sim, cluster, client, _ = build()
    tenants = []
    for t in range(3):
        inode = 50 + t
        cluster.register_sparse_file(inode, 2 * K * BLOCK)
        tenants.append((inode, records(20)))
    gen = OpenLoopGenerator(
        client, tenants, np.random.default_rng(11),
        WorkloadSpec(arrivals=ClosedLoop(), n_requests=45, iodepth=4),
    )
    run_to(sim, sim.process(gen.run()))
    run_to(sim, sim.process(drain_all(cluster)))
    cluster.stop()
    assert gen.completed == 45
    assert all(c > 0 for c in gen._cursors)  # every tenant drew requests
    for inode, _ in tenants:
        assert cluster.stripe_consistent(inode, 0)
        assert cluster.stripe_consistent(inode, 1)


# ----------------------------------------------------------------------
# closed-loop replayer compatibility
# ----------------------------------------------------------------------
def test_trace_replayer_is_closed_loop_generator():
    sim, cluster, client, inode = build()
    recs = records(12)
    rep = TraceReplayer(client, inode, recs, np.random.default_rng(12))
    assert isinstance(rep, OpenLoopGenerator)
    done = run_to(sim, sim.process(rep.run()))
    cluster.stop()
    assert done == 12 and rep.completed == 12
    assert rep.bytes_written == sum(r.size for r in recs)
    assert rep.peak_inflight == 1  # still strictly one outstanding update


def test_trace_replayer_payload_stream_unchanged():
    """The refactor must keep the historical one-draw-per-record RNG order
    (the harness shadow verifier re-derives payloads from a fresh stream)."""
    sim, cluster, client, inode = build()
    recs = [TraceRecord(0, 16), TraceRecord(100, 32), TraceRecord(50, 8)]
    rep = TraceReplayer(client, inode, recs, np.random.default_rng(99))
    run_to(sim, sim.process(rep.run()))
    run_to(sim, sim.process(drain_all(cluster)))

    fresh = np.random.default_rng(99)
    def rd(off, n):
        return (yield from client.read(inode, off, n))

    for rec in recs:
        expect = fresh.integers(0, 256, rec.size, dtype=np.uint8)
        got = run_to(sim, sim.process(rd(rec.offset, rec.size)))
        assert np.array_equal(got, expect)
    cluster.stop()


def test_trace_replayer_stop_at_truncates():
    sim, cluster, client, inode = build()
    rep = TraceReplayer(
        client, inode, records(50), np.random.default_rng(13), stop_at=0.0005
    )
    done = run_to(sim, sim.process(rep.run()))
    cluster.stop()
    assert 0 < done < 50


def test_stop_at_truncation_consumes_no_rng_or_cursor_state():
    """A request truncated at the deadline re-check must not have drawn its
    op: RNG draws and tenant cursors advance exactly once per *issued*
    request, so the payload stream stays re-derivable from `issued`."""
    sim, cluster, client, inode = build()
    gen = OpenLoopGenerator(
        client,
        [(inode, records(50))],
        np.random.default_rng(21),
        WorkloadSpec(arrivals=ClosedLoop(), n_requests=50, iodepth=1,
                     stop_at=0.0005),
    )
    run_to(sim, sim.process(gen.run()))
    run_to(sim, sim.process(drain_all(cluster)))
    assert 0 < gen.issued < 50  # the deadline genuinely truncated the run
    assert sum(gen._cursors) == gen.issued
    # The generator's RNG advanced once per *issued* payload and no
    # further: a fresh stream replayed `issued` times is in lockstep.
    fresh = np.random.default_rng(21)
    for rec in records(50)[: gen.issued]:
        fresh.integers(0, 256, rec.size, dtype=np.uint8)
    assert np.array_equal(
        gen.rng.integers(0, 256, 16, dtype=np.uint8),
        fresh.integers(0, 256, 16, dtype=np.uint8),
    )
    cluster.stop()
