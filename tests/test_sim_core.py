"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Interrupt, Simulator, Timeout


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_run_until_fast_forwards_idle_clock():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    t = sim.timeout(5.0)
    t.add_callback(lambda ev: fired.append(sim.now))
    sim.run(until=3.0)
    assert sim.now == 3.0 and fired == []
    sim.run()
    assert fired == [5.0]


def test_step_on_idle_simulator_raises_clear_error():
    sim = Simulator()
    with pytest.raises(RuntimeError, match="no scheduled events"):
        sim.step()
    # Same after the heap drains mid-run, not just at construction.
    sim.timeout(1.0)
    sim.run()
    with pytest.raises(RuntimeError, match="no scheduled events"):
        sim.step()


def test_run_until_in_past_raises():
    sim = Simulator()
    sim.timeout(2.0)
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_process_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return 42

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 42 and sim.now == 1.0


def test_process_joins_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(3.0)
        return "done"

    def parent(sim):
        result = yield sim.process(child(sim))
        return (sim.now, result)

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == (3.0, "done")


def test_simultaneous_events_fire_in_scheduling_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(proc(sim, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_value_and_double_trigger():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(7)
    with pytest.raises(RuntimeError):
        ev.succeed(8)
    sim.run()
    assert ev.value == 7


def test_event_fail_raises_in_waiter():
    sim = Simulator()

    def proc(sim, ev):
        try:
            yield ev
        except RuntimeError as e:
            return f"caught {e}"

    ev = sim.event()
    p = sim.process(proc(sim, ev))
    ev.fail(RuntimeError("boom"))
    sim.run()
    assert p.value == "caught boom"


def test_unhandled_process_exception_surfaces_in_run():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        raise ValueError("bug")

    sim.process(proc(sim))
    with pytest.raises(ValueError, match="bug"):
        sim.run()


def test_handled_process_exception_does_not_crash_run():
    sim = Simulator()

    def failing(sim):
        yield sim.timeout(1.0)
        raise ValueError("expected")

    def watcher(sim, target):
        try:
            yield target
        except ValueError:
            return "observed"

    target = sim.process(failing(sim))
    w = sim.process(watcher(sim, target))
    sim.run()
    assert w.value == "observed"


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def proc(sim):
        yield 5

    sim.process(proc(sim))
    with pytest.raises(TypeError, match="must yield Event"):
        sim.run()


def test_all_of_collects_values_in_order():
    sim = Simulator()

    def proc(sim):
        vals = yield AllOf(sim, [sim.timeout(3.0, "c"), sim.timeout(1.0, "a")])
        return (sim.now, vals)

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == (3.0, ["c", "a"])


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc(sim):
        vals = yield AllOf(sim, [])
        return (sim.now, vals)

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == (0.0, [])


def test_any_of_returns_first():
    sim = Simulator()

    def proc(sim):
        idx, val = yield AnyOf(sim, [sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
        return (sim.now, idx, val)

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == (1.0, 1, "fast")


def test_interrupt_raises_inside_process():
    sim = Simulator()

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            return ("interrupted", sim.now, i.cause)

    def attacker(sim, target):
        yield sim.timeout(2.0)
        target.interrupt(cause="failure")

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert v.value == ("interrupted", 2.0, "failure")


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)
        return "ok"

    p = sim.process(quick(sim))
    sim.run()
    p.interrupt()
    sim.run()
    assert p.value == "ok"


def test_call_at_runs_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.call_at(4.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.0]


def test_call_at_past_raises():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(1.0, lambda: None)


def test_stale_wakeup_after_interrupt_is_ignored():
    sim = Simulator()
    hits = []

    def victim(sim):
        try:
            yield sim.timeout(1.0)
            hits.append("timeout")
        except Interrupt:
            yield sim.timeout(5.0)
            hits.append("post-interrupt")

    v = sim.process(victim(sim))
    v.interrupt()
    sim.run()
    # The original 1.0 timeout still fires but must not resume the process.
    assert hits == ["post-interrupt"]
    assert sim.now == 5.0
