"""Property test: the full TSUE pipeline preserves consistency for
arbitrary update sequences (hypothesis-driven, small cluster)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterConfig
from repro.harness.experiment import drain_all
from repro.sim import Simulator
from repro.update import make_strategy_factory

K, M, BLOCK = 3, 2, 512
FILE = 2 * K * BLOCK

updates_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=FILE - 1),   # offset
        st.integers(min_value=1, max_value=300),        # size
        st.integers(min_value=0, max_value=255),        # fill byte
    ),
    min_size=1,
    max_size=25,
)


def _run(method, updates):
    sim = Simulator()
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=6, k=K, m=M, block_size=BLOCK, seed=3,
                      client_overhead_s=0.0),
        make_strategy_factory(method)
        if method != "tsue"
        else make_strategy_factory(
            "tsue", unit_bytes=2048, flush_age=0.005, flush_interval=0.002
        ),
    )
    cluster.register_sparse_file(1, FILE)
    client = cluster.add_client("c0")
    cluster.start()
    shadow = np.zeros(FILE, dtype=np.uint8)

    def driver():
        for off, size, fill in updates:
            size = min(size, FILE - off)
            payload = np.full(size, fill, dtype=np.uint8)
            yield from client.update(1, off, payload)
            shadow[off : off + size] = fill

    p = sim.process(driver())
    while not p.fired and sim.peek() != float("inf"):
        sim.step()
    p.value
    d = sim.process(drain_all(cluster))
    while not d.fired and sim.peek() != float("inf"):
        sim.step()
    d.value
    cluster.stop()
    return cluster, shadow


def _check(cluster, shadow):
    for s in range(2):
        names = cluster.placement(1, s)
        for j in range(K):
            lo = (s * K + j) * BLOCK
            blk = cluster.osd_by_name(names[j]).store.peek((1, s, j))
            if blk is None:
                blk = np.zeros(BLOCK, dtype=np.uint8)
            assert np.array_equal(blk, shadow[lo : lo + BLOCK])
        assert cluster.stripe_consistent(1, s)


@settings(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(updates_strategy)
def test_tsue_pipeline_consistency_property(updates):
    cluster, shadow = _run("tsue", updates)
    _check(cluster, shadow)


@settings(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(updates_strategy)
def test_parix_pipeline_consistency_property(updates):
    cluster, shadow = _run("parix", updates)
    _check(cluster, shadow)


@settings(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(updates_strategy)
def test_cord_pipeline_consistency_property(updates):
    cluster, shadow = _run("cord", updates)
    _check(cluster, shadow)
