"""Unit and property tests for GF(2^8) arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf import (
    gf_add,
    gf_div,
    gf_exp_table,
    gf_inv,
    gf_log_table,
    gf_mul,
    gf_mul_scalar,
    gf_pow,
)

elem = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


def test_exp_log_roundtrip():
    exp = gf_exp_table()
    log = gf_log_table()
    for a in range(1, 256):
        assert int(exp[log[a]]) == a


def test_tables_are_readonly():
    with pytest.raises(ValueError):
        gf_exp_table()[0] = 1


def test_add_is_xor():
    assert int(gf_add(0b1010, 0b0110)) == 0b1100


@given(elem, elem)
def test_mul_commutative(a, b):
    assert int(gf_mul(a, b)) == int(gf_mul(b, a))


@given(elem, elem, elem)
def test_mul_associative(a, b, c):
    assert int(gf_mul(gf_mul(a, b), c)) == int(gf_mul(a, gf_mul(b, c)))


@given(elem, elem, elem)
def test_distributive(a, b, c):
    left = int(gf_mul(a, gf_add(b, c)))
    right = int(gf_add(gf_mul(a, b), gf_mul(a, c)))
    assert left == right


@given(elem)
def test_mul_identity_and_zero(a):
    assert int(gf_mul(a, 1)) == a
    assert int(gf_mul(a, 0)) == 0


@given(nonzero)
def test_inverse(a):
    assert int(gf_mul(a, gf_inv(a))) == 1


def test_inv_of_zero_raises():
    with pytest.raises(ZeroDivisionError):
        gf_inv(0)


@given(elem, nonzero)
def test_div_matches_mul_by_inverse(a, b):
    assert int(gf_div(a, b)) == int(gf_mul(a, gf_inv(b)))


def test_div_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        gf_div(5, 0)


@given(nonzero, st.integers(min_value=0, max_value=600))
def test_pow_repeated_multiplication(a, n):
    expected = 1
    for _ in range(n):
        expected = int(gf_mul(expected, a))
    assert gf_pow(a, n) == expected


def test_pow_zero_cases():
    assert gf_pow(0, 0) == 1
    assert gf_pow(0, 5) == 0
    with pytest.raises(ZeroDivisionError):
        gf_pow(0, -1)


@given(nonzero)
def test_pow_negative_is_inverse_power(a):
    assert gf_pow(a, -1) == gf_inv(a)


def test_mul_scalar_vectorised_matches_elementwise():
    rng = np.random.default_rng(1)
    buf = rng.integers(0, 256, 1024, dtype=np.uint8)
    for scalar in (0, 1, 2, 37, 255):
        fast = gf_mul_scalar(scalar, buf)
        slow = np.array([int(gf_mul(scalar, int(b))) for b in buf], dtype=np.uint8)
        assert np.array_equal(fast, slow)


def test_mul_scalar_rejects_out_of_field():
    with pytest.raises(ValueError):
        gf_mul_scalar(256, np.zeros(4, dtype=np.uint8))


def test_mul_broadcasts_arrays():
    a = np.array([1, 2, 3], dtype=np.uint8)
    b = np.uint8(7)
    out = gf_mul(a, b)
    assert out.shape == (3,)
    assert int(out[0]) == 7


@given(st.lists(elem, min_size=1, max_size=64), nonzero)
def test_scalar_distributes_over_xor_buffers(data, scalar):
    buf = np.array(data, dtype=np.uint8)
    other = buf[::-1].copy()
    left = gf_mul_scalar(scalar, buf ^ other)
    right = gf_mul_scalar(scalar, buf) ^ gf_mul_scalar(scalar, other)
    assert np.array_equal(left, right)
