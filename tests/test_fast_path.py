"""Fast-path regression suite: kernel sleeps, resource fast paths, the
projected-completion data plane, chunked sample storage — and above all the
determinism gates that pin the fast engine to the historical results.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logstruct.index import Segment, _covered_runs, _interval_union
from repro.metrics.latency import LatencyRecorder, SampleBuffer
from repro.sim import KeyedLock, Resource, Simulator
from repro.sim.core import At
from repro.workload.scenarios import run_scenario


# ----------------------------------------------------------------------
# kernel: float sleeps, At sleeps, immediate queue ordering
# ----------------------------------------------------------------------
def test_float_yield_sleeps_without_event():
    sim = Simulator()

    def proc():
        yield 1.5
        yield 0.0  # immediate-queue hop, still a valid sleep
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 1.5


def test_sim_sleep_validates_and_sleeps():
    sim = Simulator()

    def proc():
        yield sim.sleep(2)  # int coerced to float by the public helper
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 2.0
    with pytest.raises(ValueError, match="negative sleep"):
        sim.sleep(-0.1)


def test_int_yield_is_still_a_type_error():
    sim = Simulator()

    def proc():
        yield 5

    sim.process(proc())
    with pytest.raises(TypeError, match="must yield Event"):
        sim.run()


def test_negative_float_sleep_fails_the_process():
    sim = Simulator()

    def proc():
        yield -1.0

    sim.process(proc())
    with pytest.raises(ValueError, match="negative sleep"):
        sim.run()


def test_at_wakes_at_exact_absolute_time():
    sim = Simulator()

    def proc():
        yield At(2.5)
        return sim.now

    p = sim.process(proc())
    sim.run()
    # The exact float, not now + (2.5 - now).
    assert p.value == 2.5


def test_at_in_the_past_fails_the_process():
    sim = Simulator()

    def proc():
        yield 1.0
        yield At(0.5)

    sim.process(proc())
    with pytest.raises(ValueError, match="in the past"):
        sim.run()


def test_mixed_zero_delay_and_timer_ordering_is_time_seq():
    """Immediate-queue events interleave with same-time heap events in
    strict (time, seq) order — the contract the heap bypass must keep."""
    sim = Simulator()
    order = []

    def a():
        yield sim.timeout(1.0)
        order.append("timer")

    def b():
        yield 1.0
        order.append("sleep")
        ev = sim.event()
        ev.succeed()
        yield ev
        order.append("zero-delay")

    sim.process(a())  # scheduled first -> smaller seq at t=1.0
    sim.process(b())
    sim.run()
    assert order == ["timer", "sleep", "zero-delay"]


def test_interrupt_during_float_sleep_discards_stale_wake():
    from repro.sim import Interrupt

    sim = Simulator()
    hits = []

    def victim():
        try:
            yield 1.0
            hits.append("slept")
        except Interrupt:
            yield 5.0
            hits.append("post-interrupt")

    v = sim.process(victim())
    v.interrupt()
    sim.run()
    assert hits == ["post-interrupt"]
    assert sim.now == 5.0


def test_events_fired_counter_counts_transitions():
    sim = Simulator()

    def proc():
        yield 1.0
        yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    # boot wake + float sleep wake + timeout event + process-completion
    # event = 4 transitions.
    assert sim.events_fired == 4


# ----------------------------------------------------------------------
# Resource: uncontended fast path vs FIFO contention
# ----------------------------------------------------------------------
def test_try_acquire_takes_free_slot_and_respects_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    assert res.try_acquire() and res.try_acquire()
    assert res.in_use == 2
    assert not res.try_acquire()
    res.release()
    assert res.in_use == 1


def test_use_fast_path_is_wall_identical_to_request_release():
    """Uncontended use() costs the same virtual time as the event path."""
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def via_use():
        yield from res.use(2.0)
        return sim.now

    p = sim.process(via_use())
    sim.run()
    assert p.value == 2.0 and res.in_use == 0


def test_use_fifo_order_preserved_under_contention():
    """Waiters queue FIFO behind fast-path holders and each other."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def worker(i, delay):
        yield sim.timeout(delay)
        t0 = sim.now
        yield from res.use(1.0)
        spans.append((i, t0, sim.now))

    for i, d in enumerate((0.0, 0.1, 0.2)):
        sim.process(worker(i, d))
    sim.run()
    assert [s[0] for s in spans] == [0, 1, 2]
    assert [s[2] for s in spans] == [1.0, 2.0, 3.0]
    assert res.in_use == 0 and res.queue_len == 0


def test_use_queue_accounting_under_contention():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def hold():
        yield from res.use(5.0)

    def probe():
        yield sim.timeout(1.0)
        assert res.in_use == 1
        assert res.queue_len == 1  # the second holder is queued

    sim.process(hold())
    sim.process(hold())
    sim.process(probe())
    sim.run()
    assert res.in_use == 0 and res.queue_len == 0


def test_keyedlock_try_acquire_accounting_matches_acquire():
    sim = Simulator()
    lock = KeyedLock(sim)
    assert lock.try_acquire("k", "h1")
    assert lock.acquisitions == 1 and lock.wait_times == [0.0]
    assert not lock.try_acquire("k", "h2")
    with pytest.raises(RuntimeError, match="not re-entrant"):
        lock.try_acquire("k", "h1")
    lock.release("k", "h1")
    assert not lock.held("k")


# ----------------------------------------------------------------------
# projected-completion data plane == event data plane
# ----------------------------------------------------------------------
def test_fast_dataplane_reproduces_event_dataplane_exactly():
    """The whole point: same virtual-time results, fewer kernel events.

    Runs a small steady scenario through both planes via the config knob
    and requires bit-identical simulated outputs.
    """
    from repro.harness.experiment import (
        aggregate_update_latency,
        build_cluster,
        drain_all,
        drive_to_completion,
    )
    from repro.workload.generator import OpenLoopGenerator, WorkloadSpec
    from repro.workload.arrival import PoissonArrivals
    from repro.workload.scenarios import scenario_config

    def run(fast):
        cfg = scenario_config(
            seed=3, n_clients=2, requests_per_client=60,
            fast_dataplane=fast,
        )
        cluster = build_cluster(cfg)
        sim = cluster.sim
        gens = []
        from repro.harness.experiment import make_trace

        for i in range(cfg.n_clients):
            client = cluster.add_client(f"client{i}")
            inode = 1000 + i
            cluster.register_sparse_file(inode, cfg.file_size)
            trace = make_trace(cfg, cluster.rng.get(f"trace{i}.0"))
            spec = WorkloadSpec(
                arrivals=PoissonArrivals(rate=4000.0),
                n_requests=60, iodepth=8,
            )
            gens.append(OpenLoopGenerator(
                client, [(inode, trace)], cluster.rng.get(f"workload{i}"), spec
            ))
        cluster.start()

        def main():
            from repro.sim import AllOf

            procs = [sim.process(g.run()) for g in gens]
            yield AllOf(sim, procs)
            horizon = sim.now
            yield from drain_all(cluster)
            return horizon

        horizon = drive_to_completion(sim, sim.process(main()))
        cluster.stop()
        agg = aggregate_update_latency(cluster.clients)
        return (
            horizon,
            agg.mean(),
            tuple(agg.percentiles((50.0, 95.0, 99.0))),
            sim.events_fired,
        )

    slow = run(False)
    fast = run(True)
    assert fast[:3] == slow[:3], "projected plane changed simulated results"
    assert fast[3] < slow[3], "projected plane should fire fewer events"


# ----------------------------------------------------------------------
# determinism regression: bit-identical scenario reruns
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["steady", "hot_stripe"])
def test_scenario_rerun_is_bit_identical(name):
    a = run_scenario(name, n_clients=2, requests_per_client=50, method="fo")
    b = run_scenario(name, n_clients=2, requests_per_client=50, method="fo")
    da, db = a.to_dict(), b.to_dict()
    assert da == db
    # Wall-clock measurement must never leak into the deterministic row.
    assert "wall_s" not in da and "perf" not in da
    assert a.perf is not None and a.perf["events"] == b.perf["events"]


def test_scale_up_scenario_native_and_overridden_sizes():
    from repro.workload.scenarios import SCENARIOS

    sc = SCENARIOS["scale_up"]
    assert sc.default_clients >= 32 and sc.default_requests >= 2000
    # Explicit scale always wins (CI smokes shrink it like any other row).
    res = run_scenario("scale_up", n_clients=2, requests_per_client=20)
    assert res.n_clients == 2
    assert res.updates + res.reads == 40
    assert res.consistent


# ----------------------------------------------------------------------
# helpers: interval union, sample buffer
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(0, 60), st.integers(1, 12)), min_size=0, max_size=6
    ),
    st.integers(0, 60),
    st.integers(1, 12),
)
@settings(max_examples=200, deadline=None)
def test_interval_union_matches_bitmap_reference(old, noff, nlen):
    # Build a disjoint, sorted, non-adjacent segment list the way the
    # index maintains it: insert ranges into a coverage bitmap and read
    # maximal runs back.
    cover = np.zeros(96, dtype=bool)
    for off, ln in old:
        cover[off : off + ln] = True
    base_runs = _covered_runs(cover)
    segs = [Segment(a, np.zeros(b - a, dtype=np.uint8)) for a, b in base_runs]
    # The candidate group the merge would select: overlapping-or-adjacent.
    group = [s for s in segs if s.offset <= noff + nlen and s.end >= noff]
    if not group:
        return  # _merge_into only calls with a non-empty group
    cover2 = np.zeros(96, dtype=bool)
    for s in group:
        cover2[s.offset : s.end] = True
    cover2[noff : noff + nlen] = True
    lo = min(group[0].offset, noff)
    expect = [(a - lo, b - lo) for a, b in _covered_runs(cover2)]
    got = _interval_union(group, noff - lo, noff + nlen - lo, lo)
    assert got == expect


def test_sample_buffer_behaves_like_a_list():
    buf = SampleBuffer()
    assert len(buf) == 0 and not buf
    vals = [float(i) * 0.1 for i in range(10000)]
    for v in vals[:5000]:
        buf.append(v)
    buf.extend(vals[5000:])
    assert len(buf) == len(vals)
    assert list(buf) == vals
    assert buf[0] == vals[0] and buf[-1] == vals[-1]
    assert buf.running_sum() == sum(vals)
    assert buf.max() == max(vals)
    other = SampleBuffer()
    other.extend(buf)  # bulk chunk-copy path
    assert list(other) == vals


def test_latency_recorder_matches_list_semantics_exactly():
    import random

    rng = random.Random(7)
    samples = [rng.random() * 1e-3 for _ in range(4097)]
    rec = LatencyRecorder("t")
    ref = []
    t = 0.0
    for s in samples:
        t += s
        rec.record(t, s)
        ref.append(s)
    assert rec.mean() == sum(ref) / len(ref)
    import math

    data = sorted(ref)
    n = len(data)
    for q in (50.0, 95.0, 99.0, 0.0, 100.0):
        expect = data[min(n - 1, max(0, math.ceil(q / 100.0 * n) - 1))]
        assert rec.percentile(q) == expect
