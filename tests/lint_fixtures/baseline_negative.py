"""Known-negative corpus for the baseline hygiene rules: nothing fires."""

import json
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:
    from collections import OrderedDict  # only used in string-typed hints

__all__ = ["dump", "generator_stub"]


def dump(values: List[int], mapping: "OrderedDict") -> str:
    return json.dumps(list(values))


def conditional_return(x):
    if x > 0:
        return x
    return -x  # reachable: the return above is conditional


def generator_stub():
    raise NotImplementedError("overridden in subclasses")
    yield  # the make-this-a-generator idiom is exempt
