"""Known-positive corpus for the determinism rules.

Every construct here must produce a finding; ``tests/test_lint.py``
asserts the exact rules and lines.
"""

import os
import random
import time as _time
import uuid
from datetime import datetime


def wallclock_feeds_output():
    return _time.perf_counter()  # det-wallclock (alias-resolved)


def wallclock_datetime():
    return datetime.now()  # det-wallclock


def entropy_urandom():
    return os.urandom(8)  # det-entropy


def entropy_uuid4():
    return str(uuid.uuid4())  # det-entropy


def entropy_module_rng():
    return random.random()  # det-entropy (module-level RNG, unseeded)


def set_order_iteration(keys):
    out = []
    for k in {k for k in keys}:  # det-set-order
        out.append(k)
    return out


def set_order_materialize(a, b):
    return list(set(a) | set(b))  # det-set-order
