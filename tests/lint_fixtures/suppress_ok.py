"""Suppression corpus: every violation here carries a reasoned allow().

Linting this file must produce zero active findings (the suppressed ones
are still reported when asked for, with their reasons).  The docstring
mention of ``# repro-lint: allow(det-entropy) -- looks real`` must NOT
count: suppressions live in comments, not strings.
"""

import os
import time as _time


def measured():
    # repro-lint: allow(det-wallclock) -- machine-local measurement fixture
    return _time.perf_counter()


def salted():
    return os.urandom(4)  # repro-lint: allow(det-entropy) -- fixture exercising same-line suppression
