"""Known-negative corpus for the payload-plane discipline rule.

Plane branches in non-generators (constructors, materialization helpers)
are exactly where the discipline says the decision belongs; generators
may branch on anything that is not a plane flag.
"""


class Store:
    def __init__(self, sim, ghost=False):
        # Plane bound once, at construction: the blessed pattern.
        if ghost:
            self._new_block = self._new_ghost_block
        else:
            self._new_block = self._new_byte_block

    def _new_ghost_block(self):
        return None

    def _new_byte_block(self):
        return bytearray(16)


def as_payload_helper(data, ghost_dataplane):
    # Non-generator materialization helper: dispatch is allowed here.
    if ghost_dataplane:
        return None
    return bytes(data)


def generator_branches_on_other_flags(self, cost):
    if self.fast_plane:  # not a plane flag: clean
        yield cost
    else:
        yield from self.slow_path(cost)


def generator_mentions_ghost_root_only(ghostwriter):
    # The *last* dotted component names the flag; `ghostwriter.page`
    # is not a plane flag.
    if ghostwriter.page:
        yield 1.0


def generator_with_nested_helper(self, data):
    def pick(ghost):
        return None if ghost else data

    yield pick(self.cfg_ghost_off())
