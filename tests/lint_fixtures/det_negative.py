"""Known-negative corpus for the determinism rules: nothing here fires."""

import random


def virtual_time(sim):
    return sim.now  # virtual clock, not wall clock


def seeded_rng(seed):
    return random.Random(seed)  # explicit seed: reproducible


def sorted_set_iteration(keys):
    out = []
    for k in sorted(set(keys)):  # sorted() pins a total order
        out.append(k)
    return out


def set_membership_only(keys, probe):
    seen = set(keys)  # building/probing a set is fine; iterating it isn't
    return probe in seen
