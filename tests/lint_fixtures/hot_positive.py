"""Known-positive corpus for the hot-path hygiene rules.

Only meaningful when linted with a ``LintConfig`` whose
``hot_module_suffixes`` includes this file — the test does exactly that.
"""


def transition(self, event):
    label = f"event {event}"  # hot-fstring
    cb = lambda ev: ev.fire()  # noqa: E731  # hot-closure
    pending = [e for e in self.waiting if e.armed]  # hot-alloc
    return label, cb, pending


def formats_percent(self, n):
    return "events: %d" % n  # hot-fstring (%-formatting)


def formats_method(self, n):
    return "events: {}".format(n)  # hot-fstring (str.format)
