"""Known-positive corpus for the payload-plane discipline rule.

Every branch here tests a plane flag *inside a generator function*;
``tests/test_lint.py`` asserts the exact rule and count.
"""


def ghost_if_in_generator(self, key, data):
    if self.ghost:  # plane-branch (If on an attribute flag)
        yield 0.0
    else:
        yield from self.device.write(data.size)


def ghost_ifexp_in_generator(cfg, cost):
    charge = 0.0 if cfg.ghost_dataplane else cost  # plane-branch (IfExp)
    yield charge


def ghost_while_in_generator(store, ghost_mode):
    while not ghost_mode:  # plane-branch (While on a bare name)
        yield 0.1
