"""Known-negative corpus for the lock-discipline rules: nothing fires.

Includes the rules' deliberate lexical boundaries: helpers invoked from
inside a wrapped body are out of scope unless they follow the
``*_locked`` naming convention, and log-structured strategies that do not
declare ``serializes_stripes`` are exempt wholesale (appends commute).
"""


class GoodStrategy:
    serializes_stripes = True

    def apply_update(self, key, offset, data):
        yield from self.serialize_stripe(
            key, self.rmw_delta(key, offset, data)  # wrapped: fine
        )

    def _apply_locked(self, key, offset, data):
        # Under the lock by convention; pure compute + device I/O (the
        # modelled cost of RMW), no blocking yield points.
        yield from self.rmw_delta(key, offset, data)

    def _throttle_locked(self, key, offset, data):
        # Fail-slow degradation/heal are instantaneous state flips, not
        # yield points — legal inside the critical section.
        self.osd.device.degrade(2.0)
        yield from self.rmw_delta(key, offset, data)
        self.osd.device.heal()

    def drain(self, phase=0):
        # Drain runs behind the harness post-workload barrier: exempt.
        yield from self.rmw_delta(0, 0, None)


class LogStructured:
    # No serializes_stripes declaration: appends commute, no lock contract.
    def apply_update(self, key, offset, data):
        yield from self.rmw_delta(key, offset, data)
