"""Suppression corpus: every allow() here is itself a finding."""

import os
import time as _time


def missing_reason():
    # repro-lint: allow(det-wallclock)
    return _time.perf_counter()


def stale_allow():
    # repro-lint: allow(det-entropy) -- nothing on the next line draws entropy
    return 7


def wrong_rule():
    # repro-lint: allow(det-wallclock) -- suppresses the wrong rule, so both fire
    return os.urandom(4)
