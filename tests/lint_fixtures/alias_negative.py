"""Known-negative corpus for the zero-copy aliasing rules: nothing fires."""


class GoodConsumer:
    def consume_before_yield(self, key, offset, n):
        view = yield from self.store.read_range(key, offset, n)
        total = view.sum()  # consumed synchronously: still valid
        yield self.sim.sleep(1.0)
        return total

    def snapshot_before_yield(self, key, offset, n):
        view = yield from self.store.read_range(key, offset, n)
        view = view.copy()  # explicit snapshot detaches from the buffer
        yield self.sim.sleep(1.0)
        return view.sum()

    def kernel_peek_is_a_float(self):
        t = self.sim.peek()  # zero-arg peek: next event time, not a view
        yield self.sim.sleep(1.0)
        return t

    def snapshot_on_attribute(self, key):
        self.cached = self.store.peek(key).copy()  # stores a copy, fine
