"""Known-positive corpus for the lock-discipline rules."""


class BadStrategy:
    serializes_stripes = True

    def apply_update(self, key, offset, data):
        # RMW with no serialize_stripe wrapper anywhere in the method.
        yield from self.rmw_delta(key, offset, data)  # lock-rmw-unserialized

    def nested_wrap(self, key, body):
        yield from self.serialize_stripe(
            key,
            self.serialize_stripe(key, body),  # lock-nested-serialize
        )

    def _update_locked(self, key, body):
        # Already under the lock by naming convention: re-wrapping
        # self-deadlocks, and the RPC stretches the critical section.
        yield from self.serialize_stripe(key, body)  # lock-nested-serialize
        yield from self.osd.rpc("peer", "ship", {})  # lock-yield-while-locked

    def blocking_in_wrapper_body(self, key, data):
        yield from self.serialize_stripe(
            key, self.sim.sleep(1.0)  # lock-yield-while-locked
        )

    def _flip_locked(self, key):
        # Fencing on a migrating stripe parks the op for the whole copy
        # window — never while holding the stripe lock.
        yield from self.client._migration_wait(0, [0])  # lock-yield-while-locked
