"""Known-negative corpus for the hot-path hygiene rules: nothing fires.

Cold subtrees (raise statements, ``fail(...)``/``_crash(...)`` call
arguments, ``__repr__``) are exempt by construction, not by suppression.
"""


def transition(self, event):
    self.count += 1
    if event.state != 2:
        raise RuntimeError(f"bad state {event.state!r}")  # inside raise: cold
    return self.count


def dies(self, process, target):
    process.fail(TypeError(
        f"process {process.name!r} yielded {target!r}"  # fail() args: cold
    ))


class Record:
    def __repr__(self):
        return f"Record({self.value!r})"  # __repr__ is a debug aid: cold
