"""Fixture: malformed and multi-rule suppression comments.

The empty ``allow()`` is a syntax finding (and suppresses nothing, so
the entropy call under it stays active); the space-separated rule list
is valid and both named rules are consumed by the combined line.
"""

import os
import time

# repro-lint: allow() -- forgot to name the rules
x = os.urandom(4)

t = os.urandom(int(time.time()))  # repro-lint: allow(det-entropy det-wallclock) -- fixture: space-separated rule list, both rules fire on this line
