"""Known-positive corpus for the zero-copy aliasing rules."""


class BadConsumer:
    def stale_view(self, key, offset, n):
        view = yield from self.store.read_range(key, offset, n)
        yield self.sim.sleep(1.0)  # any process may overwrite the buffer now
        return view.sum()  # alias-view-across-yield

    def stale_peek(self, key):
        data = self.store.peek(key)  # keyed peek returns a view
        yield self.osd.rpc("peer", "ping", {})
        return bytes(data)  # alias-view-across-yield

    def escaping_view(self, key):
        self.cached = self.store.peek(key)  # alias-view-escape
