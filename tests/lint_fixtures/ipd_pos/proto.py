"""ipd positive fixture: protocol drift.

``ping`` is sent but never registered (unhandled message); ``pong`` is
registered but never sent anywhere in the package (dead handler).
``append`` is registered here and sent by ``net.ship_sync`` — matched.
"""


class Node:
    def boot(self):
        self.register("pong", self._h_pong)
        self.register("append", self._h_append)

    def ping(self):
        reply = yield from self.rpc("peer", "ping", {})
        return reply

    def _h_pong(self, msg):
        return msg

    def _h_append(self, msg):
        return msg
