"""ipd positive fixture: a helper whose blocking is only visible
transitively — no per-file rule fires anywhere in this module."""


def ship_sync(host, key, data):
    reply = yield from host.rpc("peer", "append", {"k": key, "d": data})
    return reply
