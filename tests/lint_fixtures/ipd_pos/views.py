"""ipd positive fixture: a zero-copy view obtained through a helper
return and read after a yield — invisible to the per-file alias rule."""


def latest(store, key):
    return store.read_range(key, 0, 64)


class Scanner:
    def scan(self, store, key):
        v = latest(store, key)
        yield 1
        return int(v.sum())
