"""ipd positive fixture: transitive blocking under the stripe lock.

``on_update`` runs ``_apply_locked`` inside the critical section;
``_apply_locked`` calls a same-package helper whose body blocks.  The
per-file lock rule sees no blocking tail at either site — only the
summary does.
"""

from ipd_pos import net


class Strategy:
    serializes_stripes = True

    def serialize_stripe(self, key, body):
        yield key
        yield from body

    def on_update(self, key, data):
        yield from self.serialize_stripe(key, self._apply_locked(key, data))

    def _apply_locked(self, key, data):
        yield from net.ship_sync(self, key, data)
