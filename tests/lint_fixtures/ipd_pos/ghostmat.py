"""ipd positive fixture: byte materialization reachable from a
ghost-plane entry point with no plane dispatch on the path."""

import numpy as np


class Ingest:
    def on_update(self, key, data):
        return pack(data)


def pack(data):
    return np.asarray(data)
