"""ipd positive fixture: wall-clock taint reaching a bench-row producer
through a helper call — the producer itself contains no clock read."""

import time


def _stamp():
    return time.time()


class Row:
    def to_dict(self):
        return {"t": _stamp()}
