"""Known-positive corpus for the baseline hygiene rules."""

import json  # dead-import
from typing import Dict, List  # dead-import x2 (neither name is read)


def early_return(x):
    return x + 1
    print("never runs")  # unreachable-code


def raises(x):
    raise ValueError(x)
    x += 1  # unreachable-code
