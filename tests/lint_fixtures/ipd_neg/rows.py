"""ipd negative fixture: the clock read carries an audited det allow —
compositional suppression clears the taint summary, so the row producer
calling the helper is not flagged either."""

import time


def _stamp():
    # repro-lint: allow(det-wallclock) -- fixture: host-side perf section, never written into a bench row
    return time.time()


class Row:
    def to_dict(self):
        return {"t": _stamp()}
