"""ipd negative fixture: an in-project rpc transport, blocking
internally — the unique definer the unknown-receiver join resolves."""


class Host:
    def rpc(self, dst, kind, payload):
        yield from self.link.timeout(1.0)
        return kind, payload
