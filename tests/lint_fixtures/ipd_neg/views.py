"""ipd negative fixture: helper views consumed synchronously before the
yield, or snapshotted — the summary-based lifetime scan stays silent."""


def latest(store, key):
    return store.read_range(key, 0, 64)


class Scanner:
    def scan(self, store, key):
        v = latest(store, key)
        total = int(v.sum())
        yield 1
        return total

    def scan_snapshot(self, store, key):
        v = latest(store, key)
        v = v.copy()
        yield 1
        return int(v.sum())
