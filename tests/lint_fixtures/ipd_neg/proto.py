"""ipd negative fixture: every sent kind is registered, every handler
has a sender (``append`` is sent by ``strategy._apply_locked``)."""


class Node:
    def boot(self):
        self.register("append", self._h_append)
        self.register("ping", self._h_ping)

    def ping(self):
        reply = yield from self.rpc("peer", "ping", {})
        return reply

    def _h_append(self, msg):
        return msg

    def _h_ping(self, msg):
        return msg
