"""ipd negative fixture: the lock-held round trip carries an audited
allow, so neither the per-file rule nor the summary flags its callers —
the suppressed call edge must not propagate MAY_BLOCK into
``_apply_locked`` (and from there to ``on_update``'s in-lock site)."""


class Strategy:
    serializes_stripes = True

    def serialize_stripe(self, key, body):
        yield key
        yield from body

    def on_update(self, key, data):
        yield from self.serialize_stripe(key, self._apply_locked(key, data))

    def _apply_locked(self, key, data):
        # repro-lint: allow(lock-yield-while-locked) -- fixture: audited protocol round trip that must stay under the stripe lock
        reply = yield from self.host.rpc("peer", "append", {"k": key, "d": data})
        return reply
