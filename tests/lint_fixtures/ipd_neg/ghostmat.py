"""ipd negative fixture: the materializing helper dispatches on the
plane first, so ghost reachability stops there by contract."""

import numpy as np


def is_ghost(data):
    return getattr(data, "nbytes", None) == 0


class Ingest:
    def on_update(self, key, data):
        return pack(data)


def pack(data):
    if is_ghost(data):
        return data
    return np.asarray(data)
