"""Tests for LogUnit lifecycle and accounting."""

import numpy as np
import pytest

from repro.logstruct import LogUnit, UnitState
from repro.logstruct.unit import ENTRY_HEADER_BYTES


def arr(n, fill=0):
    return np.full(n, fill, dtype=np.uint8)


def test_capacity_validation():
    with pytest.raises(ValueError):
        LogUnit(capacity=ENTRY_HEADER_BYTES)


def test_append_consumes_raw_space_even_when_index_merges():
    u = LogUnit(capacity=1024, policy="overwrite")
    assert u.append("b", 0, arr(100), now=0.0)
    assert u.append("b", 0, arr(100), now=1.0)  # same place: index merges
    assert u.used == 2 * (100 + ENTRY_HEADER_BYTES)
    assert u.index.merged_bytes == 100  # but only 100B to recycle


def test_append_rejects_overflow_without_side_effects():
    u = LogUnit(capacity=200)
    assert u.append("b", 0, arr(100), now=0.0)
    before = u.used
    assert not u.append("b", 200, arr(100), now=1.0)
    assert u.used == before
    assert len(u.entries) == 1


def test_fits_accounts_for_header():
    u = LogUnit(capacity=200)
    assert u.fits(200 - ENTRY_HEADER_BYTES)
    assert not u.fits(200 - ENTRY_HEADER_BYTES + 1)


def test_lifecycle_transitions():
    u = LogUnit(capacity=1024)
    u.append("b", 0, arr(10), now=0.5)
    assert u.state is UnitState.EMPTY
    u.seal(now=1.0)
    assert u.state is UnitState.RECYCLABLE and u.sealed_time == 1.0
    u.start_recycle(now=2.0)
    assert u.state is UnitState.RECYCLING
    u.finish_recycle(now=3.0)
    assert u.state is UnitState.RECYCLED
    u.reactivate()
    assert u.state is UnitState.EMPTY
    assert u.used == 0 and not u.entries and u.first_append_time is None


def test_invalid_transitions_raise():
    u = LogUnit(capacity=1024)
    with pytest.raises(RuntimeError):
        u.start_recycle(0.0)
    with pytest.raises(RuntimeError):
        u.finish_recycle(0.0)
    with pytest.raises(RuntimeError):
        u.reactivate()
    u.seal(0.0)
    with pytest.raises(RuntimeError):
        u.append("b", 0, arr(1), now=0.0)
    with pytest.raises(RuntimeError):
        u.seal(0.0)


def test_mean_buffer_time():
    u = LogUnit(capacity=4096)
    u.append("b", 0, arr(10), now=1.0)
    u.append("b", 100, arr(10), now=3.0)
    u.seal(now=3.0)
    u.start_recycle(now=5.0)
    # waits: 4.0 and 2.0 -> mean 3.0
    assert u.mean_buffer_time() == pytest.approx(3.0)


def test_mean_buffer_time_empty_unit():
    u = LogUnit(capacity=1024)
    assert u.mean_buffer_time() == 0.0


def test_unit_serves_reads_in_any_state():
    u = LogUnit(capacity=1024)
    u.append("b", 4, np.array([7, 8], dtype=np.uint8), now=0.0)
    for action in (lambda: u.seal(1.0), lambda: u.start_recycle(2.0), lambda: u.finish_recycle(3.0)):
        hit = u.lookup("b", 4, 2)
        assert hit is not None and list(hit) == [7, 8]
        action()
    assert list(u.lookup("b", 4, 2)) == [7, 8]
    assert u.lookup_partial("b", 0, 10)[0][0] == 4


def test_first_append_time_tracked():
    u = LogUnit(capacity=1024)
    assert u.first_append_time is None
    u.append("b", 0, arr(1), now=2.5)
    u.append("b", 8, arr(1), now=3.5)
    assert u.first_append_time == 2.5
