"""Integration tests for the experiment harness (tiny scales)."""

import pytest

from repro.harness import ExperimentConfig, run_experiment
from repro.harness.fig5 import run_panel
from repro.harness.fig7 import run_fig7
from repro.harness.table1 import run_table1


def tiny(method="tsue", **kw):
    defaults = dict(
        method=method,
        trace="ten",
        k=4,
        m=2,
        n_osds=8,
        n_clients=2,
        updates_per_client=15,
        block_size=16 * 1024,
        stripes_per_file=4,
        seed=1,
        verify=True,
    )
    defaults.update(kw)
    return ExperimentConfig(**defaults)


def test_run_experiment_returns_complete_result():
    res = run_experiment(tiny())
    assert res.n_updates == 30
    assert res.horizon > 0
    assert res.agg_iops == pytest.approx(res.n_updates / res.horizon)
    assert res.mean_latency > 0
    assert res.p99_latency >= res.mean_latency
    assert res.rw_ops > 0 and res.net_bytes > 0
    assert res.consistent is True
    assert res.residency is not None  # tsue extras
    assert res.peak_log_memory > 0


def test_run_experiment_non_tsue_has_no_residency():
    res = run_experiment(tiny(method="fo"))
    assert res.residency is None
    assert res.peak_log_memory == 0
    assert res.consistent is True


def test_determinism_same_seed():
    a = run_experiment(tiny(verify=False))
    b = run_experiment(tiny(verify=False))
    assert a.horizon == b.horizon
    assert a.rw_ops == b.rw_ops
    assert a.net_bytes == b.net_bytes


def test_seed_changes_results():
    a = run_experiment(tiny(verify=False, seed=1))
    b = run_experiment(tiny(verify=False, seed=2))
    assert a.horizon != b.horizon


def test_unknown_trace_rejected():
    with pytest.raises(ValueError, match="unknown trace"):
        run_experiment(tiny(trace="gcs"))


def test_msr_trace_and_hdd_path():
    res = run_experiment(
        tiny(method="tsue", trace="msr:hm0", device_kind="hdd", updates_per_client=10)
    )
    assert res.consistent is True


def test_result_gb_properties():
    res = run_experiment(tiny(method="fo", verify=False))
    assert res.net_gb == pytest.approx(res.net_bytes / (1 << 30))
    assert res.rw_gb == pytest.approx(res.rw_bytes / (1 << 30))
    assert res.overwrite_gb == pytest.approx(res.overwrite_bytes / (1 << 30))


def test_fig5_panel_tiny():
    base = tiny(verify=False)
    panel = run_panel(
        4, 2, "ten", clients=(2,), updates_per_client=10,
        methods=("fo", "tsue"), base=base,
    )
    assert set(panel.iops) == {"fo", "tsue"}
    assert all(len(v) == 1 for v in panel.iops.values())
    assert panel.winner_at(2) in ("fo", "tsue")
    assert "RS(4,2)" in panel.render()


def test_fig7_gain_math():
    res = run_fig7(
        trace="ten", m=2, n_clients=2, updates_per_client=10,
        variants=[
            ("baseline", dict(use_log_pool=False, n_pools=1, use_delta_log=False,
                              use_locality_data=False, use_locality_parity=False)),
            ("O3", dict(use_log_pool=True, n_pools=1, use_delta_log=False,
                        use_locality_data=False, use_locality_parity=False)),
        ],
    )
    assert res.labels == ["baseline", "O3"]
    assert res.gain("baseline") == 1.0
    assert res.gain("O3") == pytest.approx(res.iops[1] / res.iops[0])


def test_table1_rows_render():
    res = run_table1(n_clients=2, updates_per_client=10, methods=("fo", "tsue"))
    text = res.render()
    assert "FO" in text and "TSUE" in text and "NET GB" in text
    assert len(res.rows()) == 2
