"""Tests for RNG streams, OSD serving stats, and example smoke runs."""

import numpy as np
import pytest

from repro.sim import RngStreams


def test_named_streams_are_cached_and_deterministic():
    a = RngStreams(seed=1)
    b = RngStreams(seed=1)
    assert a.get("x") is a.get("x")
    assert np.array_equal(
        a.get("x").integers(0, 100, 10), b.get("x").integers(0, 100, 10)
    )


def test_distinct_names_give_distinct_streams():
    s = RngStreams(seed=1)
    xa = s.get("a").integers(0, 2**31, 16)
    xb = s.get("b").integers(0, 2**31, 16)
    assert not np.array_equal(xa, xb)


def test_distinct_seeds_give_distinct_streams():
    xa = RngStreams(1).get("t").integers(0, 2**31, 16)
    xb = RngStreams(2).get("t").integers(0, 2**31, 16)
    assert not np.array_equal(xa, xb)


def test_spawn_namespaces_are_independent():
    root = RngStreams(7)
    c1 = root.spawn("node1")
    c2 = root.spawn("node2")
    assert c1.seed != c2.seed
    # Same child name from the same parent reproduces.
    again = RngStreams(7).spawn("node1")
    assert again.seed == c1.seed


def test_osd_cache_hit_statistics():
    from repro.cluster import Cluster, ClusterConfig
    from repro.sim import Simulator
    from repro.update import make_strategy_factory

    sim = Simulator()
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=8, k=4, m=2, block_size=2048, seed=2,
                      client_overhead_s=0.0),
        make_strategy_factory("tsue", unit_bytes=8192, flush_age=10.0,
                              flush_interval=5.0),
    )
    cluster.register_sparse_file(5, 4 * 2048)
    client = cluster.add_client("c0")
    cluster.start()

    def go():
        yield from client.update(5, 0, np.full(128, 1, dtype=np.uint8))
        yield from client.read(5, 0, 128)   # full log hit
        yield from client.read(5, 1024, 64)  # miss: device read

    p = sim.process(go())
    while not p.fired and sim.peek() != float("inf"):
        sim.step()
    cluster.stop()
    hits = sum(o.cache_hits for o in cluster.osds)
    served = sum(o.reads_served for o in cluster.osds)
    assert served == 2
    assert hits == 1


@pytest.mark.parametrize("module", ["quickstart"])
def test_examples_smoke(module, monkeypatch, capsys):
    """The quickstart example runs end to end and verifies itself."""
    import importlib.util
    import pathlib

    path = pathlib.Path(__file__).parent.parent / "examples" / f"{module}.py"
    spec = importlib.util.spec_from_file_location(module, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    mod.main()
    out = capsys.readouterr().out
    assert "consistent after drain: True" in out
