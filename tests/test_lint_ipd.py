"""Tests for the whole-program lint layer (``repro.analysis.graph`` +
``ipd-*``/``rpc-*`` rules + the content-hashed summary cache).

Each interprocedural rule is proven against a positive and a negative
fixture tree (``tests/lint_fixtures/ipd_pos`` / ``ipd_neg``), the
call-graph machinery (SCC fixpoint, MRO method resolution, the
unique-definer unknown-receiver join) is unit-tested on in-memory
models, and the cache is shown to invalidate on both a file edit and a
*dependency summary* change while keeping cold and warm runs
byte-identical.
"""

import json
from collections import Counter
from pathlib import Path

from repro.analysis import (
    all_rules,
    analyze_file,
    analyze_project,
    project_rules,
    rules_by_id,
)
from repro.analysis.core import load_context, parse_suppressions
from repro.analysis.graph import (
    MAY_BLOCK,
    RETURNS_VIEW,
    TAINTED,
    build_project,
    extract_model,
)
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "lint_fixtures"
IPD_POS = str(FIXTURES / "ipd_pos")
IPD_NEG = str(FIXTURES / "ipd_neg")


def project_lint(paths, cache_path=None, changed=None):
    if isinstance(paths, str):
        paths = [paths]
    return analyze_project(paths, all_rules(), project_rules(),
                           cache_path=cache_path, changed=changed)


def rule_counts(findings, active_only=True):
    return Counter(
        f.rule for f in findings if not (active_only and f.suppressed)
    )


def _project_of(sources):
    """Build a solved in-memory project from {path: source}."""
    models = {}
    for path, source in sources.items():
        ctx, errs = load_context(path, source=source)
        assert not errs, errs
        models[path] = extract_model(
            ctx, parse_suppressions(source.splitlines()))
    return build_project(models, ctx.config)


# ----------------------------------------------------------------------
# rule families: positive and negative fixture trees
# ----------------------------------------------------------------------
def test_ipd_rules_fire_on_positive_tree():
    res = project_lint(IPD_POS)
    assert rule_counts(res.findings) == {
        "ipd-yield-under-lock": 2,     # the in-lock site + the *_locked body
        "ipd-view-across-yield": 1,
        "ipd-ghost-materialize": 1,
        "ipd-det-taint": 1,
        "det-wallclock": 1,            # the direct read feeding the taint
        "rpc-unhandled-message": 1,
        "rpc-dead-handler": 1,
    }


def test_ipd_negative_tree_is_clean():
    res = project_lint(IPD_NEG)
    assert rule_counts(res.findings) == {}
    # The audited allows are honored — and *compositional*: neither the
    # suppressed rpc edge nor the suppressed clock read re-surfaces as an
    # ipd finding in any transitive caller.
    assert rule_counts(res.findings, active_only=False) == {
        "lock-yield-while-locked": 1, "det-wallclock": 1,
    }


def test_ipd_witness_paths_name_the_chain():
    res = project_lint(IPD_POS)
    locked = [f for f in res.findings if f.rule == "ipd-yield-under-lock"]
    assert any("ship_sync" in f.message for f in locked)
    taint = [f for f in res.findings if f.rule == "ipd-det-taint"]
    assert any("_stamp" in f.message and "time.time" in f.message
               for f in taint)


def test_project_rules_registered_and_disjoint():
    ids = set(rules_by_id(None))
    pids = {r.id for r in project_rules()}
    assert pids == {
        "ipd-yield-under-lock", "ipd-view-across-yield",
        "ipd-ghost-materialize", "ipd-det-taint",
        "rpc-unhandled-message", "rpc-dead-handler",
    }
    assert pids <= ids
    assert pids.isdisjoint({r.id for r in all_rules()})


# ----------------------------------------------------------------------
# call-graph units: fixpoint, resolution
# ----------------------------------------------------------------------
def test_scc_fixpoint_propagates_through_cycles():
    project = _project_of({"proj/mod.py": (
        "def a(n):\n"
        "    if n:\n"
        "        return b(n - 1)\n"
        "    return 0\n"
        "\n"
        "def b(n):\n"
        "    yield from sim.sleep(1)\n"
        "    return a(n)\n"
    )})
    assert project.functions["proj.mod:b"].facts & MAY_BLOCK
    # a <-> b is one SCC: the blocking fact reaches a through the cycle.
    assert project.functions["proj.mod:a"].facts & MAY_BLOCK


def test_returns_view_propagates_only_via_return_edges():
    project = _project_of({"proj/mod.py": (
        "def leaf(store):\n"
        "    return store.read_range(1, 0, 8)\n"
        "\n"
        "def wrap(store):\n"
        "    return leaf(store)\n"
        "\n"
        "def consume(store):\n"
        "    leaf(store).sum()\n"
        "    return 0\n"
    )})
    assert project.functions["proj.mod:leaf"].facts & RETURNS_VIEW
    assert project.functions["proj.mod:wrap"].facts & RETURNS_VIEW
    # Calling a view producer without returning it is not returning a view.
    assert not project.functions["proj.mod:consume"].facts & RETURNS_VIEW


def test_taint_propagates_across_modules():
    project = _project_of({
        "proj/clock.py": (
            "import time\n"
            "def now():\n"
            "    return time.time()\n"
        ),
        "proj/rows.py": (
            "from proj import clock\n"
            "def to_dict():\n"
            "    return {'t': clock.now()}\n"
        ),
    })
    assert project.functions["proj.rows:to_dict"].facts & TAINTED


def test_method_resolution_walks_the_mro():
    project = _project_of({"proj/mod.py": (
        "class Base:\n"
        "    def helper(self):\n"
        "        return 1\n"
        "\n"
        "class Child(Base):\n"
        "    def go(self):\n"
        "        return self.helper()\n"
    )})
    assert project.resolve_method("proj.mod:Child", "helper") \
        == "proj.mod:Base.helper"
    assert project.functions["proj.mod:Child.go"].callees \
        == ["proj.mod:Base.helper"]


def test_unknown_receiver_resolves_only_unique_definers():
    project = _project_of({"proj/mod.py": (
        "class A:\n"
        "    def read(self, k):\n"
        "        return k\n"
        "\n"
        "class B:\n"
        "    def read(self, k):\n"
        "        return k\n"
        "    def fetch(self, k):\n"
        "        return k\n"
        "\n"
        "class C:\n"
        "    def go(self, obj):\n"
        "        obj.read(1)\n"
        "        return obj.fetch(2)\n"
    )})
    # `read` has two definers -> ambiguous, dropped; `fetch` is unique.
    assert project.functions["proj.mod:C.go"].callees == ["proj.mod:B.fetch"]


# ----------------------------------------------------------------------
# the summary cache
# ----------------------------------------------------------------------
def _write_view_tree(root, helper_body, consume_early=False):
    pkg = root / "proj"
    pkg.mkdir(exist_ok=True)
    (pkg / "helper.py").write_text(
        f"def latest(store):\n    return {helper_body}\n")
    body = ("        total = int(v.sum())\n"
            "        yield 1\n"
            "        return total\n") if consume_early else \
           ("        yield 1\n"
            "        return int(v.sum())\n")
    (pkg / "user.py").write_text(
        "from proj import helper\n"
        "\n"
        "\n"
        "class Scanner:\n"
        "    def scan(self, store):\n"
        "        v = helper.latest(store)\n"
        + body)
    return pkg


def test_cache_warm_run_is_identical(tmp_path):
    pkg = _write_view_tree(tmp_path, "store.read_range(1, 0, 8)")
    cache = tmp_path / "cache.json"
    cold = project_lint(str(pkg), cache_path=str(cache))
    assert not cold.cache_was_warm
    assert [f.rule for f in cold.findings] == ["ipd-view-across-yield"]
    warm = project_lint(str(pkg), cache_path=str(cache))
    assert warm.cache_was_warm
    assert [f.to_dict() for f in warm.findings] \
        == [f.to_dict() for f in cold.findings]


def test_cache_invalidates_on_file_edit(tmp_path):
    pkg = _write_view_tree(tmp_path, "store.read_range(1, 0, 8)")
    cache = tmp_path / "cache.json"
    assert [f.rule for f in
            project_lint(str(pkg), cache_path=str(cache)).findings] \
        == ["ipd-view-across-yield"]
    # Edit the *user* file: the view is now consumed before the yield.
    _write_view_tree(tmp_path, "store.read_range(1, 0, 8)",
                     consume_early=True)
    res = project_lint(str(pkg), cache_path=str(cache))
    assert res.cache_was_warm
    assert res.findings == []


def test_cache_invalidates_on_dependency_summary_change(tmp_path):
    pkg = _write_view_tree(tmp_path, "store.read_range(1, 0, 8)")
    cache = tmp_path / "cache.json"
    assert [f.rule for f in
            project_lint(str(pkg), cache_path=str(cache)).findings] \
        == ["ipd-view-across-yield"]
    # Edit only the *helper* so it stops returning a view: user.py's
    # content hash is unchanged, but its dependency-summary hash is not —
    # the cached view scan must not be reused.
    _write_view_tree(tmp_path, "store.checksum(1)")
    res = project_lint(str(pkg), cache_path=str(cache))
    assert res.cache_was_warm
    assert res.findings == []
    # ...and back: the finding reappears from a warm cache.
    _write_view_tree(tmp_path, "store.read_range(1, 0, 8)")
    res = project_lint(str(pkg), cache_path=str(cache))
    assert [f.rule for f in res.findings] == ["ipd-view-across-yield"]


def test_corrupt_cache_degrades_to_cold(tmp_path):
    pkg = _write_view_tree(tmp_path, "store.read_range(1, 0, 8)")
    cache = tmp_path / "cache.json"
    project_lint(str(pkg), cache_path=str(cache))
    cache.write_text("{not json")
    res = project_lint(str(pkg), cache_path=str(cache))
    assert not res.cache_was_warm
    assert [f.rule for f in res.findings] == ["ipd-view-across-yield"]


def test_analyze_project_is_deterministic():
    first = project_lint(IPD_POS)
    second = project_lint(IPD_POS)
    assert [f.to_dict() for f in first.findings] \
        == [f.to_dict() for f in second.findings]
    keys = [f.sort_key() for f in first.findings]
    assert keys == sorted(keys)


# ----------------------------------------------------------------------
# --changed scoping
# ----------------------------------------------------------------------
def test_changed_scope_includes_reverse_dependents():
    # net.py itself is clean, but strategy.py resolves calls into it —
    # its findings are in scope; views/rows/proto findings are not.
    res = project_lint(IPD_POS,
                       changed={str(Path(IPD_POS) / "net.py")})
    assert rule_counts(res.findings) == {"ipd-yield-under-lock": 2}


def test_changed_scope_empty_when_nothing_changed():
    res = project_lint(IPD_POS, changed=set())
    assert res.findings == []


# ----------------------------------------------------------------------
# CLI: cache flags, reporters, graph dump
# ----------------------------------------------------------------------
def test_cli_cold_and_warm_runs_byte_identical(tmp_path, capsys):
    cache = tmp_path / "cache.json"
    argv = ["lint", "--cache", str(cache), IPD_NEG]
    code_cold = cli_main(argv)
    out_cold = capsys.readouterr().out
    code_warm = cli_main(argv)
    out_warm = capsys.readouterr().out
    assert (code_cold, out_cold) == (code_warm, out_warm)
    assert code_cold == 0
    # And byte-identical to a never-cached run.
    assert cli_main(["lint", "--no-cache", IPD_NEG]) == 0
    assert capsys.readouterr().out == out_cold


def test_cli_no_ipd_disables_project_rules(capsys):
    code = cli_main(["lint", "--no-cache", "--no-ipd", IPD_POS])
    out = capsys.readouterr().out
    assert code == 1          # the direct det-wallclock still fires
    assert "det-wallclock" in out
    assert "ipd-" not in out and "rpc-" not in out


def test_cli_github_format(capsys):
    code = cli_main(["lint", "--no-cache", "--format", "github", IPD_POS])
    out = capsys.readouterr().out
    assert code == 1
    errors = [ln for ln in out.splitlines() if ln.startswith("::error ")]
    assert len(errors) == 8
    assert all("file=" in ln and "line=" in ln and "col=" in ln
               for ln in errors)
    assert "title=repro-lint ipd-yield-under-lock" in out


def test_cli_graph_dump(tmp_path, capsys):
    dump = tmp_path / "graph.json"
    code = cli_main(["lint", "--no-cache", "--graph-dump", str(dump),
                     IPD_NEG])
    capsys.readouterr()
    assert code == 0
    data = json.loads(dump.read_text())
    funcs = data["functions"]
    rpc_key = next(k for k in funcs if k.endswith("host:Host.rpc"))
    assert "may-block" in funcs[rpc_key]["facts"]
    locked_key = next(
        k for k in funcs if k.endswith("strategy:Strategy._apply_locked"))
    # The audited allow strips the blocking edge from the summary.
    assert "may-block" not in funcs[locked_key]["facts"]


# ----------------------------------------------------------------------
# suppression syntax (multi-rule lists, malformed allows)
# ----------------------------------------------------------------------
def test_suppression_syntax_fixture():
    findings = analyze_file(str(FIXTURES / "suppress_syntax.py"),
                            all_rules())
    assert rule_counts(findings) == {
        "suppression-syntax": 1,   # allow() names no rules
        "det-entropy": 1,          # ...so the call under it stays active
    }
    suppressed = rule_counts(findings, active_only=False) - \
        rule_counts(findings)
    # The space-separated two-rule allow consumed both rules.
    assert suppressed == {"det-wallclock": 1, "det-entropy": 1}


def test_suppression_syntax_has_fixit():
    findings = analyze_file(str(FIXTURES / "suppress_syntax.py"),
                            all_rules())
    syn = [f for f in findings if f.rule == "suppression-syntax"]
    assert len(syn) == 1 and syn[0].fixit
    assert "allow(" in syn[0].fixit
