"""Tests for the client write/read paths and OSD serving."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.sim import Simulator
from repro.update import make_strategy_factory

K, M, BLOCK = 4, 2, 1024


def build(method="fo"):
    sim = Simulator()
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=8, k=K, m=M, block_size=BLOCK, seed=3,
                      client_overhead_s=0.0),
        make_strategy_factory(method),
    )
    client = cluster.add_client("c0")
    cluster.start()
    return sim, cluster, client


def run_to(sim, proc):
    while not proc.fired and sim.peek() != float("inf"):
        sim.step()
    assert proc.fired
    return proc.value


def test_create_registers_at_mds():
    sim, cluster, client = build()
    run_to(sim, sim.process(client.create(9, 4096)))
    assert 9 in cluster.mds.files
    assert cluster.mds.files[9].size == 4096


def test_create_duplicate_inode_fails():
    sim, cluster, client = build()

    def go():
        yield from client.create(9, 4096)
        try:
            yield from client.create(9, 4096)
        except ValueError:
            return "dup"

    assert run_to(sim, sim.process(go())) == "dup"


def test_full_stripe_write_distributes_and_encodes():
    sim, cluster, client = build()
    data = np.random.default_rng(0).integers(0, 256, K * BLOCK, dtype=np.uint8)
    run_to(sim, sim.process(client.write(5, 0, data)))
    names = cluster.placement(5, 0)
    for j in range(K):
        blk = cluster.osd_by_name(names[j]).store.peek((5, 0, j))
        assert np.array_equal(blk, data[j * BLOCK : (j + 1) * BLOCK])
    assert cluster.stripe_consistent(5, 0)


def test_partial_stripe_write_rejected():
    sim, cluster, client = build()

    def go():
        yield from client.write(5, 0, np.zeros(100, dtype=np.uint8))

    sim.process(go())
    with pytest.raises(ValueError, match="whole stripes"):
        sim.run()


def test_multi_stripe_write_and_read():
    sim, cluster, client = build()
    data = np.random.default_rng(1).integers(0, 256, 3 * K * BLOCK, dtype=np.uint8)
    run_to(sim, sim.process(client.write(6, 0, data)))

    def rd():
        return (yield from client.read(6, 1500, 4000))

    got = run_to(sim, sim.process(rd()))
    assert np.array_equal(got, data[1500:5500])
    assert client.read_latency.count == 1


def test_read_of_sparse_region_returns_zeros():
    sim, cluster, client = build()
    cluster.register_sparse_file(7, K * BLOCK)

    def rd():
        return (yield from client.read(7, 100, 64))

    got = run_to(sim, sim.process(rd()))
    assert np.all(got == 0)


def test_update_latency_recorded_per_call():
    sim, cluster, client = build()
    cluster.register_sparse_file(8, K * BLOCK)

    def go():
        for _ in range(3):
            yield from client.update(8, 0, np.ones(64, dtype=np.uint8))

    run_to(sim, sim.process(go()))
    assert client.update_latency.count == 3
    assert cluster.osd_by_name(cluster.placement(8, 0)[0]).updates_served == 3


def test_mds_locate_rpc_matches_local_placement():
    sim, cluster, client = build()

    def go():
        reply = yield from client.rpc("mds", "locate", {"inode": 3, "stripe": 2}, 16)
        return reply["osds"]

    names = run_to(sim, sim.process(go()))
    assert names == cluster.placement(3, 2)


def test_mds_heartbeat_failure_detection():
    sim, cluster, client = build()

    def hb(osd):
        yield from osd.rpc("mds", "heartbeat", {}, nbytes=8)

    for osd in cluster.osds[:4]:
        sim.process(hb(osd))
    sim.run(until=0.5)
    failed = cluster.mds.failed_osds()
    assert set(failed) == {o.name for o in cluster.osds[4:]}
    # Advance past the timeout: everyone is failed now.
    sim.run(until=10.0)
    assert len(cluster.mds.failed_osds()) == 8


def test_mds_classify_write_bitmap():
    sim, cluster, client = build()

    def go():
        yield from client.create(11, 8192)
        first = yield from client.rpc(
            "mds", "classify_write", {"inode": 11, "offset": 0, "length": 4096}, 24
        )
        second = yield from client.rpc(
            "mds", "classify_write", {"inode": 11, "offset": 0, "length": 4096}, 24
        )
        return first["update"], second["update"]

    first, second = run_to(sim, sim.process(go()))
    assert first is False  # never written
    assert second is True  # page bitmap now covers it
