"""Tests for the synthetic trace generators."""

import numpy as np
import pytest

from repro.traces import (
    MSR_VOLUMES,
    SyntheticTraceConfig,
    alicloud_trace,
    generate_trace,
    msr_trace,
    tencloud_trace,
)
from repro.traces.synth import PAGE, TraceRecord, update_stats

FILE = 32 * 1024 * 1024
N = 2000


def rng(seed=0):
    return np.random.default_rng(seed)


def test_record_validation():
    with pytest.raises(ValueError):
        TraceRecord(-1, 4)
    with pytest.raises(ValueError):
        TraceRecord(0, 0)


def test_config_validation():
    with pytest.raises(ValueError):
        SyntheticTraceConfig("x", [(4096, 0.5)])  # probs must sum to 1
    with pytest.raises(ValueError):
        SyntheticTraceConfig("x", [(4096, 1.0)], hot_fraction=0.0)
    with pytest.raises(ValueError):
        SyntheticTraceConfig("x", [(4096, 1.0)], run_prob=1.5)


def test_records_stay_in_bounds():
    for maker in (alicloud_trace, tencloud_trace):
        recs = maker(FILE, N, rng(1))
        assert len(recs) == N
        for r in recs:
            assert 0 <= r.offset and r.offset + r.size <= FILE


def test_small_file_rejected():
    with pytest.raises(ValueError):
        alicloud_trace(100, 10, rng())


def test_alicloud_size_marginals_match_paper():
    """§2.1: 46 % exactly 4 KB, 60 % <= 16 KB."""
    stats = update_stats(alicloud_trace(FILE, 5000, rng(2)))
    assert 0.40 <= stats["frac_le_4k"] <= 0.52
    assert 0.54 <= stats["frac_le_16k"] <= 0.66


def test_tencloud_size_marginals_match_paper():
    """§2.1: 69 % exactly 4 KB, 88 % <= 16 KB."""
    stats = update_stats(tencloud_trace(FILE, 5000, rng(3)))
    assert 0.63 <= stats["frac_le_4k"] <= 0.75
    assert 0.82 <= stats["frac_le_16k"] <= 0.94


def test_tencloud_touches_small_fraction_of_file():
    """§2.3.3: the hot working set covers a few % of the data at most."""
    stats = update_stats(tencloud_trace(FILE, 5000, rng(4)))
    touched = stats["distinct_pages"] * PAGE / FILE
    # 5000 requests x ~2 pages over an 8192-page file would touch ~70 %
    # uniformly; the locality profile keeps it far below that.
    assert touched < 0.35


def test_tencloud_more_local_than_alicloud():
    ten = update_stats(tencloud_trace(FILE, 5000, rng(5)))
    ali = update_stats(alicloud_trace(FILE, 5000, rng(5)))
    assert ten["distinct_pages"] < ali["distinct_pages"]


def test_temporal_locality_repeats_offsets():
    recs = tencloud_trace(FILE, 3000, rng(6))
    offsets = [r.offset for r in recs]
    assert len(set(offsets)) < 0.8 * len(offsets)  # plenty of repeats


def test_spatial_runs_present():
    recs = tencloud_trace(FILE, 3000, rng(7))
    runs = sum(
        1 for a, b in zip(recs, recs[1:]) if b.offset == a.offset + a.size
    )
    assert runs > 0.2 * len(recs)


def test_msr_all_volumes_generate():
    for vol in MSR_VOLUMES:
        recs = msr_trace(vol, FILE, 200, rng(8))
        assert len(recs) == 200


def test_msr_unknown_volume():
    with pytest.raises(ValueError, match="unknown MSR volume"):
        msr_trace("nope", FILE, 10, rng())


def test_msr_small_updates_dominate():
    """MSR stats: ~60 % < 4 KB-ish small, 90 % <= 16 KB."""
    stats = update_stats(msr_trace("mds0", FILE, 5000, rng(9)))
    assert stats["frac_le_16k"] > 0.85


def test_determinism_same_seed_same_trace():
    a = tencloud_trace(FILE, 100, rng(42))
    b = tencloud_trace(FILE, 100, rng(42))
    assert a == b


def test_different_seeds_differ():
    a = tencloud_trace(FILE, 100, rng(1))
    b = tencloud_trace(FILE, 100, rng(2))
    assert a != b
