"""End-to-end correctness of every update strategy.

For each method: build a small cluster, drive randomized updates through
real clients, drain, then check (1) data blocks equal the shadow model,
(2) parity equals a re-encode of the data (stripe consistency), and
(3) reads issued mid-run return the freshest acked bytes.
"""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.harness.experiment import drain_all
from repro.sim import AllOf, Simulator
from repro.update import STRATEGIES, make_strategy_factory

METHODS = sorted(STRATEGIES)

K, M, BLOCK = 4, 2, 2048
N_OSDS = 8
STRIPES = 3


def build(method, seed=0, **params):
    sim = Simulator()
    if method == "tsue" and not params:
        params = dict(unit_bytes=8 * 1024, flush_age=0.01, flush_interval=0.005)
    cluster = Cluster(
        sim,
        ClusterConfig(
            n_osds=N_OSDS, k=K, m=M, block_size=BLOCK, seed=seed,
            client_overhead_s=0.0,
        ),
        make_strategy_factory(method, **params),
    )
    inode = 77
    cluster.register_sparse_file(inode, STRIPES * K * BLOCK)
    client = cluster.add_client("c0")
    cluster.start()
    return sim, cluster, client, inode


def run_to(sim, proc):
    while not proc.fired and sim.peek() != float("inf"):
        sim.step()
    assert proc.fired, "deadlock"
    return proc.value


def drive_updates(sim, cluster, client, inode, n=60, seed=1):
    rng = np.random.default_rng(seed)
    file_size = STRIPES * K * BLOCK
    shadow = np.zeros(file_size, dtype=np.uint8)

    def driver():
        for _ in range(n):
            size = int(rng.choice([64, 256, 1024]))
            offset = int(rng.integers(0, file_size - size))
            payload = rng.integers(0, 256, size, dtype=np.uint8)
            yield from client.update(inode, offset, payload)
            shadow[offset : offset + size] = payload

    run_to(sim, sim.process(driver()))
    run_to(sim, sim.process(drain_all(cluster)))
    return shadow


def check_against_shadow(cluster, inode, shadow):
    for s in range(STRIPES):
        names = cluster.placement(inode, s)
        for j in range(K):
            lo = (s * K + j) * BLOCK
            blk = cluster.osd_by_name(names[j]).store.peek((inode, s, j))
            if blk is None:
                blk = np.zeros(BLOCK, dtype=np.uint8)
            assert np.array_equal(blk, shadow[lo : lo + BLOCK]), (
                f"data mismatch stripe {s} block {j}"
            )
        assert cluster.stripe_consistent(inode, s), f"parity stale, stripe {s}"


@pytest.mark.parametrize("method", METHODS)
def test_updates_drain_to_consistent_state(method):
    sim, cluster, client, inode = build(method)
    shadow = drive_updates(sim, cluster, client, inode)
    cluster.stop()
    check_against_shadow(cluster, inode, shadow)


@pytest.mark.parametrize("method", METHODS)
def test_read_your_writes_mid_run(method):
    """Reads after ack must return the new bytes even before recycle."""
    sim, cluster, client, inode = build(method)

    def scenario():
        payload = np.full(512, 0xAB, dtype=np.uint8)
        yield from client.update(inode, 1000, payload)
        got = yield from client.read(inode, 1000, 512)
        return got

    got = run_to(sim, sim.process(scenario()))
    cluster.stop()
    assert np.array_equal(got, np.full(512, 0xAB, dtype=np.uint8))


@pytest.mark.parametrize("method", METHODS)
def test_repeated_same_offset_updates_last_wins(method):
    sim, cluster, client, inode = build(method)

    def scenario():
        for v in (1, 2, 3, 4, 5):
            yield from client.update(
                inode, 4096, np.full(128, v, dtype=np.uint8)
            )

    run_to(sim, sim.process(scenario()))
    run_to(sim, sim.process(drain_all(cluster)))
    cluster.stop()
    stripe, block, off = cluster.stripe_map.locate(4096)
    osd = cluster.osd_by_name(cluster.placement(inode, stripe)[block])
    blk = osd.store.peek((inode, stripe, block))
    assert np.all(blk[off : off + 128] == 5)
    assert cluster.stripe_consistent(inode, stripe)


@pytest.mark.parametrize("method", METHODS)
def test_cross_block_extent_update(method):
    """An update spanning a block boundary splits and lands correctly."""
    sim, cluster, client, inode = build(method)
    boundary = BLOCK  # end of block 0 / start of block 1 in stripe 0

    payload = (np.arange(512) % 251).astype(np.uint8)

    def scenario():
        yield from client.update(inode, boundary - 256, payload)

    run_to(sim, sim.process(scenario()))
    run_to(sim, sim.process(drain_all(cluster)))
    cluster.stop()
    names = cluster.placement(inode, 0)
    b0 = cluster.osd_by_name(names[0]).store.peek((inode, 0, 0))
    b1 = cluster.osd_by_name(names[1]).store.peek((inode, 0, 1))
    assert np.array_equal(b0[BLOCK - 256 :], payload[:256])
    assert np.array_equal(b1[:256], payload[256:])
    assert cluster.stripe_consistent(inode, 0)


def test_concurrent_clients_different_files():
    """Two clients on separate files interleave safely (TSUE)."""
    sim = Simulator()
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=N_OSDS, k=K, m=M, block_size=BLOCK, seed=3,
                      client_overhead_s=0.0),
        make_strategy_factory(
            "tsue", unit_bytes=8 * 1024, flush_age=0.01, flush_interval=0.005
        ),
    )
    inodes = (101, 102)
    clients = []
    for i, inode in enumerate(inodes):
        cluster.register_sparse_file(inode, STRIPES * K * BLOCK)
        clients.append(cluster.add_client(f"c{i}"))
    cluster.start()
    shadows = {}
    rng = np.random.default_rng(9)

    def driver(client, inode, seed):
        local = np.random.default_rng(seed)
        shadow = np.zeros(STRIPES * K * BLOCK, dtype=np.uint8)
        shadows[inode] = shadow
        for _ in range(40):
            size = int(local.choice([64, 512]))
            offset = int(local.integers(0, shadow.size - size))
            payload = local.integers(0, 256, size, dtype=np.uint8)
            yield from client.update(inode, offset, payload)
            shadow[offset : offset + size] = payload

    procs = [
        sim.process(driver(c, inode, 50 + i))
        for i, (c, inode) in enumerate(zip(clients, inodes))
    ]
    joined = AllOf(sim, procs)
    run_to(sim, sim.process(_wait(sim, joined)))
    run_to(sim, sim.process(drain_all(cluster)))
    cluster.stop()
    for inode in inodes:
        check_against_shadow(cluster, inode, shadows[inode])


def _wait(sim, event):
    yield event


@pytest.mark.parametrize("method", ["pl", "plr", "parix", "cord"])
def test_logs_hold_pending_state_before_drain(method):
    """Deferred methods really defer: parity lags until drain."""
    sim, cluster, client, inode = build(method)

    def one_update():
        yield from client.update(inode, 0, np.full(256, 0x5A, dtype=np.uint8))

    run_to(sim, sim.process(one_update()))
    # Without drain, some parity block is stale for PL-family methods
    # (FO would already be consistent).
    stale = not cluster.stripe_consistent(inode, 0)
    if method in ("pl", "parix"):
        assert stale, f"{method} should defer parity application"
    run_to(sim, sim.process(drain_all(cluster)))
    cluster.stop()
    assert cluster.stripe_consistent(inode, 0)


def test_fo_is_consistent_without_drain():
    sim, cluster, client, inode = build("fo")

    def one_update():
        yield from client.update(inode, 0, np.full(256, 0x5A, dtype=np.uint8))

    run_to(sim, sim.process(one_update()))
    cluster.stop()
    assert cluster.stripe_consistent(inode, 0)
