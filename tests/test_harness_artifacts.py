"""Tiny-scale smoke tests for every per-artifact harness runner.

These verify structure and rendering (the benchmarks assert the paper
shapes at realistic scale); keeping them in the unit suite guarantees the
artifact code paths never rot.
"""

import pytest

from repro.harness.ablations import (
    run_index_ablation,
    run_replica_ablation,
    run_unit_size_ablation,
)
from repro.harness.fig6 import run_fig6a, run_fig6b
from repro.harness.fig8 import _recovery_run, run_fig8a
from repro.harness.lifespan import run_lifespan
from repro.harness.table2 import run_table2


def test_fig6a_series_structure():
    res = run_fig6a(n_clients=3, updates_per_client=30, buckets=5)
    assert len(res.times) == 5 and len(res.iops) == 5
    assert res.mean_iops > 0
    assert "Fig.6a" in res.render()


def test_fig6b_sweep_structure():
    res = run_fig6b(quotas=(2, 4), n_clients=2, updates_per_client=15)
    assert res.quotas == [2, 4]
    assert all(v > 0 for v in res.iops)
    assert all(m > 0 for m in res.peak_memory_mb)
    assert res.peak_memory_mb[1] >= res.peak_memory_mb[0]


def test_fig8a_structure():
    res = run_fig8a(volumes=("hm0",), methods=("fo", "tsue"),
                    n_clients=2, updates_per_client=10)
    assert res.volumes == ["hm0"]
    assert set(res.iops) == {"fo", "tsue"}
    assert "hm0" in res.render()


def test_fig8b_single_recovery_run_verifies():
    res = _recovery_run("hm0", "tsue", n_clients=2, updates_per_client=20, seed=3)
    assert res.correct
    assert res.blocks_recovered > 0
    assert res.bandwidth_mbps > 0


def test_table2_structure():
    res = run_table2(n_clients=2, updates_per_client=20, unit_bytes=64 * 1024)
    assert set(res.residency) == {"ali", "ten"}
    assert all(t > 0 for t in res.totals_us.values())
    text = res.render()
    assert "data_log" in text and "TOTAL" in text


def test_lifespan_structure():
    res = run_lifespan(n_clients=2, updates_per_client=15, methods=("fo", "tsue"))
    rel = res.relative_lifespan()
    assert set(rel) == {"fo", "tsue"}
    assert min(rel.values()) == 1.0
    adv = res.tsue_advantage()
    assert "fo" in adv and "tsue" not in adv
    assert "lifespan" in res.render().lower()


def test_ablation_runners_structure():
    u = run_unit_size_ablation(unit_sizes=(32 * 1024, 64 * 1024), n_clients=2, updates=15)
    assert len(u.buffer_us) == 2 and "unit" in u.render().lower()
    r = run_replica_ablation(replica_counts=(1, 2), n_clients=2, updates=15)
    assert r.latency_us[0] < r.latency_us[1]
    i = run_index_ablation(n_clients=2, updates=15)
    assert i.labels == ["off", "on"]
    assert i.rw_ops[1] <= i.rw_ops[0]
