"""Tests for the FIFO log pool."""

import numpy as np
import pytest

from repro.logstruct import LogPool, UnitState
from repro.logstruct.unit import ENTRY_HEADER_BYTES


def arr(n, fill=0):
    return np.full(n, fill, dtype=np.uint8)


def small_pool(**kw):
    defaults = dict(unit_capacity=1024, min_units=2, max_units=3, policy="overwrite")
    defaults.update(kw)
    return LogPool(**defaults)


def test_construction_validation():
    with pytest.raises(ValueError):
        LogPool(min_units=0)
    with pytest.raises(ValueError):
        LogPool(min_units=5, max_units=2)


def test_initial_layout():
    p = small_pool()
    assert p.unit_count == 2
    assert p.active is not None and p.active.state is UnitState.EMPTY
    others = [u for u in p.units if u is not p.active]
    assert all(u.state is UnitState.RECYCLED for u in others)


def test_append_fills_and_rotates():
    p = small_pool()
    sealed = []
    p.seal_listener = sealed.append
    payload = 1024 - ENTRY_HEADER_BYTES - 8
    assert p.append("b", 0, arr(payload), now=0.0)
    first = p.active
    # Second append cannot fit: unit seals, RECYCLED peer reactivates.
    assert p.append("b", 2048, arr(payload), now=1.0)
    assert sealed == [first]
    assert first.state is UnitState.RECYCLABLE
    assert p.active is not first
    assert p.total_seals == 1


def test_pool_grows_to_max_then_backpressures():
    p = small_pool()
    payload = 900
    assert p.append("k", 0, arr(payload), now=0.0)
    assert p.append("k", 2000, arr(payload), now=0.0)  # rotate to unit 2
    assert p.append("k", 4000, arr(payload), now=0.0)  # grow to max=3
    assert p.unit_count == 3
    # All units now RECYCLABLE except active-full; next rotation has nowhere
    # to go: append returns False (caller waits on the recycler).
    assert not p.append("k", 6000, arr(payload), now=0.0)
    assert p.peak_units == 3


def test_recycled_unit_reused_before_growth():
    p = small_pool()
    payload = 900
    p.append("k", 0, arr(payload), now=0.0)
    p.append("k", 2000, arr(payload), now=0.0)
    sealed = p.recyclable_units()
    assert len(sealed) == 1
    sealed[0].start_recycle(1.0)
    sealed[0].finish_recycle(1.5)
    # The freshly recycled unit is reused; the pool does not grow.
    p.append("k", 4000, arr(payload), now=2.0)
    assert p.unit_count == 2
    assert p.active is sealed[0]
    # Only once no RECYCLED unit exists does the pool grow.
    p.append("k", 6000, arr(payload), now=2.0)
    assert p.unit_count == 3
    assert p.active is not sealed[0]


def test_record_larger_than_unit_splits_across_units():
    p = LogPool(unit_capacity=1024, min_units=2, max_units=4, policy="overwrite")
    payload = np.arange(2500, dtype=np.uint8)
    assert p.append("k", 100, payload, now=0.0)
    # Chunks landed in consecutive units; the overall byte map is intact.
    frags = p.cache_lookup_partial("k", 100, 2500)
    rebuilt = np.zeros(2500, dtype=np.uint8)
    for off, d in frags:
        rebuilt[off - 100 : off - 100 + d.size] = d
    assert np.array_equal(rebuilt, payload)
    assert p.total_seals >= 2  # rotation really happened


def test_flush_active_seals_partial_unit():
    p = small_pool()
    p.append("k", 0, arr(10), now=0.0)
    unit = p.flush_active(now=1.0)
    assert unit is not None and unit.state is UnitState.RECYCLABLE
    assert p.active is not unit
    assert p.flush_active(now=2.0) is None  # nothing pending


def test_memory_accounting():
    p = small_pool()
    assert p.memory_bytes == 2 * 1024
    p.append("k", 0, arr(900), now=0.0)
    p.append("k", 2000, arr(900), now=0.0)
    p.append("k", 4000, arr(900), now=0.0)
    assert p.memory_bytes == 3 * 1024
    assert p.peak_memory_bytes == 3 * 1024


def test_shrink_drops_recycled_beyond_min():
    p = small_pool()
    p.append("k", 0, arr(900), now=0.0)
    p.append("k", 2000, arr(900), now=0.0)
    p.append("k", 4000, arr(900), now=0.0)
    for u in p.recyclable_units():
        u.start_recycle(1.0)
        u.finish_recycle(1.0)
    freed = p.shrink()
    assert freed == 1
    assert p.unit_count == 2


def test_has_pending_recycle():
    p = small_pool()
    assert not p.has_pending_recycle()
    p.append("k", 0, arr(900), now=0.0)
    p.flush_active(now=0.5)
    assert p.has_pending_recycle()


def test_cache_lookup_newest_unit_wins():
    p = small_pool(unit_capacity=4096)
    p.append("b", 0, arr(4, fill=1), now=0.0)
    p.flush_active(now=0.1)
    p.append("b", 0, arr(4, fill=2), now=0.2)
    hit = p.cache_lookup("b", 0, 4)
    assert list(hit) == [2, 2, 2, 2]


def test_cache_lookup_falls_back_to_older_units():
    p = small_pool(unit_capacity=4096)
    p.append("b", 0, arr(4, fill=1), now=0.0)
    p.flush_active(now=0.1)
    p.append("c", 0, arr(4, fill=2), now=0.2)
    hit = p.cache_lookup("b", 0, 4)
    assert list(hit) == [1, 1, 1, 1]
    assert p.cache_lookup("b", 100, 4) is None


def test_cache_lookup_partial_shadowing():
    p = small_pool(unit_capacity=4096)
    p.append("b", 0, arr(8, fill=1), now=0.0)
    p.flush_active(now=0.1)
    p.append("b", 4, arr(8, fill=2), now=0.2)
    frags = p.cache_lookup_partial("b", 0, 16)
    rebuilt = {}
    for off, d in frags:
        for i, v in enumerate(d):
            assert off + i not in rebuilt  # no overlaps
            rebuilt[off + i] = int(v)
    assert rebuilt == {**{i: 1 for i in range(4)}, **{i: 2 for i in range(4, 12)}}


def test_reactivated_unit_loses_cache():
    p = LogPool(unit_capacity=1024, min_units=1, max_units=1)
    p.append("b", 0, arr(900, fill=5), now=0.0)
    unit = p.flush_active(now=0.1)
    assert unit is not None
    unit.start_recycle(0.2)
    unit.finish_recycle(0.3)
    assert list(p.cache_lookup("b", 0, 4)) == [5, 5, 5, 5]
    p.append("b", 100, arr(8), now=0.4)  # reactivates the only unit
    assert p.cache_lookup("b", 0, 4) is None


def test_cache_lookup_partial_property_vs_reference():
    """Property test: random overlapping appends across many units must
    equal a brute-force newest-wins reference array — de-overlapped,
    offset-sorted, content-exact, covering exactly the written bytes."""
    span = 1024
    for seed in range(10):
        rng = np.random.default_rng(seed)
        # Small units + a high quota: appends spill across many units with
        # no recycling needed, so newest-wins spans real unit boundaries.
        p = LogPool(unit_capacity=256, min_units=2, max_units=64,
                    policy="overwrite")
        ref = np.zeros(span, dtype=np.uint8)
        written = np.zeros(span, dtype=bool)
        for step in range(60):
            off = int(rng.integers(0, span - 1))
            ln = int(rng.integers(1, min(150, span - off) + 1))
            data = rng.integers(1, 256, ln, dtype=np.uint8)
            assert p.append("blk", off, data, now=float(step))
            ref[off:off + ln] = data
            written[off:off + ln] = True
        assert p.unit_count > 2  # the stream really crossed units
        for _ in range(30):
            qoff = int(rng.integers(0, span - 1))
            qlen = int(rng.integers(1, span - qoff + 1))
            frags = p.cache_lookup_partial("blk", qoff, qlen)
            got = np.zeros(qlen, dtype=np.uint8)
            covered = np.zeros(qlen, dtype=bool)
            prev_end = None
            for a, frag in frags:
                assert qoff <= a and a + frag.size <= qoff + qlen
                if prev_end is not None:
                    assert a >= prev_end  # sorted and de-overlapped
                prev_end = a + frag.size
                assert not covered[a - qoff:a - qoff + frag.size].any()
                got[a - qoff:a - qoff + frag.size] = frag
                covered[a - qoff:a - qoff + frag.size] = True
            assert np.array_equal(covered, written[qoff:qoff + qlen])
            assert np.array_equal(got[covered], ref[qoff:qoff + qlen][covered])
