"""Tests for ``repro.analysis`` / the ``repro lint`` gate.

Every rule family is proven against a known-positive and known-negative
fixture (``tests/lint_fixtures/``), the suppression discipline is
exercised end to end (reasons required, stale allows flagged, docstring
mentions inert), and the shipped tree itself must pass ``--strict`` —
the same check CI runs.
"""

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import (
    LintConfig,
    all_rules,
    analyze_file,
    analyze_paths,
    render_json,
    render_text,
    rules_by_id,
)
from repro.analysis.core import META_RULES, parse_suppressions
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_SRC = str(Path(__file__).parents[1] / "src")


def lint(name, rule_ids=None, config=None):
    rules = (list(rules_by_id(rule_ids).values()) if rule_ids
             else all_rules())
    return analyze_file(str(FIXTURES / name), rules, config)


def rule_counts(findings, active_only=True):
    return Counter(
        f.rule for f in findings if not (active_only and f.suppressed)
    )


HOT_CONFIG = LintConfig(hot_module_suffixes=(
    "lint_fixtures/hot_positive.py", "lint_fixtures/hot_negative.py",
))


# ----------------------------------------------------------------------
# rule families: each fires on its positive corpus, stays silent on the
# negative one
# ----------------------------------------------------------------------
def test_determinism_rules_fire():
    counts = rule_counts(lint("det_positive.py"))
    assert counts == {
        "det-wallclock": 2, "det-entropy": 3, "det-set-order": 2,
    }


def test_determinism_rules_negative():
    assert rule_counts(lint("det_negative.py")) == {}


def test_wallclock_resolves_import_aliases():
    findings = lint("det_positive.py", rule_ids=["det-wallclock"])
    assert any("time.perf_counter" in f.message for f in findings)


def test_lock_rules_fire():
    counts = rule_counts(lint("locks_positive.py"))
    assert counts == {
        "lock-rmw-unserialized": 1,
        "lock-nested-serialize": 2,
        "lock-yield-while-locked": 3,
    }


def test_lock_rules_negative():
    assert rule_counts(lint("locks_negative.py")) == {}


def test_aliasing_rules_fire():
    counts = rule_counts(lint("alias_positive.py"))
    assert counts == {
        "alias-view-across-yield": 2, "alias-view-escape": 1,
    }


def test_aliasing_rules_negative():
    assert rule_counts(lint("alias_negative.py")) == {}


def test_hotpath_rules_fire():
    counts = rule_counts(lint("hot_positive.py", config=HOT_CONFIG))
    assert counts == {
        "hot-fstring": 3, "hot-closure": 1, "hot-alloc": 1,
    }


def test_hotpath_rules_negative():
    # raise subtrees, fail(...) arguments, and __repr__ are cold.
    assert rule_counts(lint("hot_negative.py", config=HOT_CONFIG)) == {}


def test_hotpath_rules_scoped_to_hot_modules():
    # Without the config naming this file hot, nothing fires at all.
    assert rule_counts(lint("hot_positive.py")) == {}


def test_plane_rules_fire():
    counts = rule_counts(lint("plane_positive.py"))
    assert counts == {"plane-branch": 3}


def test_plane_rules_negative():
    # Constructors and non-generator helpers may branch on the flag;
    # generators may branch on non-plane flags; only the last dotted
    # component of a test name identifies a plane flag.
    assert rule_counts(lint("plane_negative.py")) == {}


def test_plane_rule_scoped_by_markers():
    # An empty marker tuple disables the rule entirely.
    cfg = LintConfig(plane_flag_markers=())
    assert rule_counts(lint("plane_positive.py", config=cfg)) == {}


def test_baseline_rules_fire():
    counts = rule_counts(lint("baseline_positive.py"))
    assert counts == {"dead-import": 3, "unreachable-code": 2}


def test_baseline_rules_negative():
    # __all__ exports, TYPE_CHECKING imports, conditional returns, and the
    # raise-then-bare-yield generator idiom are all clean.
    assert rule_counts(lint("baseline_negative.py")) == {}


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def test_reasoned_suppressions_silence_findings():
    findings = lint("suppress_ok.py")
    assert [f for f in findings if not f.suppressed] == []
    suppressed = [f for f in findings if f.suppressed]
    assert sorted(f.rule for f in suppressed) == [
        "det-entropy", "det-wallclock",
    ]
    assert all(f.suppress_reason for f in suppressed)


def test_docstring_mention_is_not_a_suppression():
    # suppress_ok.py quotes the allow() syntax inside its docstring; a
    # line-based scanner would register (and then flag) a stale allow.
    findings = lint("suppress_ok.py")
    assert not any(f.rule == "unused-suppression" for f in findings)


def test_suppression_audit_findings():
    counts = rule_counts(lint("suppress_bad.py"))
    assert counts == {
        "suppression-missing-reason": 1,  # allow() without -- <reason>
        "unused-suppression": 2,          # stale allow + wrong rule id
        "det-entropy": 1,                 # the violation the wrong id missed
    }


def test_standalone_suppression_binds_to_next_code_line():
    sups = parse_suppressions([
        "# repro-lint: allow(det-wallclock) -- why",
        "# an ordinary comment in between",
        "",
        "t = time.time()",
    ])
    assert len(sups) == 1
    assert sups[0].target_line == 4
    assert sups[0].rules == ("det-wallclock",)
    assert sups[0].reason == "why"


def test_same_line_suppression_with_rule_list():
    sups = parse_suppressions([
        "x = os.urandom(4)  # repro-lint: allow(det-entropy, det-wallclock) -- both",
    ])
    assert len(sups) == 1
    assert sups[0].target_line == 1
    assert sups[0].rules == ("det-entropy", "det-wallclock")


# ----------------------------------------------------------------------
# drivers and reporters
# ----------------------------------------------------------------------
def test_analyze_paths_is_deterministic():
    first = analyze_paths([str(FIXTURES)], all_rules())
    second = analyze_paths([str(FIXTURES)], all_rules())
    assert [f.to_dict() for f in first] == [f.to_dict() for f in second]
    keys = [f.sort_key() for f in first]
    assert keys == sorted(keys)


def test_parse_error_is_a_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    findings = analyze_file(str(bad), all_rules())
    assert [f.rule for f in findings] == ["parse-error"]


def test_render_text_shape():
    findings = lint("baseline_positive.py")
    out = render_text(findings)
    assert "baseline_positive.py" in out
    assert "[dead-import]" in out and "[unreachable-code]" in out
    assert "fix:" in out
    assert "finding(s)" in out


def test_render_json_round_trips():
    findings = lint("suppress_bad.py")
    payload = json.loads(render_json(findings))
    assert payload["summary"]["total"] == len(findings)
    rules = {f["rule"] for f in payload["findings"]}
    assert "det-entropy" in rules and "unused-suppression" in rules


def test_rules_by_id_rejects_unknown():
    with pytest.raises(ValueError):
        rules_by_id(["no-such-rule"])


def test_every_rule_has_fixture_coverage():
    # The registry and the fixture corpus must not drift apart: every
    # registered rule id fires somewhere in the positive fixtures.
    fired = set()
    for name in ("det_positive.py", "locks_positive.py",
                 "alias_positive.py", "baseline_positive.py",
                 "plane_positive.py"):
        fired |= set(rule_counts(lint(name)))
    fired |= set(rule_counts(lint("hot_positive.py", config=HOT_CONFIG)))
    registered = {r.id for r in all_rules()}
    assert registered <= fired


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_exit_codes(capsys):
    fixture = str(FIXTURES / "baseline_positive.py")
    clean = str(FIXTURES / "det_negative.py")
    assert cli_main(["lint", fixture]) == 1
    assert cli_main(["lint", clean]) == 0
    assert cli_main(["lint", "--strict", clean]) == 0
    assert cli_main(["lint", "/no/such/path"]) == 2
    assert cli_main(["lint", fixture, "--rules", "no-such-rule"]) == 2
    capsys.readouterr()


def test_cli_meta_findings_gate_only_strict(capsys):
    # suppress_bad.py's only *unsuppressed* real violation is det-entropy;
    # scope the run to det-wallclock so the remaining findings are all
    # meta (audit) findings: non-strict passes, strict fails.
    fixture = str(FIXTURES / "suppress_bad.py")
    assert cli_main(["lint", fixture, "--rules", "det-wallclock"]) == 0
    assert cli_main(["lint", "--strict", fixture,
                     "--rules", "det-wallclock"]) == 1
    capsys.readouterr()


def test_cli_json_output(capsys):
    cli_main(["lint", "--format", "json", str(FIXTURES / "suppress_ok.py")])
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["suppressed"] == 2
    assert payload["summary"]["active"] == 0


def test_cli_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in out


def test_meta_rules_are_registered_nowhere():
    # Audit findings come from the framework, not the registry — they can
    # never be selected, and therefore never suppressed, by rule id.
    registered = {r.id for r in all_rules()}
    assert registered.isdisjoint(META_RULES)


# ----------------------------------------------------------------------
# the gate itself: the shipped tree is lint-clean under --strict
# ----------------------------------------------------------------------
def test_shipped_tree_is_strict_clean(capsys):
    assert cli_main(["lint", "--strict", REPO_SRC]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
