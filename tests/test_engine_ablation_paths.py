"""Tests for TSUE's ablation configurations (the Fig. 7 variants)."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.harness.experiment import drain_all
from repro.sim import Simulator
from repro.update import make_strategy_factory

K, M, BLOCK = 4, 2, 2048


def build(**flags):
    params = dict(unit_bytes=8 * 1024, flush_age=0.01, flush_interval=0.005)
    params.update(flags)
    sim = Simulator()
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=8, k=K, m=M, block_size=BLOCK, seed=17,
                      client_overhead_s=0.0),
        make_strategy_factory("tsue", **params),
    )
    cluster.register_sparse_file(3, 2 * K * BLOCK)
    client = cluster.add_client("c0")
    cluster.start()
    return sim, cluster, client


def run_to(sim, proc):
    while not proc.fired and sim.peek() != float("inf"):
        sim.step()
    assert proc.fired
    return proc.value


def drive_and_drain(sim, cluster, client, n=40, seed=5):
    rng = np.random.default_rng(seed)

    def driver():
        for _ in range(n):
            off = int(rng.integers(0, 2 * K * BLOCK - 256))
            yield from client.update(3, off, rng.integers(0, 256, 256, dtype=np.uint8))

    run_to(sim, sim.process(driver()))
    run_to(sim, sim.process(drain_all(cluster)))


VARIANTS = [
    dict(use_locality_data=False, use_locality_parity=False,
         use_log_pool=False, n_pools=1, use_delta_log=False),  # baseline
    dict(use_locality_data=True, use_locality_parity=False,
         use_log_pool=False, n_pools=1, use_delta_log=False),  # O1
    dict(use_locality_data=True, use_locality_parity=True,
         use_log_pool=False, n_pools=1, use_delta_log=False),  # O2
    dict(use_locality_data=True, use_locality_parity=True,
         use_log_pool=True, n_pools=1, use_delta_log=False),   # O3
    dict(use_locality_data=True, use_locality_parity=True,
         use_log_pool=True, n_pools=4, use_delta_log=False),   # O4
    dict(use_locality_data=True, use_locality_parity=True,
         use_log_pool=True, n_pools=4, use_delta_log=True),    # O5
]


@pytest.mark.parametrize("flags", VARIANTS)
def test_every_fig7_variant_is_byte_correct(flags):
    sim, cluster, client = build(**flags)
    drive_and_drain(sim, cluster, client)
    cluster.stop()
    for s in range(2):
        assert cluster.stripe_consistent(3, s)


def test_no_locality_variant_does_more_device_work():
    ops = {}
    for merging in (False, True):
        sim, cluster, client = build(
            use_locality_data=merging, use_locality_parity=merging
        )
        drive_and_drain(sim, cluster, client, n=60, seed=9)
        ops[merging] = cluster.total_ops().rw_ops
        cluster.stop()
    assert ops[True] < ops[False]


def test_single_unit_pool_serializes_appends_behind_recycle():
    """O3-off means one unit per pool: appends back-pressure during
    recycling, but the pipeline still completes and stays correct."""
    sim, cluster, client = build(
        use_log_pool=False, n_pools=1, unit_bytes=2 * 1024
    )
    drive_and_drain(sim, cluster, client, n=50, seed=11)
    cluster.stop()
    for s in range(2):
        assert cluster.stripe_consistent(3, s)


def test_delta_log_reduces_parity_messages():
    """Eq. 5 combining means fewer (and combined) tsue_parity transfers."""
    bytes_by = {}
    for delta_on in (False, True):
        sim, cluster, client = build(use_delta_log=delta_on)
        drive_and_drain(sim, cluster, client, n=60, seed=13)
        kinds = cluster.fabric.counters.by_kind
        bytes_by[delta_on] = sum(
            v for k, v in kinds.items() if k == "tsue_parity"
        )
        cluster.stop()
    # With the DeltaLog, parity-log traffic is combined across blocks.
    assert bytes_by[True] <= bytes_by[False]
