"""Ghost-plane <-> byte-plane equivalence: the tentpole safety gate.

The ghost payload plane replaces every ``np.ndarray`` payload with a
metadata-only :class:`~repro.dataplane.GhostExtent`.  Every simulated
cost is a function of payload sizes, so the two planes must be
*bit-identical* in everything the simulator outputs: kernel event
counts, per-client latency streams, completion orderings, and every
simulated row of the bench JSON.  This suite pins that per update
method on a small geometry, proves the drain-consistency gate still
holds on the ghost plane (via parity-coverage intervals), and proves
ghost mode refuses loudly wherever real bytes are required (decode,
scrub/rebuild scenarios).
"""

import numpy as np
import pytest

from repro.dataplane import (
    GhostExtent,
    GhostMaterializationError,
    as_payload,
    assemble_overlay,
    blank_payload,
    concat_payloads,
    is_ghost,
    payload_size,
)
from repro.ec import RSCodec
from repro.workload import METHODS, run_scenario

SMALL = dict(n_clients=2, requests_per_client=30, seed=7)


def _pair(name, method, **kw):
    byte = run_scenario(name, method=method, ghost_dataplane=False,
                        **SMALL, **kw)
    ghost = run_scenario(name, method=method, ghost_dataplane=True,
                         **SMALL, **kw)
    return byte, ghost


# ----------------------------------------------------------------------
# the equivalence property, per method
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", METHODS)
def test_ghost_plane_is_bit_identical_per_method(method):
    byte, ghost = _pair("steady", method)
    # Every simulated-output cell matches: updates/reads, horizon, iops,
    # the full latency percentile set, pipelining peak and lock stats.
    b, g = byte.to_dict(), ghost.to_dict()
    assert g.pop("ghost_dataplane") is True
    assert "ghost_dataplane" not in b  # byte rows stay baseline-identical
    assert b == g
    # The kernel fired exactly the same number of events: the planes
    # walked the same event sequence, not merely similar aggregates.
    assert byte.perf["events"] == ghost.perf["events"]
    # Drain consistency held on both planes (run_scenario raises
    # InconsistentDrainError otherwise); the ghost side checked it via
    # parity-coverage intervals, with no bytes anywhere.
    assert byte.consistent and ghost.consistent


def test_ghost_plane_equivalence_under_contention():
    # hot_stripe serializes RMW methods on stripe locks: lock wait
    # streams are timing-sensitive, so equality here pins ordering too.
    byte, ghost = _pair("hot_stripe", "fo")
    assert byte.lock_contended > 0
    b, g = byte.to_dict(), ghost.to_dict()
    g.pop("ghost_dataplane")
    assert b == g
    assert byte.perf["events"] == ghost.perf["events"]


# ----------------------------------------------------------------------
# refusal: anything needing real bytes rejects the ghost plane
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["degraded_read", "rebuild_under_load",
                                  "double_fault"])
def test_fault_scenarios_refuse_ghost_plane(name):
    with pytest.raises(ValueError, match="real bytes"):
        run_scenario(name, ghost_dataplane=True, **SMALL)


def test_decode_refuses_ghost_shards():
    codec = RSCodec(2, 2)
    shards = {0: GhostExtent(8), 2: GhostExtent(8)}
    with pytest.raises(GhostMaterializationError, match="byte plane"):
        codec.decode(shards, [1])


def test_asarray_on_ghost_raises():
    with pytest.raises(GhostMaterializationError):
        np.asarray(GhostExtent(16))


# ----------------------------------------------------------------------
# GhostExtent: the numpy-duck-typed surface
# ----------------------------------------------------------------------
def test_ghost_extent_metadata_surface():
    g = GhostExtent(64, tag="wl")
    assert g.size == 64 and g.nbytes == 64 and len(g) == 64
    assert g.shape == (64,) and g.ndim == 1 and g.dtype == np.uint8
    assert is_ghost(g) and not is_ghost(np.zeros(4, dtype=np.uint8))
    assert payload_size(g) == 64
    with pytest.raises(ValueError):
        GhostExtent(-1)


def test_ghost_extent_slicing_and_xor():
    g = GhostExtent(64)
    part = g[8:24]
    assert is_ghost(part) and part.size == 16
    assert (g ^ GhostExtent(64)).size == 64
    assert (g ^ np.zeros(64, dtype=np.uint8)).size == 64
    with pytest.raises(ValueError, match="mismatch"):
        g ^ GhostExtent(63)
    with pytest.raises(ValueError, match="contiguous"):
        g[::2]
    with pytest.raises(GhostMaterializationError):
        g[3]  # element reads would need real bytes


def test_ghost_extent_write_validation():
    g = GhostExtent(32)
    gen0 = g.gen
    g[0:16] = GhostExtent(16)      # exact-length range write
    g[16:32] = np.zeros(16, dtype=np.uint8)
    g[0:32] = 0                    # scalars broadcast, as in numpy
    g[4:8] ^= GhostExtent(4)       # getitem -> ixor -> setitem chain
    assert g.gen > gen0
    with pytest.raises(ValueError, match="broadcast"):
        g[0:16] = GhostExtent(15)
    g.flags.writeable = False
    with pytest.raises(ValueError, match="read-only"):
        g[0:16] = GhostExtent(16)
    copy = g.copy()
    assert copy.size == g.size and copy.flags.writeable


def test_payload_helpers_cover_both_planes():
    arr = np.arange(8, dtype=np.uint8)
    assert as_payload(arr) is arr
    assert as_payload([1, 2, 3]).dtype == np.uint8
    g = GhostExtent(8)
    assert as_payload(g) is g
    assert is_ghost(blank_payload(5, ghost=True))
    assert blank_payload(5, ghost=False).sum() == 0
    assert concat_payloads([GhostExtent(3), GhostExtent(5)]).size == 8
    assert np.array_equal(concat_payloads([arr[:4], arr[4:]]), arr)
    assert concat_payloads([]).size == 0
    ghost_read = assemble_overlay(10, 100, [(100, GhostExtent(4)),
                                            (104, GhostExtent(6))])
    assert is_ghost(ghost_read) and ghost_read.size == 10
    byte_read = assemble_overlay(4, 0, [(0, arr[:4])])
    assert np.array_equal(byte_read, arr[:4])


# ----------------------------------------------------------------------
# the scale_out tier itself
# ----------------------------------------------------------------------
def test_scale_out_scenario_runs_ghost_by_default():
    res = run_scenario("scale_out", n_clients=8, requests_per_client=10,
                       seed=7)
    assert res.ghost_dataplane
    assert res.to_dict()["ghost_dataplane"] is True
    assert res.perf["ghost_dataplane"] == 1.0
    assert res.consistent and res.updates == 80
    # perf carries the peak-RSS sample the CI budget asserts against.
    assert res.perf["peak_rss_kb"] > 0
