"""Tests for node failure and recovery."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.recovery import recover_node
from repro.sim import Simulator
from repro.update import make_strategy_factory

K, M, BLOCK = 4, 2, 2048


def build(method="fo", **params):
    sim = Simulator()
    if method == "tsue" and not params:
        params = dict(unit_bytes=8 * 1024, flush_age=0.01, flush_interval=0.005)
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=8, k=K, m=M, block_size=BLOCK, seed=7,
                      client_overhead_s=0.0),
        make_strategy_factory(method, **params),
    )
    return sim, cluster


def load_files(cluster, n_files=3, stripes=2):
    rng = np.random.default_rng(11)
    for i in range(n_files):
        data = rng.integers(0, 256, stripes * K * BLOCK, dtype=np.uint8)
        cluster.instant_load_file(500 + i, data)


def test_recovery_rebuilds_exact_bytes():
    sim, cluster = build("fo")
    load_files(cluster)
    cluster.start()
    victim = max(cluster.osds, key=lambda o: len(o.store.blocks)).name
    before = {
        k: v.copy() for k, v in cluster.osd_by_name(victim).store.blocks.items()
    }
    res = recover_node(cluster, victim)
    cluster.stop()
    assert res.correct
    assert res.blocks_recovered == len(before)
    assert res.bytes_recovered == len(before) * BLOCK
    assert res.bandwidth_mbps > 0
    # Restore moved the rebuilt blocks back to the (replacement) victim;
    # the rebuilder keeps no stale staging copies that could poison its
    # own truth capture if it failed later.
    rebuilder = cluster.osd_by_name(cluster.replica_of(victim))
    for key, expect in before.items():
        assert np.array_equal(cluster.osd_by_name(victim).store.peek(key), expect)
        assert rebuilder.store.peek(key) is None


def test_recovery_handles_parity_blocks_too():
    sim, cluster = build("fo")
    load_files(cluster, n_files=2)
    cluster.start()
    # Find a victim hosting at least one parity block.
    victim = None
    for osd in cluster.osds:
        if any(b >= K for (_, _, b) in osd.store.blocks):
            victim = osd.name
            break
    assert victim is not None
    res = recover_node(cluster, victim)
    cluster.stop()
    assert res.correct


def test_recovery_drains_pending_logs_first():
    """With PL, updates before the failure leave parity logs that must be
    recycled before reconstruction (§2.3.2) — drain time is nonzero and
    recovery still produces correct bytes."""
    sim, cluster = build("pl")
    load_files(cluster, n_files=2, stripes=1)
    client = cluster.add_client("c0")
    cluster.start()

    def updates():
        rng = np.random.default_rng(3)
        for _ in range(25):
            off = int(rng.integers(0, K * BLOCK - 128))
            yield from client.update(500, off, rng.integers(0, 256, 128, dtype=np.uint8))

    p = sim.process(updates())
    while not p.fired and sim.peek() != float("inf"):
        sim.step()
    victim = cluster.placement(500, 0)[0]
    res = recover_node(cluster, victim)
    cluster.stop()
    assert res.correct
    assert res.drain_seconds > 0


def test_tsue_recovery_after_updates():
    sim, cluster = build("tsue")
    load_files(cluster, n_files=2, stripes=1)
    client = cluster.add_client("c0")
    cluster.start()

    def updates():
        rng = np.random.default_rng(5)
        for _ in range(25):
            off = int(rng.integers(0, K * BLOCK - 128))
            yield from client.update(501, off, rng.integers(0, 256, 128, dtype=np.uint8))

    p = sim.process(updates())
    while not p.fired and sim.peek() != float("inf"):
        sim.step()
    victim = cluster.placement(501, 0)[2]
    res = recover_node(cluster, victim)
    cluster.stop()
    assert res.correct


def test_recovery_of_empty_node_is_trivial():
    sim, cluster = build("fo")
    cluster.start()
    res = recover_node(cluster, "osd0")
    cluster.stop()
    assert res.blocks_recovered == 0
    assert res.correct
    assert res.bandwidth_mbps == 0.0


def test_recovery_result_arithmetic():
    from repro.recovery import RecoveryResult

    r = RecoveryResult("osd0", 10, 10 * (1 << 20), 1.0, 1.0, True)
    assert r.total_seconds == 2.0
    assert r.bandwidth_mbps == pytest.approx(5.0)
