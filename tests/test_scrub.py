"""Tests for the parity scrubber."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.harness.experiment import drain_all
from repro.recovery import scrub
from repro.sim import Simulator
from repro.update import make_strategy_factory

K, M, BLOCK = 4, 2, 1024


def build(method="fo"):
    sim = Simulator()
    params = {}
    if method == "tsue":
        params = dict(unit_bytes=8 * 1024, flush_age=0.01, flush_interval=0.005)
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=8, k=K, m=M, block_size=BLOCK, seed=31,
                      client_overhead_s=0.0),
        make_strategy_factory(method, **params),
    )
    rng = np.random.default_rng(2)
    cluster.instant_load_file(900, rng.integers(0, 256, 2 * K * BLOCK, dtype=np.uint8))
    cluster.start()
    return sim, cluster


def run_to(sim, proc):
    while not proc.fired and sim.peek() != float("inf"):
        sim.step()
    assert proc.fired
    return proc.value


def test_clean_stripes_scrub_clean():
    sim, cluster = build()
    report = run_to(sim, sim.process(scrub(cluster, [(900, 0), (900, 1)])))
    cluster.stop()
    assert report.clean
    assert report.stripes_checked == 2
    assert report.bytes_read == 2 * (K + M) * BLOCK
    assert report.seconds > 0  # reads were really costed


def test_scrub_detects_injected_corruption():
    sim, cluster = build()
    names = cluster.placement(900, 1)
    victim = cluster.osd_by_name(names[K])  # first parity block
    victim.store.blocks[(900, 1, K)][7] ^= 0xFF
    report = run_to(sim, sim.process(scrub(cluster, [(900, 0), (900, 1)])))
    cluster.stop()
    assert report.mismatches == [(900, 1)]


def test_scrub_detects_data_corruption_too():
    sim, cluster = build()
    names = cluster.placement(900, 0)
    cluster.osd_by_name(names[1]).store.blocks[(900, 0, 1)][0] ^= 1
    report = run_to(sim, sim.process(scrub(cluster, [(900, 0)])))
    cluster.stop()
    assert not report.clean


def test_scrub_skips_stripes_with_pending_logs():
    sim, cluster = build("pl")
    client = cluster.add_client("c0")

    def upd():
        yield from client.update(900, 0, np.full(64, 9, dtype=np.uint8))

    run_to(sim, sim.process(upd()))
    # Parity logs now hold a pending delta: scrub must skip, not report.
    report = run_to(sim, sim.process(scrub(cluster, [(900, 0)])))
    assert report.stripes_skipped == 1 and report.stripes_checked == 0
    # After drain, the same stripe scrubs clean.
    run_to(sim, sim.process(drain_all(cluster)))
    report2 = run_to(sim, sim.process(scrub(cluster, [(900, 0)])))
    cluster.stop()
    assert report2.clean and report2.stripes_checked == 1


def test_force_scrub_reports_parity_lag_as_mismatch():
    sim, cluster = build("pl")
    client = cluster.add_client("c0")

    def upd():
        yield from client.update(900, 0, np.full(64, 9, dtype=np.uint8))

    run_to(sim, sim.process(upd()))
    report = run_to(sim, sim.process(scrub(cluster, [(900, 0)], force=True)))
    cluster.stop()
    # The data block moved ahead of parity: force-scrub sees the lag.
    assert report.mismatches == [(900, 0)]


def test_tsue_scrub_after_drain_is_clean():
    sim, cluster = build("tsue")
    client = cluster.add_client("c0")
    rng = np.random.default_rng(6)

    def updates():
        for _ in range(20):
            off = int(rng.integers(0, 2 * K * BLOCK - 128))
            yield from client.update(900, off, rng.integers(0, 256, 128, dtype=np.uint8))

    run_to(sim, sim.process(updates()))
    run_to(sim, sim.process(drain_all(cluster)))
    report = run_to(sim, sim.process(scrub(cluster, [(900, 0), (900, 1)])))
    cluster.stop()
    assert report.clean and report.stripes_checked == 2
