"""Tests for degraded reads, MDS-driven recovery, and elastic shrink."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.recovery import fail_osd, recover_node, watch_and_recover
from repro.sim import Simulator
from repro.update import make_strategy_factory

K, M, BLOCK = 4, 2, 2048


def build(method="fo", n_osds=8, **params):
    sim = Simulator()
    if method == "tsue" and not params:
        params = dict(unit_bytes=8 * 1024, flush_age=0.01, flush_interval=0.005)
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=n_osds, k=K, m=M, block_size=BLOCK, seed=13,
                      client_overhead_s=0.0),
        make_strategy_factory(method, **params),
    )
    return sim, cluster


def run_to(sim, proc):
    while not proc.fired and sim.peek() != float("inf"):
        sim.step()
    assert proc.fired
    return proc.value


def load(cluster, inode=600, stripes=2, seed=1):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, stripes * K * BLOCK, dtype=np.uint8)
    cluster.instant_load_file(inode, data)
    return data


def test_degraded_read_decodes_lost_data_block():
    sim, cluster = build()
    data = load(cluster)
    client = cluster.add_client("c0")
    cluster.start()
    # Take down the OSD holding data block 1 of stripe 0.
    victim = cluster.placement(600, 0)[1]
    fail_osd(cluster, victim)

    def rd():
        return (yield from client.read(600, BLOCK + 100, 64, down={victim}))

    got = run_to(sim, sim.process(rd()))
    cluster.stop()
    assert np.array_equal(got, data[BLOCK + 100 : BLOCK + 164])


def test_degraded_read_spanning_live_and_dead_blocks():
    sim, cluster = build()
    data = load(cluster)
    client = cluster.add_client("c0")
    cluster.start()
    victim = cluster.placement(600, 0)[0]
    fail_osd(cluster, victim)

    def rd():
        # Crosses from dead block 0 into live block 1.
        return (yield from client.read(600, BLOCK - 32, 64, down={victim}))

    got = run_to(sim, sim.process(rd()))
    cluster.stop()
    assert np.array_equal(got, data[BLOCK - 32 : BLOCK + 32])


def test_degraded_read_costs_more_than_normal_read():
    sim, cluster = build()
    load(cluster)
    client = cluster.add_client("c0")
    cluster.start()
    victim = cluster.placement(600, 0)[1]

    def normal():
        t0 = sim.now
        yield from client.read(600, BLOCK + 100, 64)
        return sim.now - t0

    t_normal = run_to(sim, sim.process(normal()))
    reads_before = cluster.total_ops().read_ops
    fail_osd(cluster, victim)

    def degraded():
        t0 = sim.now
        yield from client.read(600, BLOCK + 100, 64, down={victim})
        return sim.now - t0

    t_degraded = run_to(sim, sim.process(degraded()))
    reads_during = cluster.total_ops().read_ops - reads_before
    cluster.stop()
    # k whole-block pulls (parallel, so latency grows only modestly) vs
    # one range read; the device-op count shows the real amplification.
    assert t_degraded > t_normal
    assert reads_during >= K


def test_degraded_read_beyond_m_failures_raises():
    sim, cluster = build(n_osds=8)
    load(cluster)
    client = cluster.add_client("c0")
    cluster.start()
    names = cluster.placement(600, 0)
    down = set(names[:3])  # 3 > m=2 failures in one stripe

    def rd():
        try:
            yield from client.read(600, 100, 16, down=down)
        except RuntimeError as e:
            return str(e)

    msg = run_to(sim, sim.process(rd()))
    cluster.stop()
    assert "unrecoverable" in msg


def test_watch_and_recover_detects_and_rebuilds():
    sim, cluster = build("fo")
    data = load(cluster)
    cluster.start()
    # Heartbeats from every OSD; then one dies.
    for osd in cluster.osds:
        osd.start_heartbeat(interval=0.2)
    victim = cluster.placement(600, 0)[0]
    stop = sim.event()
    watcher = sim.process(watch_and_recover(cluster, check_interval=0.3, stop=stop))
    sim.call_at(1.0, lambda: fail_osd(cluster, victim))
    # Step to the failure, then give heartbeat detection (timeout 3 s) and
    # the rebuild time to run their course.
    while victim not in cluster.down_osds and sim.peek() != float("inf"):
        sim.step()
    while victim in cluster.down_osds and sim.peek() != float("inf") and sim.now < 30.0:
        sim.step()
    assert victim not in cluster.down_osds
    stop.succeed()
    while not watcher.fired and sim.peek() != float("inf") and sim.now < 40.0:
        sim.step()
    assert watcher.fired
    results = watcher.value
    assert len(results) == 1
    assert results[0].failed_osd == victim
    assert results[0].correct
    assert results[0].blocks_recovered > 0
    # Restore happened: the victim serves again and normal (non-degraded)
    # reads find the rebuilt bytes through unchanged placement.
    assert cluster.osd_by_name(victim).running
    client = cluster.add_client("c9")

    def rd():
        return (yield from client.read(600, 100, 64))

    got = run_to(sim, sim.process(rd()))
    cluster.stop()
    assert np.array_equal(got, data[100:164])


def test_recover_node_driver_equivalent_to_proc():
    sim, cluster = build("fo")
    load(cluster)
    cluster.start()
    victim = cluster.placement(600, 1)[2]
    res = recover_node(cluster, victim)
    cluster.stop()
    assert res.correct


def test_flush_loop_shrinks_idle_pools():
    """The engine's flush loop periodically releases spare RECYCLED units.

    Growth itself is covered by the pool unit tests; here we grow a pool by
    hand (as a recycle-lag episode would) and check the engine's periodic
    shrink pass returns it to the minimum once idle.
    """
    sim, cluster = build(
        "tsue", unit_bytes=2 * 1024, min_units=2, max_units=6, n_pools=1,
        flush_age=0.01, flush_interval=0.005,
    )
    cluster.start()
    engine = cluster.osds[0].strategy.engine
    pool = engine.data_pools[0]
    # Simulate a burst that outran the recycler: grow to max, then mark
    # everything recycled (as the recycler eventually would).
    while pool.unit_count < pool.max_units:
        pool._new_unit()
        pool.units[-1].state = __import__("repro.logstruct.states", fromlist=["UnitState"]).UnitState.RECYCLED
    assert pool.unit_count == 6
    sim.run(until=sim.now + 2.0)
    cluster.stop()
    assert pool.unit_count == pool.min_units


def test_cli_run_smoke(capsys):
    from repro.cli import main

    rc = main(["run", "--method", "fo", "--clients", "2", "--updates", "5",
               "--k", "4", "--m", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "aggregate IOPS" in out
    assert "verified       : True" in out


def test_cli_parser_covers_all_artifacts():
    from repro.cli import build_parser

    parser = build_parser()
    for cmd in ("run", "fig5", "fig6a", "fig6b", "fig7", "fig8a", "fig8b",
                "table1", "table2", "lifespan"):
        # Must parse without error.
        args = parser.parse_args([cmd] if cmd != "run" else ["run"])
        assert args.cmd == cmd
