"""Failure injection, crash/lock semantics, and the failure scenario axis."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.fs.messages import HostDownError
from repro.harness.experiment import drain_all
from repro.recovery import (
    fail_osd,
    recover_node,
    restore_osd,
    scrub,
    watch_and_recover,
)
from repro.recovery.recovery import _repair_stripes
from repro.sim import Simulator
from repro.update import make_strategy_factory
from repro.workload import METHODS, SCENARIOS, run_scenario

K, M, BLOCK = 4, 2, 2048
SMOKE = dict(n_clients=2, requests_per_client=40)


def build(method="fo", n_osds=8, seed=13, **params):
    sim = Simulator()
    if method == "tsue" and not params:
        params = dict(unit_bytes=8 * 1024, flush_age=0.01, flush_interval=0.005)
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=n_osds, k=K, m=M, block_size=BLOCK, seed=seed,
                      client_overhead_s=0.0),
        make_strategy_factory(method, **params),
    )
    return sim, cluster


def run_to(sim, proc, horizon=120.0):
    while not proc.fired and sim.peek() != float("inf") and sim.now < horizon:
        sim.step()
    assert proc.fired
    return proc.value


def load(cluster, inode=600, stripes=2, seed=1):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, stripes * K * BLOCK, dtype=np.uint8)
    cluster.instant_load_file(inode, data)
    return data


# ----------------------------------------------------------------------
# crash semantics: locks, mailboxes, transports
# ----------------------------------------------------------------------
def test_crashed_osd_releases_stripe_locks_mid_rmw():
    """Satellite regression: an OSD killed while a handler holds (or waits
    on) a per-stripe KeyedLock must not wedge later same-stripe writers."""
    sim, cluster = build("fo")
    load(cluster)
    client = cluster.add_client("c0")
    cluster.start()
    victim_name = cluster.placement(600, 0)[0]
    victim = cluster.osd_by_name(victim_name)

    payload = np.full(256, 7, dtype=np.uint8)
    # Two pipelined same-block updates: one holds the stripe lock mid-RMW,
    # the other queues on it — both states must be reclaimed by the crash.
    p1 = sim.process(client.update(600, 64, payload))
    p2 = sim.process(client.update(600, 64, payload))
    while victim.stripe_locks.keys_held == 0 and sim.peek() != float("inf"):
        sim.step()
    assert victim.stripe_locks.keys_held > 0
    fail_osd(cluster, victim_name, mode="crash")
    sim.run(until=sim.now + 0.01)
    assert victim.stripe_locks.keys_held == 0
    assert victim.stripe_locks.queue_len((600, 0)) == 0
    # The interrupted updates surface the failure to their callers, who
    # fence until recovery; recover the node, then the same stripe is
    # writable again (no wedged lock).
    res = recover_node(cluster, victim_name, repair=True)
    assert res.failed_osd == victim_name
    run_to(sim, p1)
    run_to(sim, p2)
    p3 = sim.process(client.update(600, 64, np.full(256, 9, dtype=np.uint8)))
    run_to(sim, p3)
    run_to(sim, sim.process(drain_all(cluster)))
    assert cluster.stripe_consistent(600, 0)
    cluster.stop()


def test_rpc_to_crashed_host_fails_fast():
    sim, cluster = build("fo")
    load(cluster)
    client = cluster.add_client("c0")
    cluster.start()
    victim = cluster.placement(600, 0)[0]
    fail_osd(cluster, victim, mode="crash")

    def call():
        try:
            yield from client.rpc(victim, "read",
                                  {"key": (600, 0, 0), "offset": 0, "length": 8},
                                  nbytes=24)
        except HostDownError as e:
            return f"down:{e.host}"

    assert run_to(sim, sim.process(call())) == f"down:{victim}"
    cluster.stop()


def test_rpc_to_stopped_host_blocks_until_restart():
    sim, cluster = build("fo")
    data = load(cluster)
    client = cluster.add_client("c0")
    cluster.start()
    victim = cluster.placement(600, 0)[0]
    fail_osd(cluster, victim, mode="stop")

    def call():
        reply = yield from client.rpc(
            victim, "read", {"key": (600, 0, 0), "offset": 0, "length": 16},
            nbytes=24,
        )
        return reply["data"]

    p = sim.process(call())
    sim.run(until=0.05)
    assert not p.fired  # blocked on the transient outage
    restore_osd(cluster, victim)
    got = run_to(sim, p)
    cluster.stop()
    assert np.array_equal(got, data[:16])


def test_crash_fails_queued_mailbox_requests():
    from repro.fs.messages import Message

    sim, cluster = build("fo")
    load(cluster)
    cluster.start()
    victim_name = cluster.placement(600, 0)[0]
    victim = cluster.osd_by_name(victim_name)
    # A request that arrived while the node was going down parks in the
    # mailbox (the dispatcher is gone); the crash must fail its caller.
    victim.stop()
    reply = sim.event(name="parked-reply")
    victim.mailbox.put(
        Message("read", "c0", victim_name,
                {"key": (600, 0, 0), "offset": 0, "length": 8}, 24, reply, sim.now)
    )
    assert len(victim.mailbox) == 1

    def waiter():
        try:
            yield reply
        except HostDownError:
            return "failed"

    p = sim.process(waiter())
    fail_osd(cluster, victim_name, mode="crash")
    assert run_to(sim, p) == "failed"
    assert len(victim.mailbox) == 0
    cluster.stop()


# ----------------------------------------------------------------------
# scrub: per-stripe pending scope + skip reporting (satellite)
# ----------------------------------------------------------------------
def test_scrub_pending_check_is_per_stripe():
    """One stripe's pending parity log must not make the scrubber skip
    clean stripes (the old check was cluster-global)."""
    sim, cluster = build("pl", seed=31)
    load(cluster, inode=900)
    client = cluster.add_client("c0")
    cluster.start()

    def upd():
        yield from client.update(900, 0, np.full(64, 9, dtype=np.uint8))

    run_to(sim, sim.process(upd()))
    report = run_to(sim, sim.process(scrub(cluster, [(900, 0), (900, 1)])))
    # Stripe 0 has the pending delta and is skipped *by key*; stripe 1 is
    # clean and still gets checked.
    assert report.skipped == [(900, 0)]
    assert report.stripes_skipped == 1
    assert report.stripes_checked == 1
    assert report.clean
    run_to(sim, sim.process(drain_all(cluster)))
    report2 = run_to(sim, sim.process(scrub(cluster, [(900, 0), (900, 1)])))
    cluster.stop()
    assert report2.stripes_checked == 2 and report2.clean


def test_scrub_skips_stripes_with_down_member():
    sim, cluster = build("fo", seed=31)
    load(cluster, inode=900)
    cluster.start()
    victim = cluster.placement(900, 0)[0]
    fail_osd(cluster, victim, mode="stop")
    targets = [(900, 0), (900, 1)]
    report = run_to(sim, sim.process(scrub(cluster, targets)))
    down_strips = [
        (i, s) for i, s in targets if victim in cluster.placement(i, s)
    ]
    assert (900, 0) in report.skipped
    assert report.skipped == down_strips
    restore_osd(cluster, victim)
    report2 = run_to(sim, sim.process(scrub(cluster, targets)))
    cluster.stop()
    assert report2.stripes_checked == 2 and report2.clean


# ----------------------------------------------------------------------
# recovery: restore, repair, mismatch reporting (satellites)
# ----------------------------------------------------------------------
def test_recovery_restores_victim_for_normal_reads():
    """Satellite regression: rebuilt blocks must be findable through
    placement — not stranded on the rebuilder while placement still maps
    the keys to the (dead) victim."""
    sim, cluster = build("fo")
    data = load(cluster)
    client = cluster.add_client("c0")
    cluster.start()
    victim = cluster.placement(600, 0)[1]
    fail_osd(cluster, victim, mode="crash")
    res = recover_node(cluster, victim, repair=True)
    assert res.correct and res.mismatched == []
    assert cluster.osd_by_name(victim).running
    assert victim not in cluster.down_osds

    def rd():
        return (yield from client.read(600, BLOCK + 100, 64))

    got = run_to(sim, sim.process(rd()))
    cluster.stop()
    assert np.array_equal(got, data[BLOCK + 100 : BLOCK + 164])
    # The victim itself holds its rebuilt block again.
    assert cluster.osd_by_name(victim).store.peek((600, 0, 1)) is not None


def test_recovery_reports_mismatched_keys():
    """A corrupted survivor poisons the decode; the result names the bad
    key instead of a bare correct=False."""
    sim, cluster = build("fo")
    load(cluster, stripes=1)
    cluster.start()
    names = cluster.placement(600, 0)
    victim = names[3]
    # Corrupt one of the k lowest-indexed survivors recovery will decode
    # from (memory corruption invisible to the drain).
    saboteur = cluster.osd_by_name(names[0])
    saboteur.store.blocks[(600, 0, 0)][11] ^= 0xFF
    res = recover_node(cluster, victim, restore=False)
    cluster.stop()
    assert not res.correct
    assert (600, 0, 3) in res.mismatched


def test_repair_pass_rewrites_torn_parity():
    sim, cluster = build("fo")
    load(cluster, stripes=2)
    cluster.start()
    names = cluster.placement(600, 1)
    # Tear stripe 1: parity 0 loses a delta (simulated by corrupting it).
    cluster.osd_by_name(names[K]).store.blocks[(600, 1, K)][5] ^= 0x5A
    assert not cluster.stripe_consistent(600, 1)
    repaired = run_to(sim, sim.process(_repair_stripes(cluster, names[0])))
    cluster.stop()
    assert repaired == 1
    assert cluster.stripe_consistent(600, 1)


def test_watch_and_recover_handles_sequential_failures():
    """Satellite regression: the watcher must keep recovering, not return
    after the first rebuild."""
    sim, cluster = build("fo")
    load(cluster, stripes=3)
    cluster.start()
    for osd in cluster.osds:
        osd.start_heartbeat(interval=0.2)
    stop = sim.event()
    watcher = sim.process(watch_and_recover(cluster, check_interval=0.3, stop=stop))
    names = cluster.placement(600, 0)
    first, second = names[0], names[2]
    sim.call_at(1.0, lambda: fail_osd(cluster, first))
    sim.call_at(1.2, lambda: fail_osd(cluster, second))
    while cluster.down_osds != set() or sim.now < 1.3:
        if sim.peek() == float("inf") or sim.now > 60.0:
            break
        sim.step()
    assert not cluster.down_osds
    stop.succeed()
    results = run_to(sim, watcher)
    cluster.stop()
    assert [r.failed_osd for r in results] == [first, second]
    assert all(r.correct for r in results)


# ----------------------------------------------------------------------
# degraded reads: byte-correct while an OSD is down (satellite, per method)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", METHODS)
def test_degraded_reads_byte_correct_while_osd_down(method):
    sim, cluster = build(method)
    load(cluster)
    client = cluster.add_client("c0")
    cluster.start()
    rng = np.random.default_rng(8)

    def updates():
        for _ in range(12):
            off = int(rng.integers(0, 2 * K * BLOCK - 200))
            yield from client.update(
                600, off, rng.integers(0, 256, 200, dtype=np.uint8)
            )

    run_to(sim, sim.process(updates()))
    # §2.3.2: drain before relying on parity (degraded reads decode
    # through it).
    run_to(sim, sim.process(drain_all(cluster)))

    victim = cluster.placement(600, 0)[1]
    span = (BLOCK + 100, 64)  # inside the victim's data block

    def rd():
        return (yield from client.read(600, *span))

    expect = run_to(sim, sim.process(rd()))
    fail_osd(cluster, victim, mode="stop")
    degraded = run_to(sim, sim.process(rd()))
    assert victim in cluster.down_osds  # still down while we read
    assert np.array_equal(degraded, expect)
    assert client.degraded_reads > 0
    restore_osd(cluster, victim)
    cluster.stop()


# ----------------------------------------------------------------------
# the scenario axis end to end (tentpole acceptance)
# ----------------------------------------------------------------------
def test_failure_scenarios_registered():
    assert {"degraded_read", "rebuild_under_load", "double_fault"} <= set(SCENARIOS)
    assert SCENARIOS["rebuild_under_load"].recovery
    assert SCENARIOS["double_fault"].recovery
    assert not SCENARIOS["degraded_read"].recovery


@pytest.mark.parametrize("method", METHODS)
def test_rebuild_under_load_all_methods(method):
    """The acceptance bar: every method survives a crash + rebuild under
    live foreground load — consistent drain, clean forced post-recovery
    scrub (run_scenario raises otherwise), and a full recovery section."""
    res = run_scenario("rebuild_under_load", method=method, **SMOKE)
    assert res.consistent
    rec = res.recovery
    assert rec is not None
    assert rec["failures"] == 1 and rec["recoveries"] == 1
    assert rec["scrub_clean"] is True and rec["scrub_stripes"] == 16
    assert rec["recovery_mbps"] > 0
    assert rec["downtime_s"] > 0
    assert res.updates + res.reads == SMOKE["n_clients"] * SMOKE["requests_per_client"]


def test_double_fault_recovers_both():
    res = run_scenario("double_fault", **SMOKE)
    rec = res.recovery
    assert rec["failures"] == 2 and rec["recoveries"] == 2
    assert rec["scrub_clean"] is True


def test_degraded_read_scenario_transient_outage():
    res = run_scenario("degraded_read", **SMOKE)
    rec = res.recovery
    assert rec["failures"] == 1 and rec["recoveries"] == 0  # transient: no rebuild
    assert rec["downtime_s"] > 0
    assert rec["scrub_clean"] is True
    assert res.reads > 0


def test_failure_scenario_results_serialize():
    import json

    res = run_scenario("rebuild_under_load", **SMOKE)
    payload = res.to_dict()
    assert "recovery" in payload
    doc = json.loads(json.dumps(payload))
    assert doc["recovery"]["recovery_mbps"] >= 0
    assert "recovery" in res.render()


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_cli_scenario_rebuild_smoke(capsys):
    from repro.cli import main

    rc = main(["scenario", "rebuild_under_load", "--method", "tsue",
               "--clients", "2", "--requests", "30"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "scenario=rebuild_under_load" in out
    assert "recovery" in out and "consistent : True" in out


def test_cli_bench_recovery_rows(tmp_path, capsys):
    import json

    from repro.cli import main

    path = tmp_path / "bench.json"
    rc = main(["bench", "--clients", "2", "--requests", "30",
               "--scenarios", "steady", "--methods", "tsue",
               "--recovery-scenario", "rebuild_under_load",
               "--json", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "per-method recovery rows (rebuild_under_load)" in out
    payload = json.loads(path.read_text())
    row = payload["recovery"]["tsue"]
    assert row["consistent"] is True
    assert row["recovery"]["scrub_clean"] is True
    assert row["recovery"]["recovery_mbps"] > 0


def test_cli_bench_recovery_none_skips(tmp_path):
    import json

    from repro.cli import main

    path = tmp_path / "bench.json"
    rc = main(["bench", "--clients", "2", "--requests", "30",
               "--scenarios", "steady", "--methods", "tsue",
               "--recovery-scenario", "none", "--json", str(path)])
    assert rc == 0
    assert "recovery" not in json.loads(path.read_text())
