"""Remaining edge coverage: report rendering, device profiles, fig5 module."""

import pytest

from repro.devices.profiles import HDD_2TB_7200, SSD_DATACENTER_400GB
from repro.harness.fig5 import CODES, Fig5Panel
from repro.metrics.report import _fmt, format_series, format_table


def test_fmt_covers_number_classes():
    assert _fmt(0.0) == "0"
    assert _fmt(1234.5) == "1,234"  # thousands grouping for big floats
    assert _fmt(3.14159) == "3.14"
    assert _fmt(0.00123) == "0.00123"
    assert _fmt(12345) == "12,345"
    assert _fmt("x") == "x"


def test_format_table_column_alignment():
    out = format_table(["col", "n"], [["a", 1], ["bbbb", 22]])
    lines = out.splitlines()
    # All rows have equal width.
    assert len({len(line) for line in lines}) == 1


def test_format_series_mismatched_width_raises():
    with pytest.raises(ValueError):
        format_series({"a": [1]}, x=[1, 2], x_name="x")


def test_ssd_profile_envelope_sanity():
    p = SSD_DATACENTER_400GB
    # Random overheads dominate sequential ones by several times.
    assert p.rand_read_overhead > 3 * p.seq_read_overhead
    assert p.rand_write_overhead > 3 * p.seq_write_overhead
    # 4 KiB QD1 random read lands in the published 80-120 us envelope.
    t = p.rand_read_overhead + 4096 / p.rand_read_bw
    assert 80e-6 < t < 120e-6
    assert p.is_flash and p.channels >= 1


def test_hdd_profile_envelope_sanity():
    p = HDD_2TB_7200
    # Effective random read is in the NCQ-assisted ms range.
    assert 3e-3 < p.rand_read_overhead < 13e-3
    # Writes destage faster than reads seek.
    assert p.rand_write_overhead < p.rand_read_overhead
    assert not p.is_flash


def test_fig5_code_grid_matches_paper():
    assert CODES == ((6, 2), (12, 2), (6, 3), (12, 3), (6, 4), (12, 4))


def test_fig5_panel_winner_and_render():
    panel = Fig5Panel(k=6, m=2, trace="ten", clients=[4, 8])
    panel.iops = {"fo": [10.0, 20.0], "tsue": [30.0, 40.0]}
    assert panel.winner_at(4) == "tsue"
    assert panel.winner_at(8) == "tsue"
    text = panel.render()
    assert "RS(6,2)" in text and "clients" in text
    with pytest.raises(ValueError):
        panel.winner_at(99)
