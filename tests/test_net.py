"""Tests for the network fabric."""

import pytest

from repro.net import Fabric, NET_25GBE, NET_40GIB, NetworkProfile
from repro.sim import Simulator


def test_transfer_costs_serialize_latency_deserialize():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    fab.attach("b")
    nbytes = 1 << 20

    def proc(sim, fab):
        yield from fab.transfer("a", "b", nbytes)
        return sim.now

    p = sim.process(proc(sim, fab))
    sim.run()
    wire = (nbytes + NET_25GBE.header_bytes) / NET_25GBE.bandwidth
    assert p.value == pytest.approx(2 * wire + NET_25GBE.base_latency)


def test_local_transfer_is_free_and_uncounted():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")

    def proc(sim, fab):
        yield from fab.transfer("a", "a", 10**9)
        return sim.now

    p = sim.process(proc(sim, fab))
    sim.run()
    assert p.value == 0.0
    assert fab.counters.messages == 0


def test_counters_accumulate_by_kind():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    for n in ("a", "b"):
        fab.attach(n)

    def proc(sim, fab):
        yield from fab.transfer("a", "b", 100, kind="delta")
        yield from fab.transfer("b", "a", 50, kind="delta")
        yield from fab.transfer("a", "b", 25, kind="ack")

    sim.process(proc(sim, fab))
    sim.run()
    assert fab.counters.messages == 3
    assert fab.counters.bytes_sent == 175
    assert fab.counters.by_kind == {"delta": 150, "ack": 25}
    assert fab.nics["a"].counters.bytes_sent == 125
    assert fab.nics["b"].counters.bytes_sent == 50


def test_sender_tx_serializes_concurrent_transfers():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    for n in ("a", "b", "c"):
        fab.attach(n)
    done = []

    def send(sim, fab, dst, nbytes):
        yield from fab.transfer("a", dst, nbytes)
        done.append((dst, sim.now))

    nbytes = 10 << 20
    sim.process(send(sim, fab, "b", nbytes))
    sim.process(send(sim, fab, "c", nbytes))
    sim.run()
    wire = (nbytes + NET_25GBE.header_bytes) / NET_25GBE.bandwidth
    # Second transfer's serialisation waits for the first.
    assert done[0][1] == pytest.approx(2 * wire + NET_25GBE.base_latency)
    assert done[1][1] == pytest.approx(3 * wire + NET_25GBE.base_latency)


def test_unattached_endpoint_raises():
    sim = Simulator()
    fab = Fabric(sim)
    fab.attach("a")

    def proc(sim, fab):
        yield from fab.transfer("a", "ghost", 10)

    sim.process(proc(sim, fab))
    with pytest.raises(KeyError):
        sim.run()


def test_negative_size_rejected():
    sim = Simulator()
    fab = Fabric(sim)
    fab.attach("a")
    fab.attach("b")

    def proc(sim, fab):
        yield from fab.transfer("a", "b", -1)

    sim.process(proc(sim, fab))
    with pytest.raises(ValueError):
        sim.run()


def test_attach_is_idempotent():
    sim = Simulator()
    fab = Fabric(sim)
    n1 = fab.attach("a")
    n2 = fab.attach("a")
    assert n1 is n2


def test_infiniband_profile_has_lower_latency():
    assert NET_40GIB.base_latency < NET_25GBE.base_latency
    assert NET_40GIB.bandwidth > NET_25GBE.bandwidth


def test_profile_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Fabric(sim, NetworkProfile("bad", bandwidth=-1, base_latency=0)).attach("x")
