"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Resource, Simulator, Store


def test_resource_serializes_single_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    starts = []

    def worker(sim, res, i):
        yield res.request()
        starts.append((i, sim.now))
        yield sim.timeout(2.0)
        res.release()

    for i in range(3):
        sim.process(worker(sim, res, i))
    sim.run()
    assert starts == [(0, 0.0), (1, 2.0), (2, 4.0)]


def test_resource_parallelism_matches_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    starts = []

    def worker(sim, res, i):
        yield res.request()
        starts.append((i, sim.now))
        yield sim.timeout(1.0)
        res.release()

    for i in range(4):
        sim.process(worker(sim, res, i))
    sim.run()
    assert starts == [(0, 0.0), (1, 0.0), (2, 1.0), (3, 1.0)]


def test_resource_fifo_grant_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, res, i, delay):
        yield sim.timeout(delay)
        yield res.request()
        order.append(i)
        yield sim.timeout(1.0)
        res.release()

    sim.process(worker(sim, res, "late", 0.2))
    sim.process(worker(sim, res, "early", 0.1))
    sim.process(worker(sim, res, "first", 0.0))
    sim.run()
    assert order == ["first", "early", "late"]


def test_resource_use_helper_releases_on_completion():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker(sim, res):
        yield from res.use(1.5)
        return sim.now

    p1 = sim.process(worker(sim, res))
    p2 = sim.process(worker(sim, res))
    sim.run()
    assert (p1.value, p2.value) == (1.5, 3.0)
    assert res.in_use == 0


def test_release_of_idle_resource_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        res.release()


def test_capacity_validation():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


def test_store_put_before_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")

    def getter(sim, store):
        item = yield store.get()
        return item

    p = sim.process(getter(sim, store))
    sim.run()
    assert p.value == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def getter(sim, store):
        item = yield store.get()
        return (sim.now, item)

    def putter(sim, store):
        yield sim.timeout(3.0)
        store.put("late")

    g = sim.process(getter(sim, store))
    sim.process(putter(sim, store))
    sim.run()
    assert g.value == (3.0, "late")


def test_store_fifo_ordering_of_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim, store, tag):
        item = yield store.get()
        got.append((tag, item))

    sim.process(getter(sim, store, "g1"))
    sim.process(getter(sim, store, "g2"))

    def putter(sim, store):
        yield sim.timeout(1.0)
        store.put("a")
        store.put("b")

    sim.process(putter(sim, store))
    sim.run()
    assert got == [("g1", "a"), ("g2", "b")]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put(1)
    store.put(2)
    assert store.try_get() == 1
    assert len(store) == 1
