"""End-to-end tests for the named scenario registry and its CLI."""

import json

import pytest

from repro.workload import (
    SCENARIOS,
    Scenario,
    PoissonArrivals,
    register_scenario,
    results_to_json,
    run_all_scenarios,
    run_scenario,
)

SMOKE = dict(n_clients=2, requests_per_client=40)


def test_required_scenarios_registered():
    assert {"steady", "burst", "diurnal", "mixed_rw"} <= set(SCENARIOS)


def test_register_rejects_duplicates():
    with pytest.raises(ValueError):
        register_scenario(Scenario(
            name="steady", description="dup",
            make_arrivals=lambda: PoissonArrivals(1.0),
        ))


def test_unknown_scenario_raises():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_scenario("nope", **SMOKE)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_runs_end_to_end(name):
    res = run_scenario(name, **SMOKE)
    assert res.updates > 0
    assert res.horizon > 0 and res.iops > 0
    assert res.consistent
    # Open-loop pipelining genuinely overlaps requests in every scenario.
    assert res.peak_inflight > 1
    assert 0 < res.p50_latency <= res.p95_latency <= res.p99_latency
    if SCENARIOS[name].read_fraction > 0:
        assert res.reads > 0
    else:
        assert res.reads == 0
    assert res.updates + res.reads == SMOKE["n_clients"] * SMOKE["requests_per_client"]


def test_scenarios_deterministic_for_fixed_seed():
    a = run_scenario("burst", seed=11, **SMOKE)
    b = run_scenario("burst", seed=11, **SMOKE)
    assert a.to_dict() == b.to_dict()
    c = run_scenario("burst", seed=12, **SMOKE)
    assert c.to_dict() != a.to_dict()


def test_run_all_scenarios_and_json_payload():
    results = run_all_scenarios(names=["steady", "mixed_rw"], **SMOKE)
    payload = results_to_json(results)
    assert payload["bench"] == "scenarios"
    assert set(payload["scenarios"]) == {"steady", "mixed_rw"}
    doc = json.dumps(payload)  # must be JSON-serialisable
    assert "p99_latency_us" in doc


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_cli_scenario_runs_each_name(capsys):
    from repro.cli import main

    for name in ("steady", "burst", "diurnal", "mixed_rw"):
        rc = main(["scenario", name, "--clients", "2", "--requests", "30"])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"scenario={name}" in out
        assert "p99" in out and "consistent : True" in out


def test_cli_scenario_list(capsys):
    from repro.cli import main

    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out


def test_cli_bench_writes_json_baseline(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "BENCH_scenarios.json"
    rc = main(["bench", "--clients", "2", "--requests", "30",
               "--json", str(path)])
    assert rc == 0
    payload = json.loads(path.read_text())
    assert set(payload["scenarios"]) >= {"steady", "burst", "diurnal", "mixed_rw"}
    for entry in payload["scenarios"].values():
        assert entry["consistent"] is True
        assert entry["iops"] > 0
