"""End-to-end tests for the named scenario registry and its CLI."""

import json

import pytest

from repro.workload import (
    METHODS,
    SCENARIOS,
    Scenario,
    PoissonArrivals,
    register_scenario,
    results_to_json,
    run_all_scenarios,
    run_method_sweep,
    run_scenario,
)

SMOKE = dict(n_clients=2, requests_per_client=40)


def test_required_scenarios_registered():
    assert {"steady", "burst", "diurnal", "mixed_rw", "hot_stripe"} <= set(SCENARIOS)


def test_register_rejects_duplicates():
    with pytest.raises(ValueError):
        register_scenario(Scenario(
            name="steady", description="dup",
            make_arrivals=lambda: PoissonArrivals(1.0),
        ))


def test_unknown_scenario_raises():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_scenario("nope", **SMOKE)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_runs_end_to_end(name):
    res = run_scenario(name, **SMOKE)
    assert res.updates > 0
    assert res.horizon > 0 and res.iops > 0
    assert res.consistent
    # Open-loop pipelining genuinely overlaps requests in every scenario.
    assert res.peak_inflight > 1
    assert 0 < res.p50_latency <= res.p95_latency <= res.p99_latency
    # Default method is tsue, which never takes stripe locks.
    assert res.method == "tsue"
    assert res.lock_acquisitions == 0 and res.lock_contended == 0
    if SCENARIOS[name].read_fraction > 0:
        assert res.reads > 0
    else:
        assert res.reads == 0
    assert res.updates + res.reads == SMOKE["n_clients"] * SMOKE["requests_per_client"]


@pytest.mark.parametrize("method", METHODS)
def test_every_method_drains_consistent_under_pipelining(method):
    """The PR-2 acceptance bar: iodepth >= 8 pipelining (16 on hot_stripe)
    leaves every method parity-consistent — run_scenario would raise
    InconsistentDrainError otherwise."""
    for name in ("steady", "hot_stripe"):
        res = run_scenario(name, method=method, **SMOKE)
        assert res.consistent
        assert SCENARIOS[name].iodepth >= 8
        if method in ("fl", "tsue"):
            assert res.lock_acquisitions == 0
        else:
            # One lock grant per OSD-level extent update; a client update
            # spanning several blocks takes several locks.
            assert res.lock_acquisitions >= res.updates
            assert res.lock_wait_mean >= 0.0


def test_hot_stripe_contends_for_in_place_methods():
    res = run_scenario("hot_stripe", method="fo", **SMOKE)
    assert res.lock_contended > 0
    assert res.lock_wait_p99 > 0.0
    assert res.lock_wait_p99 >= res.lock_wait_mean


def test_scenarios_deterministic_for_fixed_seed():
    a = run_scenario("burst", seed=11, **SMOKE)
    b = run_scenario("burst", seed=11, **SMOKE)
    assert a.to_dict() == b.to_dict()
    c = run_scenario("burst", seed=12, **SMOKE)
    assert c.to_dict() != a.to_dict()


def test_run_all_scenarios_and_json_payload():
    results = run_all_scenarios(names=["steady", "mixed_rw"], **SMOKE)
    payload = results_to_json(results)
    assert payload["bench"] == "scenarios"
    assert set(payload["scenarios"]) == {"steady", "mixed_rw"}
    assert "methods" not in payload
    doc = json.dumps(payload)  # must be JSON-serialisable
    assert "p99_latency_us" in doc
    assert "lock_wait_p99_us" in doc


def test_run_all_scenarios_rejects_empty_explicit_selection():
    with pytest.raises(ValueError, match="empty scenario selection"):
        run_all_scenarios(names=[], **SMOKE)


def test_method_sweep_rows_and_json_section():
    rows = run_method_sweep(
        scenario="hot_stripe", methods=["fo", "tsue"], **SMOKE
    )
    assert [r.method for r in rows] == ["fo", "tsue"]
    assert all(r.name == "hot_stripe" and r.consistent for r in rows)
    payload = results_to_json([], method_rows=rows)
    assert set(payload["methods"]) == {"fo", "tsue"}
    assert payload["methods"]["fo"]["lock_acquisitions"] > 0
    assert payload["methods"]["tsue"]["lock_acquisitions"] == 0
    with pytest.raises(ValueError, match="empty method selection"):
        run_method_sweep(methods=[], **SMOKE)
    # Matching (scenario, method) cells from `reuse` are returned as-is
    # instead of re-simulated.
    reused = run_method_sweep(
        scenario="hot_stripe", methods=["tsue", "fl"], reuse=rows, **SMOKE
    )
    assert reused[0] is rows[1] and reused[1].method == "fl"


def test_methods_tuple_covers_the_strategy_registry():
    from repro.update import STRATEGIES

    assert set(METHODS) == set(STRATEGIES)
    assert len(METHODS) == len(STRATEGIES)


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_cli_scenario_runs_each_name(capsys):
    from repro.cli import main

    for name in ("steady", "burst", "diurnal", "mixed_rw"):
        rc = main(["scenario", name, "--clients", "2", "--requests", "30"])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"scenario={name}" in out
        assert "p99" in out and "consistent : True" in out


def test_cli_scenario_list(capsys):
    from repro.cli import main

    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out


def test_cli_bench_writes_json_baseline(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "BENCH_scenarios.json"
    rc = main(["bench", "--clients", "2", "--requests", "30",
               "--methods", "fo", "tsue", "--json", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "per-method rows (hot_stripe)" in out
    payload = json.loads(path.read_text())
    assert set(payload["scenarios"]) >= {"steady", "burst", "diurnal",
                                         "mixed_rw", "hot_stripe"}
    for entry in payload["scenarios"].values():
        assert entry["consistent"] is True
        assert entry["iops"] > 0
        assert entry["lock_wait_mean_us"] >= 0.0
    assert set(payload["methods"]) == {"fo", "tsue"}


def test_cli_bench_scale_out_rows(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "bench.json"
    base = ["bench", "--clients", "2", "--requests", "10",
            "--scenarios", "steady", "--methods", "tsue", "fl",
            "--recovery-scenario", "none", "--scale-up-scenario", "none"]
    rc = main(base + ["--json", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "ghost-plane cluster rows (scale_out)" in out
    payload = json.loads(path.read_text())
    assert set(payload["scale_out"]) == {"tsue", "fl"}
    for row in payload["scale_out"].values():
        assert row["ghost_dataplane"] is True
        assert row["consistent"] is True
    assert payload["perf"]["scale_out/tsue"]["ghost_dataplane"] == 1.0
    # Registry rows stay plane-free: no ghost key anywhere in them.
    for row in payload["scenarios"].values():
        assert "ghost_dataplane" not in row
    # "none" skips the sweep entirely.
    rc = main(base + ["--scale-out-scenario", "none", "--json", str(path)])
    assert rc == 0
    capsys.readouterr()
    assert "scale_out" not in json.loads(path.read_text())


def test_baseline_drift_reports_leaf_paths():
    from repro.cli import _baseline_drift

    base = {
        "scenarios": {
            "steady": {"iops": 1.0, "recovery": {"drain_s": 0.1},
                       "gone": 4},
        },
        "recovery": {"tsue": {"p99": 5.0}},
        "scale_out": {"fl": {"updates": 10}},
        "perf": {"steady": {"wall_s": 1.0}},
    }
    new = {
        "scenarios": {
            "steady": {"iops": 2.0, "recovery": {"drain_s": 0.1},
                       "fresh": 9},
            "burst": {"iops": 3.0},
        },
        "scale_out": {"fl": {"updates": 12}},
        "perf": {"steady": {"wall_s": 9.0}},
    }
    drift = _baseline_drift(base, new)
    # Leaf cells report dotted paths with old -> new values; unchanged
    # nested leaves (recovery.drain_s) stay silent.
    assert "scenarios.steady.iops: 1.0 -> 2.0" in drift
    assert "scale_out.fl.updates: 10 -> 12" in drift
    assert "scenarios.steady.gone: 4 -> <absent>" in drift
    assert "scenarios.steady.fresh: <absent> -> 9" in drift
    assert ("recovery.tsue: present in baseline, missing from this run"
            in drift)
    assert not any("drain_s" in d for d in drift)
    # New rows are additions, not drift; perf is ignored entirely.
    assert not any("burst" in d or "perf" in d for d in drift)
    assert _baseline_drift(base, base) == []


def test_cli_bench_scenario_subset_and_no_methods(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "bench.json"
    rc = main(["bench", "--clients", "2", "--requests", "30",
               "--scenarios", "steady", "--methods", "--json", str(path)])
    assert rc == 0
    payload = json.loads(path.read_text())
    assert set(payload["scenarios"]) == {"steady"}
    assert "methods" not in payload
