"""Tests for stripe geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import BlockAddr, StripeMap


def test_locate_basics():
    sm = StripeMap(k=4, m=2, block_size=100)
    assert sm.locate(0) == (0, 0, 0)
    assert sm.locate(99) == (0, 0, 99)
    assert sm.locate(100) == (0, 1, 0)
    assert sm.locate(399) == (0, 3, 99)
    assert sm.locate(400) == (1, 0, 0)


def test_locate_negative_offset():
    sm = StripeMap(4, 2, 100)
    with pytest.raises(ValueError):
        sm.locate(-1)


def test_extents_within_one_block():
    sm = StripeMap(4, 2, 100)
    ext = sm.extents(inode=7, file_offset=150, length=30)
    assert len(ext) == 1
    e = ext[0]
    assert e.addr == BlockAddr(7, 0, 1)
    assert (e.offset, e.length, e.file_offset) == (50, 30, 150)


def test_extents_cross_block_and_stripe():
    sm = StripeMap(2, 1, 100)  # stripe span = 200
    ext = sm.extents(inode=1, file_offset=150, length=200)
    # 150..200 in (s0,b1), 200..300 in (s1,b0), 300..350 in (s1,b1)
    assert [(e.addr.stripe, e.addr.block_index, e.offset, e.length) for e in ext] == [
        (0, 1, 50, 50),
        (1, 0, 0, 100),
        (1, 1, 0, 50),
    ]


def test_extents_zero_length():
    sm = StripeMap(2, 1, 100)
    assert sm.extents(0, 500, 0) == []
    with pytest.raises(ValueError):
        sm.extents(0, 0, -5)


def test_stripes_touched():
    sm = StripeMap(2, 1, 100)
    assert sm.stripes_touched(0, 1) == [0]
    assert sm.stripes_touched(150, 200) == [0, 1]
    assert sm.stripes_touched(10, 0) == []


def test_block_addr_parity_classification():
    assert not BlockAddr(0, 0, 3).is_parity(k=4)
    assert BlockAddr(0, 0, 4).is_parity(k=4)


def test_stripe_iterators():
    sm = StripeMap(3, 2, 64)
    s = sm.stripe(inode=9, index=2)
    blocks = list(s.blocks())
    assert len(blocks) == 5
    assert [b.block_index for b in s.data_blocks()] == [0, 1, 2]
    assert [b.block_index for b in s.parity_blocks()] == [3, 4]
    assert s.data_span == 192


@settings(deadline=None, max_examples=100)
@given(
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=16, max_value=4096),
    st.integers(min_value=0, max_value=10**7),
    st.integers(min_value=1, max_value=20_000),
)
def test_extents_partition_the_range(k, m, block_size, offset, length):
    """Extents must tile [offset, offset+length) exactly, in order."""
    sm = StripeMap(k, m, block_size)
    ext = sm.extents(0, offset, length)
    assert sum(e.length for e in ext) == length
    pos = offset
    for e in ext:
        assert e.file_offset == pos
        stripe, block, off = sm.locate(pos)
        assert (e.addr.stripe, e.addr.block_index, e.offset) == (stripe, block, off)
        assert 0 < e.length <= block_size - e.offset
        pos += e.length


def test_geometry_validation():
    with pytest.raises(ValueError):
        StripeMap(0, 1, 10)
    with pytest.raises(ValueError):
        StripeMap(1, 1, 0)
