"""White-box tests of strategy-specific mechanisms."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.harness.experiment import drain_all
from repro.sim import Simulator
from repro.update import make_strategy_factory

K, M, BLOCK = 4, 2, 2048


def build(method, **params):
    sim = Simulator()
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=8, k=K, m=M, block_size=BLOCK, seed=21,
                      client_overhead_s=0.0),
        make_strategy_factory(method, **params),
    )
    inode = 50
    cluster.register_sparse_file(inode, 2 * K * BLOCK)
    client = cluster.add_client("c0")
    cluster.start()
    return sim, cluster, client, inode


def run_to(sim, proc):
    while not proc.fired and sim.peek() != float("inf"):
        sim.step()
    assert proc.fired
    return proc.value


def drive(sim, client, inode, n, size=256, seed=1):
    rng = np.random.default_rng(seed)

    def driver():
        for _ in range(n):
            off = int(rng.integers(0, 2 * K * BLOCK - size))
            yield from client.update(inode, off, rng.integers(0, 256, size, dtype=np.uint8))

    run_to(sim, sim.process(driver()))


# ----------------------------------------------------------------------
# PARIX
# ----------------------------------------------------------------------
def test_parix_first_vs_repeat_classification():
    sim, cluster, client, inode = build("parix")

    def scenario():
        p = np.full(128, 1, dtype=np.uint8)
        yield from client.update(inode, 0, p)      # first
        yield from client.update(inode, 0, p)      # repeat (covered)
        yield from client.update(inode, 64, p)     # extends beyond: first
        yield from client.update(inode, 64, p)     # now covered

    run_to(sim, sim.process(scenario()))
    data_osd = cluster.osd_by_name(cluster.placement(inode, 0)[0])
    s = data_osd.strategy
    cluster.stop()
    assert s.first_updates == 2
    assert s.repeat_updates == 2


def test_parix_first_update_costs_extra_network():
    sim, cluster, client, inode = build("parix")

    def one(off):
        def go():
            t0 = sim.now
            yield from client.update(inode, off, np.full(128, 3, dtype=np.uint8))
            return sim.now - t0

        return run_to(sim, sim.process(go()))

    t_first = one(0)
    t_repeat = one(0)
    cluster.stop()
    assert t_first > 1.3 * t_repeat  # read-old + serialized extra hop


def test_parix_threshold_triggers_compaction():
    sim, cluster, client, inode = build("parix", recycle_threshold_bytes=4096)
    drive(sim, client, inode, 40, size=512)
    total = sum(o.strategy.threshold_recycles for o in cluster.osds)
    run_to(sim, sim.process(drain_all(cluster)))
    cluster.stop()
    assert total > 0
    for s in range(2):
        assert cluster.stripe_consistent(inode, s)


def test_parix_orig_refresh_survives_compaction():
    """After a mid-run compaction, repeats still produce correct parity."""
    sim, cluster, client, inode = build("parix", recycle_threshold_bytes=2048)

    def scenario():
        for v in range(1, 8):
            yield from client.update(inode, 100, np.full(600, v, dtype=np.uint8))

    run_to(sim, sim.process(scenario()))
    run_to(sim, sim.process(drain_all(cluster)))
    cluster.stop()
    assert cluster.stripe_consistent(inode, 0)
    blk = cluster.osd_by_name(cluster.placement(inode, 0)[0]).store.peek((inode, 0, 0))
    assert np.all(blk[100:700] == 7)


# ----------------------------------------------------------------------
# PLR
# ----------------------------------------------------------------------
def test_plr_reserved_region_recycles_synchronously():
    sim, cluster, client, inode = build("plr", reserve_bytes=1024)
    drive(sim, client, inode, 30, size=512)
    recycles = sum(o.strategy.sync_recycles for o in cluster.osds)
    run_to(sim, sim.process(drain_all(cluster)))
    cluster.stop()
    assert recycles > 0
    assert cluster.stripe_consistent(inode, 0)


def test_plr_appends_are_random_writes():
    sim, cluster, client, inode = build("plr", reserve_bytes=1 << 20)
    before = cluster.total_ops().write_ops_rand
    drive(sim, client, inode, 10)
    after = cluster.total_ops().write_ops_rand
    cluster.stop()
    # Data RMW (1 random write) + m random log appends per update.
    assert after - before >= 10 * (1 + M)


# ----------------------------------------------------------------------
# CoRD
# ----------------------------------------------------------------------
def test_cord_buffer_recycles_when_full():
    sim, cluster, client, inode = build("cord", buffer_bytes=2048)
    drive(sim, client, inode, 40, size=512)
    recycles = sum(o.strategy.sync_recycles for o in cluster.osds)
    run_to(sim, sim.process(drain_all(cluster)))
    cluster.stop()
    assert recycles > 0
    for s in range(2):
        assert cluster.stripe_consistent(inode, s)


def test_cord_collector_is_first_parity_osd():
    sim, cluster, client, inode = build("cord")

    def one():
        yield from client.update(inode, 0, np.full(64, 5, dtype=np.uint8))

    run_to(sim, sim.process(one()))
    collector = cluster.osd_by_name(cluster.placement(inode, 0)[K])
    cluster.stop()
    assert collector.strategy.buf_used > 0


def test_cord_network_cheaper_than_fo_at_m_ge_2():
    traffic = {}
    for method in ("fo", "cord"):
        sim, cluster, client, inode = build(method)
        drive(sim, client, inode, 30)
        run_to(sim, sim.process(drain_all(cluster)))
        traffic[method] = cluster.total_net().bytes_sent
        cluster.stop()
    # CoRD sends one delta to the collector vs FO's m parity fan-outs.
    assert traffic["cord"] < traffic["fo"]


# ----------------------------------------------------------------------
# PL / FL
# ----------------------------------------------------------------------
def test_pl_defers_until_threshold():
    sim, cluster, client, inode = build("pl", recycle_threshold_bytes=1024)
    drive(sim, client, inode, 20, size=512)
    # The small threshold forced in-line recycles; logs stay bounded.
    max_pending = max(o.strategy.pending_log_bytes() for o in cluster.osds)
    run_to(sim, sim.process(drain_all(cluster)))
    cluster.stop()
    assert max_pending <= 1024 + 512
    assert cluster.stripe_consistent(inode, 0)


def test_fl_threshold_recycle_and_read_overlay():
    sim, cluster, client, inode = build("fl", recycle_threshold_bytes=4096)
    drive(sim, client, inode, 30, size=512)

    def rd():
        return (yield from client.read(inode, 0, 64))

    run_to(sim, sim.process(rd()))  # served with overlay, must not crash
    run_to(sim, sim.process(drain_all(cluster)))
    cluster.stop()
    for s in range(2):
        assert cluster.stripe_consistent(inode, s)


def test_fl_log_bounded_by_threshold():
    sim, cluster, client, inode = build("fl", recycle_threshold_bytes=2048)
    drive(sim, client, inode, 40, size=512)
    pending = max(o.strategy.pending_log_bytes() for o in cluster.osds)
    run_to(sim, sim.process(drain_all(cluster)))
    cluster.stop()
    assert pending <= 2048 + 512
