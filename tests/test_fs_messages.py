"""Tests for the RPC substrate."""

import pytest

from repro.fs.messages import MSG_OVERHEAD, HostDownError, Message, RpcHost
from repro.net import Fabric, NET_25GBE
from repro.sim import Simulator


def make_pair():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    a = RpcHost(sim, fab, "a")
    b = RpcHost(sim, fab, "b")
    peers = {"a": a, "b": b}
    a.connect(peers)
    b.connect(peers)
    return sim, fab, a, b


def test_rpc_roundtrip_returns_reply_payload():
    sim, fab, a, b = make_pair()

    def echo(msg):
        yield sim.timeout(0)
        return {"echo": msg.payload["x"] * 2}, 8

    b.register("echo", echo)
    a.start()
    b.start()

    def caller():
        reply = yield from a.rpc("b", "echo", {"x": 21}, nbytes=8)
        return reply["echo"]

    p = sim.process(caller())
    sim.run(until=1.0)
    assert p.value == 42
    assert sim.now > 0  # transfers cost time


def test_rpc_counts_both_directions():
    sim, fab, a, b = make_pair()

    def noop(msg):
        yield sim.timeout(0)
        return {}, 100

    b.register("noop", noop)
    a.start()
    b.start()
    p = sim.process(a.rpc("b", "noop", {}, nbytes=50))
    sim.run(until=1.0)
    assert p.fired
    assert fab.counters.messages == 2
    assert fab.counters.bytes_sent == (50 + MSG_OVERHEAD) + (100 + MSG_OVERHEAD)


def test_send_is_one_way():
    sim, fab, a, b = make_pair()
    got = []

    def sink(msg):
        yield sim.timeout(0)
        got.append(msg.payload["v"])

    b.register("sink", sink)
    a.start()
    b.start()
    sim.process(a.send("b", "sink", {"v": 7}, nbytes=4))
    sim.run(until=1.0)
    assert got == [7]
    assert fab.counters.messages == 1


def test_concurrent_handlers_interleave():
    sim, fab, a, b = make_pair()
    order = []

    def slow(msg):
        yield sim.timeout(0.5)
        order.append("slow")
        return {}, 0

    def fast(msg):
        yield sim.timeout(0.1)
        order.append("fast")
        return {}, 0

    b.register("slow", slow)
    b.register("fast", fast)
    a.start()
    b.start()
    sim.process(a.rpc("b", "slow", {}, nbytes=0))
    sim.process(a.rpc("b", "fast", {}, nbytes=0))
    sim.run(until=2.0)
    assert order == ["fast", "slow"]  # dispatcher does not serialize handlers


def test_missing_handler_fails_caller():
    sim, fab, a, b = make_pair()
    a.start()
    b.start()

    def caller():
        try:
            yield from a.rpc("b", "ghost", {}, nbytes=0)
        except KeyError as e:
            return f"err:{e}"

    p = sim.process(caller())
    sim.run(until=1.0)
    assert "ghost" in p.value


def test_unknown_route_raises():
    sim, fab, a, b = make_pair()
    a.start()

    def caller():
        yield from a.rpc("nowhere", "x", {}, nbytes=0)

    sim.process(caller())
    with pytest.raises(KeyError):
        sim.run(until=1.0)


def test_duplicate_handler_registration_rejected():
    sim, fab, a, _ = make_pair()
    a.register("k", lambda msg: None)
    with pytest.raises(ValueError):
        a.register("k", lambda msg: None)


def test_stop_halts_dispatch():
    sim, fab, a, b = make_pair()
    got = []

    def sink(msg):
        yield sim.timeout(0)
        got.append(1)

    b.register("sink", sink)
    a.start()
    b.start()
    b.stop()
    sim.process(a.send("b", "sink", {}, nbytes=0))
    sim.run(until=1.0)
    assert got == []


# ----------------------------------------------------------------------
# the at-most-once plane: dedup, reply cache, retransmission
# ----------------------------------------------------------------------
def make_counting_pair():
    sim, fab, a, b = make_pair()
    applied = []

    def apply(msg):
        yield sim.timeout(0)
        applied.append(msg.payload["v"])
        return {"ack": msg.payload["v"]}, 8

    b.register("apply", apply)
    a.start()
    b.start()
    return sim, fab, a, b, applied


def test_duplicate_request_id_replays_cached_reply():
    """The at-most-once contract at its smallest: same id, one apply."""
    sim, fab, a, b, applied = make_counting_pair()

    def caller():
        rid = a._alloc_req_id()
        r1 = yield from a.rpc("b", "apply", {"v": 1}, nbytes=8, _req_id=rid)
        r2 = yield from a.rpc("b", "apply", {"v": 1}, nbytes=8, _req_id=rid)
        return r1, r2

    p = sim.process(caller())
    sim.run(until=1.0)
    r1, r2 = p.value
    assert r1 == r2 == {"ack": 1}
    assert applied == [1]  # handler ran once; duplicate served from cache
    assert b.duplicates_suppressed == 1
    assert b.cached_reply_hits == 1


def test_reply_loss_retransmits_same_id_and_never_double_applies():
    """Lose the reply frame on the wire: the op is applied exactly once and
    the caller still gets the payload via a cached-reply retransmit.

    Fails on the pre-at-most-once transport, where reply frames were exempt
    from loss precisely because a lost reply forced a double-applying
    whole-op retry.
    """
    sim, fab, a, b, applied = make_counting_pair()
    # Every b-egress frame (the replies) drops until the link heals.
    fab.degrade_link("b", loss_every=1, loss_scope="all")

    def healer():
        yield 0.005
        fab.heal_link("b")

    def caller():
        return (yield from a.rpc("b", "apply", {"v": 7}, nbytes=8))

    sim.process(healer())
    p = sim.process(caller())
    sim.run(until=1.0)
    assert p.value == {"ack": 7}
    assert applied == [7]           # exactly one application
    assert a.retransmits >= 1       # the RTO fired at least once
    assert b.duplicates_suppressed >= 1
    assert b.cached_reply_hits >= 1
    assert fab.dropped_replies >= 1 and fab.dropped_requests == 0


def test_retransmit_budget_exhaustion_is_loud():
    """A delivered request whose replies never get through must not surface
    a transient-retryable error (that would invite an unsafe whole-op
    retry): it raises RuntimeError."""
    sim, fab, a, b, applied = make_counting_pair()
    fab.degrade_link("b", loss_every=1, loss_scope="all")  # never heals

    def caller():
        yield from a.rpc("b", "apply", {"v": 3}, nbytes=8)

    sim.process(caller())
    with pytest.raises(RuntimeError, match="retransmit budget exhausted"):
        sim.run(until=RpcHost.RETRANSMIT_BUDGET_S * 2)
    assert applied == [3]  # delivered and applied once despite the failure


def test_dedup_table_is_bounded_fifo():
    sim, fab, a, b, applied = make_counting_pair()
    b.DEDUP_CAPACITY = 4  # instance override keeps the test cheap

    def caller():
        for v in range(6):
            yield from a.rpc("b", "apply", {"v": v}, nbytes=8)

    p = sim.process(caller())
    sim.run(until=1.0)
    assert p.fired
    table = b._dedup["a"]
    assert len(table) == 4
    assert list(table) == [2, 3, 4, 5]  # FIFO: oldest ids evicted first

    # A duplicate of an evicted id is indistinguishable from a fresh
    # request — at-most-once degrades to maybe-reapply beyond the window.
    def dup():
        yield from a.rpc("b", "apply", {"v": 0}, nbytes=8, _req_id=0)

    p2 = sim.process(dup())
    sim.run(until=2.0)
    assert p2.fired
    assert applied == [0, 1, 2, 3, 4, 5, 0]


def test_stop_preserves_reply_cache_crash_wipes_it():
    sim, fab, a, b, applied = make_counting_pair()

    def caller(rid):
        return (yield from a.rpc("b", "apply", {"v": 9}, nbytes=8, _req_id=rid))

    rid = a._alloc_req_id()
    p = sim.process(caller(rid))
    sim.run(until=0.5)
    assert p.fired and applied == [9]

    # stop()/start(): the dedup table survives maintenance restarts.
    b.stop()
    b.start()
    p2 = sim.process(caller(rid))
    sim.run(until=1.0)
    assert p2.value == {"ack": 9}
    assert applied == [9]  # replayed, not re-applied

    # crash()/start(): volatile state is gone, the duplicate re-applies.
    b.crash()
    b.start()
    p3 = sim.process(caller(rid))
    sim.run(until=2.0)
    assert p3.fired
    assert applied == [9, 9]
    assert not b._dedup or rid in b._dedup.get("a", {})


def test_uncached_kind_skips_the_dedup_table():
    sim, fab, a, b = make_pair()
    beats = []

    def beat(msg):
        yield sim.timeout(0)
        beats.append(msg.payload["t"])
        return {"ok": True}, 8

    b.register("beat", beat, cache_reply=False)
    a.start()
    b.start()

    def caller():
        rid = a._alloc_req_id()
        yield from a.rpc("b", "beat", {"t": 1}, nbytes=8, _req_id=rid)
        yield from a.rpc("b", "beat", {"t": 2}, nbytes=8, _req_id=rid)

    p = sim.process(caller())
    sim.run(until=1.0)
    assert p.fired
    assert beats == [1, 2]  # both ran: no dedup entry was ever created
    assert b._dedup.get("a") in (None, {})


def test_rpc_delivered_absorbs_request_loss_only():
    sim, fab, a, b, applied = make_counting_pair()
    fab.degrade_link("a", loss_every=1)  # every a-egress request drops

    def healer():
        yield 0.004
        fab.heal_link("a")

    def caller():
        return (yield from a.rpc_delivered("b", "apply", {"v": 5}, nbytes=8))

    sim.process(healer())
    p = sim.process(caller())
    sim.run(until=1.0)
    assert p.value == {"ack": 5}
    assert applied == [5]
    assert a.retransmits >= 1
    # Application errors still propagate unchanged.
    def boom(msg):
        yield sim.timeout(0)
        raise ValueError("boom")

    b.register("boom", boom)

    def caller2():
        yield from a.rpc_delivered("b", "boom", {}, nbytes=0)

    sim.process(caller2())
    with pytest.raises(ValueError, match="boom"):
        sim.run(until=2.0)


def test_rpc_with_retry_rejects_degenerate_pacing():
    sim, fab, a, b = make_pair()
    a.start()
    b.start()
    with pytest.raises(ValueError, match="interval must be > 0"):
        next(a.rpc_with_retry("b", "x", {}, interval=0.0))
    with pytest.raises(ValueError, match="interval must be > 0"):
        next(a.rpc_with_retry("b", "x", {}, interval=-1e-3))
    with pytest.raises(ValueError, match="backoff must be >= 1.0"):
        next(a.rpc_with_retry("b", "x", {}, backoff=0.5))


def test_rpc_with_retry_backoff_respects_remaining_budget():
    """The last sleep is clamped to the deadline: the caller fails at
    start+budget, not at the next power-of-two backoff step past it."""
    sim, fab, a, b = make_pair()
    a.start()
    b.start()
    b.crash()
    t0 = sim.now

    def caller():
        yield from a.rpc_with_retry("b", "x", {}, interval=1e-3,
                                    budget=5e-3, backoff=2.0)

    sim.process(caller())
    with pytest.raises(HostDownError):
        sim.run(until=1.0)
    # Unclamped exponential pacing (1+2+4 ms) would overshoot to 7 ms.
    assert sim.now == pytest.approx(t0 + 5e-3)
