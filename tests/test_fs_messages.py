"""Tests for the RPC substrate."""

import pytest

from repro.fs.messages import MSG_OVERHEAD, Message, RpcHost
from repro.net import Fabric, NET_25GBE
from repro.sim import Simulator


def make_pair():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    a = RpcHost(sim, fab, "a")
    b = RpcHost(sim, fab, "b")
    peers = {"a": a, "b": b}
    a.connect(peers)
    b.connect(peers)
    return sim, fab, a, b


def test_rpc_roundtrip_returns_reply_payload():
    sim, fab, a, b = make_pair()

    def echo(msg):
        yield sim.timeout(0)
        return {"echo": msg.payload["x"] * 2}, 8

    b.register("echo", echo)
    a.start()
    b.start()

    def caller():
        reply = yield from a.rpc("b", "echo", {"x": 21}, nbytes=8)
        return reply["echo"]

    p = sim.process(caller())
    sim.run(until=1.0)
    assert p.value == 42
    assert sim.now > 0  # transfers cost time


def test_rpc_counts_both_directions():
    sim, fab, a, b = make_pair()

    def noop(msg):
        yield sim.timeout(0)
        return {}, 100

    b.register("noop", noop)
    a.start()
    b.start()
    p = sim.process(a.rpc("b", "noop", {}, nbytes=50))
    sim.run(until=1.0)
    assert p.fired
    assert fab.counters.messages == 2
    assert fab.counters.bytes_sent == (50 + MSG_OVERHEAD) + (100 + MSG_OVERHEAD)


def test_send_is_one_way():
    sim, fab, a, b = make_pair()
    got = []

    def sink(msg):
        yield sim.timeout(0)
        got.append(msg.payload["v"])

    b.register("sink", sink)
    a.start()
    b.start()
    sim.process(a.send("b", "sink", {"v": 7}, nbytes=4))
    sim.run(until=1.0)
    assert got == [7]
    assert fab.counters.messages == 1


def test_concurrent_handlers_interleave():
    sim, fab, a, b = make_pair()
    order = []

    def slow(msg):
        yield sim.timeout(0.5)
        order.append("slow")
        return {}, 0

    def fast(msg):
        yield sim.timeout(0.1)
        order.append("fast")
        return {}, 0

    b.register("slow", slow)
    b.register("fast", fast)
    a.start()
    b.start()
    sim.process(a.rpc("b", "slow", {}, nbytes=0))
    sim.process(a.rpc("b", "fast", {}, nbytes=0))
    sim.run(until=2.0)
    assert order == ["fast", "slow"]  # dispatcher does not serialize handlers


def test_missing_handler_fails_caller():
    sim, fab, a, b = make_pair()
    a.start()
    b.start()

    def caller():
        try:
            yield from a.rpc("b", "ghost", {}, nbytes=0)
        except KeyError as e:
            return f"err:{e}"

    p = sim.process(caller())
    sim.run(until=1.0)
    assert "ghost" in p.value


def test_unknown_route_raises():
    sim, fab, a, b = make_pair()
    a.start()

    def caller():
        yield from a.rpc("nowhere", "x", {}, nbytes=0)

    sim.process(caller())
    with pytest.raises(KeyError):
        sim.run(until=1.0)


def test_duplicate_handler_registration_rejected():
    sim, fab, a, _ = make_pair()
    a.register("k", lambda msg: None)
    with pytest.raises(ValueError):
        a.register("k", lambda msg: None)


def test_stop_halts_dispatch():
    sim, fab, a, b = make_pair()
    got = []

    def sink(msg):
        yield sim.timeout(0)
        got.append(1)

    b.register("sink", sink)
    a.start()
    b.start()
    b.stop()
    sim.process(a.send("b", "sink", {}, nbytes=0))
    sim.run(until=1.0)
    assert got == []
