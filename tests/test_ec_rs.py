"""Tests for the RS codec and the incremental-update identities (Eqs. 2-5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import RSCodec, combine_deltas, merge_delta, parity_delta

BLOCK = 128


def _blocks(rng, k, size=BLOCK):
    return [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(k)]


@pytest.fixture(params=["vandermonde", "cauchy"])
def construction(request):
    return request.param


@pytest.mark.parametrize("k,m", [(2, 2), (6, 2), (6, 3), (6, 4), (12, 4)])
def test_encode_decode_roundtrip_after_max_loss(k, m, construction):
    rng = np.random.default_rng(k * 31 + m)
    codec = RSCodec(k, m, construction)
    data = _blocks(rng, k)
    parity = codec.encode(data)
    shards = {i: b for i, b in enumerate(data)}
    shards.update({k + i: p for i, p in enumerate(parity)})
    # Drop m shards, mixing data and parity.
    lost = list(range(0, m - 1)) + [k]  # m-1 data blocks + 1 parity block
    for b in lost:
        del shards[b]
    rebuilt = codec.reconstruct(shards, lost)
    for b in lost:
        expected = data[b] if b < k else parity[b - k]
        assert np.array_equal(rebuilt[b], expected)


def test_decode_requires_k_shards():
    codec = RSCodec(4, 2)
    rng = np.random.default_rng(0)
    data = _blocks(rng, 4)
    shards = {0: data[0], 1: data[1], 2: data[2]}
    with pytest.raises(ValueError, match="at least k"):
        codec.decode(shards)


def test_unequal_block_sizes_rejected():
    codec = RSCodec(2, 1)
    with pytest.raises(ValueError, match="equal-length"):
        codec.encode([np.zeros(4, dtype=np.uint8), np.zeros(8, dtype=np.uint8)])


def test_unknown_construction_rejected():
    with pytest.raises(ValueError):
        RSCodec(4, 2, construction="fountain")


def test_reconstruct_index_range_checked():
    codec = RSCodec(2, 1)
    rng = np.random.default_rng(0)
    data = _blocks(rng, 2)
    parity = codec.encode(data)
    shards = {0: data[0], 1: data[1], 2: parity[0]}
    with pytest.raises(ValueError):
        codec.reconstruct(shards, [5])


# ----------------------------------------------------------------------
# Eq. (2): single-update parity delta
# ----------------------------------------------------------------------
@settings(deadline=None)
@given(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=2**32),
)
def test_eq2_parity_delta_equals_full_reencode(data_index, seed):
    rng = np.random.default_rng(seed)
    codec = RSCodec(6, 3)
    data = _blocks(rng, 6)
    parity = codec.encode(data)
    new_block = rng.integers(0, 256, BLOCK, dtype=np.uint8)
    delta = data[data_index] ^ new_block
    data2 = list(data)
    data2[data_index] = new_block
    expected = codec.encode(data2)
    for p in range(3):
        patched = codec.apply_update(parity[p], data_index, p, delta)
        assert np.array_equal(patched, expected[p])


def test_eq2_partial_offset_update():
    rng = np.random.default_rng(7)
    codec = RSCodec(4, 2)
    data = _blocks(rng, 4)
    parity = codec.encode(data)
    # Update 16 bytes at offset 32 of block 2.
    patch = rng.integers(0, 256, 16, dtype=np.uint8)
    delta = data[2][32:48] ^ patch
    data2 = [b.copy() for b in data]
    data2[2][32:48] = patch
    expected = codec.encode(data2)
    for p in range(2):
        got = codec.apply_update(parity[p], 2, p, delta, offset=32)
        assert np.array_equal(got, expected[p])


def test_apply_update_overrun_rejected():
    codec = RSCodec(2, 1)
    parity = np.zeros(8, dtype=np.uint8)
    with pytest.raises(ValueError, match="overruns"):
        codec.apply_update(parity, 0, 0, np.ones(4, dtype=np.uint8), offset=6)


# ----------------------------------------------------------------------
# Eq. (3): same-location deltas merge by XOR
# ----------------------------------------------------------------------
@settings(deadline=None)
@given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=2, max_value=5))
def test_eq3_n_updates_collapse_to_one_delta(seed, n_updates):
    rng = np.random.default_rng(seed)
    codec = RSCodec(4, 2)
    data = _blocks(rng, 4)
    parity = codec.encode(data)
    versions = [data[1]] + [
        rng.integers(0, 256, BLOCK, dtype=np.uint8) for _ in range(n_updates)
    ]
    # Fold the per-step deltas via Eq. (3)...
    folded = np.zeros(BLOCK, dtype=np.uint8)
    for old, new in zip(versions, versions[1:]):
        folded = merge_delta(folded, old ^ new)
    # ...which must equal the first-to-last delta of Eq. (4).
    assert np.array_equal(folded, versions[0] ^ versions[-1])
    data2 = list(data)
    data2[1] = versions[-1]
    expected = codec.encode(data2)
    for p in range(2):
        patched = codec.apply_update(parity[p], 1, p, folded)
        assert np.array_equal(patched, expected[p])


def test_merge_delta_shape_mismatch():
    with pytest.raises(ValueError):
        merge_delta(np.zeros(4, dtype=np.uint8), np.zeros(5, dtype=np.uint8))


# ----------------------------------------------------------------------
# Eq. (5): cross-block delta combining
# ----------------------------------------------------------------------
@settings(deadline=None)
@given(st.integers(min_value=0, max_value=2**32))
def test_eq5_combined_delta_equals_sequential_patches(seed):
    rng = np.random.default_rng(seed)
    codec = RSCodec(6, 3)
    data = _blocks(rng, 6)
    parity = codec.encode(data)
    updated = {1: None, 2: None, 4: None}
    deltas = {}
    data2 = list(data)
    for j in updated:
        nb = rng.integers(0, 256, BLOCK, dtype=np.uint8)
        deltas[j] = data[j] ^ nb
        data2[j] = nb
    expected = codec.encode(data2)
    for p in range(3):
        combined = codec.combine_deltas(p, deltas)
        patched = parity[p] ^ combined
        assert np.array_equal(patched, expected[p])


def test_combine_deltas_validation():
    codec = RSCodec(4, 2)
    with pytest.raises(ValueError, match="no deltas"):
        codec.combine_deltas(0, {})
    with pytest.raises(ValueError, match="equal-length"):
        codec.combine_deltas(
            0, {0: np.zeros(4, dtype=np.uint8), 1: np.zeros(8, dtype=np.uint8)}
        )


def test_module_level_helpers_match_codec():
    rng = np.random.default_rng(3)
    codec = RSCodec(4, 2)
    d = rng.integers(0, 256, 32, dtype=np.uint8)
    coeff = codec.coefficient(1, 2)
    assert np.array_equal(
        parity_delta(coeff, d), codec.parity_delta(2, 1, d)
    )
    assert np.array_equal(
        combine_deltas(codec.parity_matrix, 1, {2: d}), codec.parity_delta(2, 1, d)
    )
