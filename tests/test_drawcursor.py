"""Draw-order equivalence: the DrawCursor contract.

The data-plane fast path replays every workload/trace RNG draw through
:class:`~repro.sim.drawcursor.DrawCursor` instead of scalar numpy calls.
Bit-identity of every benchmark baseline rests on one property: *the
cursor consumes the underlying PCG64 stream exactly as the scalar calls
did and produces exactly the same values*.  These tests pin that property
against live numpy — for the primitives in both modes, for the trace
generators, and for the full interleaved per-op draw order of
:class:`OpenLoopGenerator` under every arrival process / mix / tenant
configuration.  If a numpy upgrade ever changes the bounded-integer or
32-bit-buffering algorithm, these fail loudly before any baseline drifts.
"""

import random as pyrandom

import numpy as np
import pytest

from repro.sim.drawcursor import DrawCursor, choice_cdf
from repro.traces.synth import SyntheticTraceConfig, generate_trace
from repro.workload.arrival import (
    ClosedLoop,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
)
from repro.workload.generator import OpenLoopGenerator, WorkloadSpec


def fresh(seed=12345):
    return np.random.default_rng(seed)


def assert_state_equal(g1, g2):
    s1, s2 = g1.bit_generator.state, g2.bit_generator.state
    assert s1["state"] == s2["state"]
    assert s1["has_uint32"] == s2["has_uint32"]
    if s1["has_uint32"]:
        assert s1["uinteger"] == s2["uinteger"]


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
@pytest.mark.parametrize("chunk", [0, 8, 64, 1024])
def test_mixed_draw_script_is_bit_identical(chunk):
    """A long adversarial mix of every draw kind, scalar vs cursor."""
    pyrandom.seed(chunk + 1)
    ref, gen = fresh(), fresh()
    cur = DrawCursor(gen, chunk=chunk)
    kinds = 5 if chunk == 0 else 4  # exponentials only legal in direct mode
    for i in range(6000):
        k = pyrandom.randrange(kinds)
        if k == 0:
            a, b = float(ref.random()), cur.random()
        elif k == 1:
            n = pyrandom.choice([1, 2, 3, 7, 100, 4096, 2**31, 2**34])
            a, b = int(ref.integers(0, n)), cur.integers(n)
        elif k == 2:
            n = pyrandom.choice([1, 2, 3, 4, 5, 8, 9, 513, 4096, 4099])
            a = ref.integers(0, 256, n, dtype=np.uint8).tobytes()
            b = cur.payload(n).tobytes()
        elif k == 3:
            p = np.array([0.2, 0.5, 0.1, 0.2])
            a, b = int(ref.choice(4, p=p)), cur.weighted_index(choice_cdf(p))
        else:
            # Direct mode: generator-side ziggurat draws interleave legally.
            a, b = float(ref.exponential(0.01)), float(gen.exponential(0.01))
        assert a == b, f"draw {i} kind {k}: {a!r} != {b!r}"
    cur.sync()
    assert_state_equal(ref, gen)


def test_payload_is_writable_and_fresh():
    cur = DrawCursor(fresh())
    a = cur.payload(37)
    assert a.flags.writeable and a.dtype == np.uint8 and a.size == 37
    a[:] = 0  # must not raise


def test_payload_crosses_chunk_boundaries():
    ref, gen = fresh(), fresh()
    cur = DrawCursor(gen, chunk=16)
    assert cur.random() == float(ref.random())
    a = ref.integers(0, 256, 1000, dtype=np.uint8)
    assert np.array_equal(a, cur.payload(1000))  # 1000B > 16 raws
    cur.sync()
    assert_state_equal(ref, gen)


def test_single_value_range_consumes_nothing():
    ref, gen = fresh(), fresh()
    cur = DrawCursor(gen)
    assert cur.integers(1) == int(ref.integers(0, 1)) == 0
    cur.sync()
    assert_state_equal(ref, gen)


def test_weighted_index_matches_choice_for_many_tables():
    tables = [
        [1.0],
        [0.5, 0.5],
        [0.69, 0.12, 0.07, 0.07, 0.05],
        list(np.linspace(1, 40, 40) / np.linspace(1, 40, 40).sum()),
    ]
    ref, gen = fresh(), fresh()
    cur = DrawCursor(gen, chunk=256)
    for p in tables:
        p = np.asarray(p, dtype=np.float64)
        cdf = choice_cdf(p)
        for _ in range(500):
            assert int(ref.choice(len(p), p=p)) == cur.weighted_index(cdf)
    cur.sync()
    assert_state_equal(ref, gen)


def test_sync_mid_chunk_lands_on_exact_position():
    """After sync, scalar numpy draws on the generator resume the stream."""
    ref, gen = fresh(), fresh()
    cur = DrawCursor(gen, chunk=64)
    for _ in range(7):
        assert cur.random() == float(ref.random())
    assert cur.integers(1000) == int(ref.integers(0, 1000))
    # Leave a buffered 32-bit half dangling, then sync and resume scalar.
    assert cur.payload(2).tobytes() == ref.integers(0, 256, 2, dtype=np.uint8).tobytes()
    g = cur.sync()
    assert_state_equal(ref, gen)
    assert g.integers(0, 256, 5, dtype=np.uint8).tobytes() == \
        ref.integers(0, 256, 5, dtype=np.uint8).tobytes()
    assert float(g.random()) == float(ref.random())
    # The cursor stays usable after a sync.
    assert cur.random() == float(ref.random())
    cur.sync()
    assert_state_equal(ref, gen)


# ----------------------------------------------------------------------
# trace generation
# ----------------------------------------------------------------------
def _reference_generate_trace(config, file_size, n_requests, rng):
    """The historical scalar implementation, verbatim."""
    from repro.traces.synth import PAGE, TraceRecord, _zipf_weights

    n_pages = file_size // PAGE
    hot_pages = max(1, int(n_pages * config.hot_fraction))
    perm = rng.permutation(n_pages)
    hot = perm[:hot_pages]
    weights = _zipf_weights(hot_pages, config.zipf_s)
    sizes = np.array([s for s, _ in config.size_dist])
    size_p = np.array([p for _, p in config.size_dist])
    out = []
    prev_end = None
    for _ in range(n_requests):
        size = int(rng.choice(sizes, p=size_p))
        if prev_end is not None and rng.random() < config.run_prob:
            offset = prev_end
        elif rng.random() < config.cold_prob:
            offset = int(rng.integers(0, n_pages)) * PAGE
        else:
            offset = int(hot[rng.choice(hot_pages, p=weights)]) * PAGE
        if offset + size > file_size:
            offset = max(0, file_size - size)
        out.append(TraceRecord(offset, size))
        prev_end = offset + size
    return out


_TRACE_CONFIGS = [
    SyntheticTraceConfig(
        name="tenlike",
        size_dist=[(4096, 0.69), (8192, 0.12), (16384, 0.07),
                   (32768, 0.07), (65536, 0.05)],
        hot_fraction=0.015, zipf_s=1.3, run_prob=0.45, cold_prob=0.04,
    ),
    SyntheticTraceConfig(
        name="alilike",
        size_dist=[(4096, 0.45), (8192, 0.2), (16384, 0.15),
                   (65536, 0.2)],
        hot_fraction=0.05, zipf_s=1.1, run_prob=0.3, cold_prob=0.05,
    ),
    # Corner probabilities: no cold jumps / no runs / everything cold.
    SyntheticTraceConfig(name="nocold", size_dist=[(4096, 1.0)],
                         hot_fraction=0.1, run_prob=0.5, cold_prob=0.0),
    SyntheticTraceConfig(name="norun", size_dist=[(512, 0.4), (4096, 0.6)],
                         hot_fraction=0.02, run_prob=0.0, cold_prob=0.9),
]


@pytest.mark.parametrize("config", _TRACE_CONFIGS, ids=lambda c: c.name)
@pytest.mark.parametrize("seed", [0, 7, 991])
def test_generate_trace_matches_scalar_reference(config, seed):
    file_size = 4 * 1024 * 1024
    ref_rng, new_rng = fresh(seed), fresh(seed)
    want = _reference_generate_trace(config, file_size, 400, ref_rng)
    got = generate_trace(config, file_size, 400, new_rng)
    assert got == want
    # The generator must land on the exact consumption point, so back-to-
    # back traces from one rng chain identically too.
    assert_state_equal(ref_rng, new_rng)
    want2 = _reference_generate_trace(config, file_size, 50, ref_rng)
    got2 = generate_trace(config, file_size, 50, new_rng)
    assert got2 == want2
    assert_state_equal(ref_rng, new_rng)


def test_hot_stripe_records_match_scalar_reference():
    from repro.traces.synth import PAGE, TraceRecord, _zipf_weights
    from repro.workload.scenarios import _hot_stripe_records, scenario_config

    cfg = scenario_config(seed=3, n_clients=2, requests_per_client=333)

    def reference(cfg, rng):
        span = cfg.k * cfg.block_size
        n_stripes = cfg.stripes_per_file
        pages_per_stripe = span // PAGE
        weights = _zipf_weights(n_stripes, 1.5)
        order = list(rng.permutation(n_stripes))
        out = []
        for _ in range(cfg.updates_per_client):
            stripe = int(order[int(rng.choice(n_stripes, p=weights))])
            page = int(rng.integers(0, pages_per_stripe))
            size = int(rng.choice([512, 4096], p=[0.4, 0.6]))
            out.append(TraceRecord(stripe * span + page * PAGE, size))
        return out

    for seed in (0, 7, 123):
        ref_rng, new_rng = fresh(seed), fresh(seed)
        assert _hot_stripe_records(cfg, new_rng) == reference(cfg, ref_rng)
        assert_state_equal(ref_rng, new_rng)


# ----------------------------------------------------------------------
# the generator's full interleaved per-op draw order
# ----------------------------------------------------------------------
class _Rec:
    """Duck-typed trace record (generator requires .offset/.size only)."""

    def __init__(self, offset, size):
        self.offset = offset
        self.size = size


def _reference_next_op(tenants, cursors, spec, rng):
    """The historical scalar ``_next_op``, verbatim."""
    if len(tenants) > 1:
        ti = int(rng.integers(0, len(tenants)))
    else:
        ti = 0
    inode, records = tenants[ti]
    rec = records[cursors[ti] % len(records)]
    cursors[ti] += 1
    if spec.read_fraction > 0 and (
        float(rng.random()) < spec.read_fraction
    ):
        return ("read", inode, rec.offset, rec.size)
    payload = rng.integers(0, 256, rec.size, dtype=np.uint8)
    return ("update", inode, rec.offset, payload)


_ARRIVALS = {
    "closed": ClosedLoop,
    "poisson": lambda: PoissonArrivals(rate=4000.0),
    "onoff": lambda: OnOffArrivals(burst_rate=12000.0, on_s=0.02, off_s=0.03),
    "diurnal": lambda: DiurnalArrivals(low=500.0, peak=8000.0, period=0.5),
}


@pytest.mark.parametrize("arrival", sorted(_ARRIVALS), ids=str)
@pytest.mark.parametrize("read_fraction", [0.0, 0.3, 1.0])
@pytest.mark.parametrize("n_tenants", [1, 3])
def test_generator_draw_order_equivalence(arrival, read_fraction, n_tenants):
    """Interleaved gap + op draws on one rng, every configuration.

    Replicates the exact consumption pattern of ``OpenLoopGenerator.run``:
    ``next_gap`` on the shared generator, then the op draw — the reference
    side uses the historical scalar ``_next_op``, the new side the real
    generator object (whose ``_next_op`` runs through the DrawCursor).
    """
    seed = hash((arrival, read_fraction, n_tenants)) % (2**31)
    sizes = [1, 2, 3, 4, 512, 4096, 65536, 37, 4099]
    tenants = [
        (
            1000 + t,
            [_Rec((i * 4096) % 65536, sizes[(i + t) % len(sizes)])
             for i in range(17 + t)],
        )
        for t in range(n_tenants)
    ]
    spec = WorkloadSpec(
        arrivals=_ARRIVALS[arrival](),
        n_requests=250,
        iodepth=4,
        read_fraction=read_fraction,
    )
    ref_rng, new_rng = fresh(seed), fresh(seed)
    gen = OpenLoopGenerator(None, tenants, new_rng, spec)
    ref_tenants = [(inode, list(records)) for inode, records in tenants]
    ref_cursors = [0] * n_tenants
    ref_arrivals = _ARRIVALS[arrival]()
    now = 0.0
    for i in range(spec.n_requests):
        gap_ref = ref_arrivals.next_gap(now, ref_rng)
        gap_new = spec.arrivals.next_gap(now, new_rng)
        assert gap_ref == gap_new, f"gap {i}"
        want = _reference_next_op(ref_tenants, ref_cursors, spec, ref_rng)
        got = gen._next_op()
        assert want[:3] == got[:3], f"op {i}"
        if want[0] == "update":
            assert np.array_equal(want[3], got[3]), f"payload {i}"
        else:
            assert want[3] == got[3]
        now += gap_ref + 1e-5 * (i % 7)  # deterministic clock skew
    gen._draw.sync()
    assert_state_equal(ref_rng, new_rng)
    assert gen._cursors == ref_cursors
