"""Tests for the block store."""

import numpy as np
import pytest

from repro.devices import SSD
from repro.fs.blockstore import BlockStore
from repro.sim import Simulator


def make_store(block_size=256):
    sim = Simulator()
    dev = SSD(sim)
    return sim, dev, BlockStore(sim, dev, block_size)


def run(sim, gen):
    p = sim.process(gen)
    sim.run()
    return p.value


def test_block_size_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        BlockStore(sim, SSD(sim), 0)


def test_write_then_read_roundtrip():
    sim, dev, store = make_store()
    data = np.arange(256, dtype=np.uint8)
    run(sim, store.write_block("b", data))
    got = run(sim, store.read_range("b", 10, 5))
    assert np.array_equal(got, data[10:15])


def test_write_block_size_mismatch():
    sim, dev, store = make_store()

    def go():
        yield from store.write_block("b", np.zeros(100, dtype=np.uint8))

    sim.process(go())
    with pytest.raises(ValueError):
        sim.run()


def test_fresh_write_is_not_overwrite_second_is():
    sim, dev, store = make_store()
    data = np.zeros(256, dtype=np.uint8)
    run(sim, store.write_block("b", data))
    assert dev.counters.overwrite_ops == 0
    run(sim, store.write_block("b", data))
    assert dev.counters.overwrite_ops == 1


def test_write_range_materializes_zero_block():
    sim, dev, store = make_store()
    run(sim, store.write_range("sparse", 100, np.full(4, 9, dtype=np.uint8)))
    blk = store.peek("sparse")
    assert blk[99] == 0 and list(blk[100:104]) == [9, 9, 9, 9]
    assert dev.counters.overwrite_ops == 1  # range updates are write-penalty


def test_range_validation():
    sim, dev, store = make_store()

    def go():
        yield from store.read_range("b", 250, 10)

    sim.process(go())
    with pytest.raises(ValueError):
        sim.run()


def test_xor_range_is_commutative_under_interleaving():
    sim, dev, store = make_store()
    d1 = np.full(8, 0b0101, dtype=np.uint8)
    d2 = np.full(8, 0b0011, dtype=np.uint8)
    # Two concurrent xor_range calls on the same range.
    sim.process(store.xor_range("b", 0, d1))
    sim.process(store.xor_range("b", 0, d2))
    sim.run()
    assert np.array_equal(store.peek("b")[:8], d1 ^ d2)


def test_device_offsets_are_stable_and_disjoint():
    sim, dev, store = make_store()
    o1 = store.device_offset("a")
    o2 = store.device_offset("b")
    assert o1 != o2
    assert store.device_offset("a") == o1
    assert abs(o2 - o1) >= store.block_size


def test_install_and_peek_cost_nothing():
    sim, dev, store = make_store()
    store.install("x", np.ones(256, dtype=np.uint8))
    assert sim.now == 0.0
    assert dev.counters.rw_ops == 0
    assert store.peek("x")[0] == 1
    assert store.peek("ghost") is None
    with pytest.raises(ValueError):
        store.install("y", np.ones(3, dtype=np.uint8))


def test_reads_cost_device_time():
    sim, dev, store = make_store()
    run(sim, store.write_range("b", 0, np.ones(16, dtype=np.uint8)))
    t0 = sim.now
    run(sim, store.read_range("b", 0, 16))
    assert sim.now > t0
    assert dev.counters.read_ops == 1
