"""Tests for GF matrix algebra and code-matrix constructions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import (
    cauchy_matrix,
    gf_matinv,
    gf_matmul,
    systematic_cauchy,
    systematic_vandermonde,
    vandermonde_matrix,
)


def test_matmul_identity():
    rng = np.random.default_rng(0)
    m = rng.integers(0, 256, (5, 5), dtype=np.uint8)
    eye = np.eye(5, dtype=np.uint8)
    assert np.array_equal(gf_matmul(eye, m), m)
    assert np.array_equal(gf_matmul(m, eye), m)


def test_matmul_shape_checks():
    a = np.zeros((2, 3), dtype=np.uint8)
    b = np.zeros((4, 2), dtype=np.uint8)
    with pytest.raises(ValueError):
        gf_matmul(a, b)
    with pytest.raises(ValueError):
        gf_matmul(a[0], b)


@settings(deadline=None)
@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=2**32))
def test_matinv_roundtrip(n, seed):
    rng = np.random.default_rng(seed)
    # Rejection-sample a nonsingular matrix.
    for _ in range(64):
        m = rng.integers(0, 256, (n, n), dtype=np.uint8)
        try:
            inv = gf_matinv(m)
        except np.linalg.LinAlgError:
            continue
        eye = np.eye(n, dtype=np.uint8)
        assert np.array_equal(gf_matmul(m, inv), eye)
        assert np.array_equal(gf_matmul(inv, m), eye)
        return
    pytest.skip("no nonsingular sample found (improbable)")


def test_matinv_singular_raises():
    m = np.zeros((3, 3), dtype=np.uint8)
    with pytest.raises(np.linalg.LinAlgError):
        gf_matinv(m)


def test_matinv_requires_square():
    with pytest.raises(ValueError):
        gf_matinv(np.zeros((2, 3), dtype=np.uint8))


def test_vandermonde_shape_and_first_column():
    v = vandermonde_matrix(6, 4)
    assert v.shape == (6, 4)
    assert np.all(v[:, 0] == 1)
    # Row 1 is 1^j = 1.
    assert np.all(v[1] == 1)


def test_systematic_vandermonde_top_is_identity():
    for k, m in [(2, 2), (6, 3), (12, 4)]:
        g = systematic_vandermonde(k, m)
        assert g.shape == (k + m, k)
        assert np.array_equal(g[:k], np.eye(k, dtype=np.uint8))


def test_systematic_vandermonde_is_mds():
    # Every k-subset of rows must be invertible (MDS property); spot-check
    # exhaustively for a small code.
    from itertools import combinations

    k, m = 4, 3
    g = systematic_vandermonde(k, m)
    for rows in combinations(range(k + m), k):
        gf_matinv(g[list(rows)])  # must not raise


def test_systematic_cauchy_is_mds():
    from itertools import combinations

    k, m = 4, 3
    g = systematic_cauchy(k, m)
    for rows in combinations(range(k + m), k):
        gf_matinv(g[list(rows)])


def test_cauchy_matrix_entries_nonzero():
    c = cauchy_matrix(6, 4)
    assert c.shape == (4, 6)
    assert np.all(c != 0)


def test_km_validation():
    with pytest.raises(ValueError):
        systematic_vandermonde(0, 2)
    with pytest.raises(ValueError):
        systematic_cauchy(255, 3)
    with pytest.raises(ValueError):
        vandermonde_matrix(300, 2)
