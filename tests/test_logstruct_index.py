"""Unit + property tests for the two-level index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logstruct import TwoLevelIndex


def arr(*vals):
    return np.array(vals, dtype=np.uint8)


def test_policy_validation():
    with pytest.raises(ValueError):
        TwoLevelIndex(policy="append")


def test_insert_and_lookup():
    idx = TwoLevelIndex("overwrite")
    idx.insert("blk", 10, arr(1, 2, 3))
    assert "blk" in idx
    assert np.array_equal(idx.lookup("blk", 10, 3), arr(1, 2, 3))
    assert np.array_equal(idx.lookup("blk", 11, 2), arr(2, 3))
    assert idx.lookup("blk", 9, 3) is None  # not fully covered
    assert idx.lookup("ghost", 0, 1) is None


def test_bitmap_fast_miss():
    idx = TwoLevelIndex()
    idx.insert("a", 0, arr(1))
    assert idx.maybe_contains("a")
    # A key that was never inserted *may* collide in the bitmap but the
    # full containment check must be exact.
    assert "zzz" not in idx


def test_same_offset_overwrite_newest_wins():
    idx = TwoLevelIndex("overwrite")
    idx.insert("b", 0, arr(1, 1, 1, 1))
    idx.insert("b", 0, arr(9, 9, 9, 9))
    segs = idx.segments("b")
    assert len(segs) == 1
    assert np.array_equal(segs[0].data, arr(9, 9, 9, 9))
    # Raw stats remember both inserts; merged view holds one segment.
    assert idx.stats.raw_inserts == 2 and idx.stats.raw_bytes == 8
    assert idx.merged_bytes == 4


def test_same_offset_xor_policy_folds():
    idx = TwoLevelIndex("xor")
    idx.insert("b", 0, arr(0b1010, 0b1111))
    idx.insert("b", 0, arr(0b0110, 0b1111))
    segs = idx.segments("b")
    assert len(segs) == 1
    assert np.array_equal(segs[0].data, arr(0b1100, 0))


def test_adjacent_segments_coalesce():
    idx = TwoLevelIndex("overwrite")
    idx.insert("b", 0, arr(1, 2))
    idx.insert("b", 2, arr(3, 4))
    segs = idx.segments("b")
    assert len(segs) == 1
    assert segs[0].offset == 0
    assert np.array_equal(segs[0].data, arr(1, 2, 3, 4))


def test_gap_keeps_segments_separate():
    idx = TwoLevelIndex("overwrite")
    idx.insert("b", 0, arr(1, 2))
    idx.insert("b", 10, arr(3))
    assert len(idx.segments("b")) == 2
    assert idx.segment_count == 2


def test_partial_overlap_overwrite():
    idx = TwoLevelIndex("overwrite")
    idx.insert("b", 0, arr(1, 1, 1, 1))
    idx.insert("b", 2, arr(7, 7, 7, 7))
    segs = idx.segments("b")
    assert len(segs) == 1
    assert np.array_equal(segs[0].data, arr(1, 1, 7, 7, 7, 7))


def test_partial_overlap_xor():
    idx = TwoLevelIndex("xor")
    idx.insert("b", 0, arr(1, 1, 1, 1))
    idx.insert("b", 2, arr(3, 3, 3, 3))
    segs = idx.segments("b")
    assert np.array_equal(segs[0].data, arr(1, 1, 1 ^ 3, 1 ^ 3, 3, 3))


def test_bridging_with_interior_gap_splits_correctly():
    idx = TwoLevelIndex("overwrite")
    idx.insert("b", 0, arr(1, 1))
    idx.insert("b", 6, arr(2, 2))
    # New segment overlaps the first but not the gap up to 6.
    idx.insert("b", 1, arr(9, 9))
    segs = idx.segments("b")
    assert [(s.offset, s.length) for s in segs] == [(0, 3), (6, 2)]
    assert np.array_equal(segs[0].data, arr(1, 9, 9))


def test_insert_validation():
    idx = TwoLevelIndex()
    with pytest.raises(ValueError):
        idx.insert("b", -1, arr(1))
    idx.insert("b", 0, np.array([], dtype=np.uint8))  # no-op
    assert "b" not in idx


def test_lookup_partial_returns_intersections():
    idx = TwoLevelIndex("overwrite")
    idx.insert("b", 0, arr(1, 1))
    idx.insert("b", 4, arr(2, 2))
    frags = idx.lookup_partial("b", 1, 4)
    assert [(a, list(d)) for a, d in frags] == [(1, [1]), (4, [2])]
    assert idx.lookup_partial("ghost", 0, 10) == []


def test_pop_block_and_clear():
    idx = TwoLevelIndex()
    idx.insert("b", 0, arr(1))
    idx.insert("c", 0, arr(2))
    popped = idx.pop_block("b")
    assert len(popped) == 1 and "b" not in idx._blocks
    idx.clear()
    assert len(idx) == 0 and idx.stats.raw_inserts == 0


# ----------------------------------------------------------------------
# Property: the index must agree with a naive byte-level model.
# ----------------------------------------------------------------------
ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=64),  # offset
        st.lists(st.integers(0, 255), min_size=1, max_size=16),  # payload
    ),
    min_size=1,
    max_size=24,
)


@settings(deadline=None, max_examples=200)
@given(ops)
def test_overwrite_policy_matches_naive_model(writes):
    idx = TwoLevelIndex("overwrite")
    shadow = {}
    for off, payload in writes:
        idx.insert("b", off, np.array(payload, dtype=np.uint8))
        for i, v in enumerate(payload):
            shadow[off + i] = v
    segs = idx.segments("b")
    # Non-overlapping, sorted, coalesced:
    for a, b in zip(segs, segs[1:]):
        assert a.end < b.offset  # a gap, otherwise they'd have merged
    # Contents match the shadow byte map exactly:
    got = {}
    for s in segs:
        for i, v in enumerate(s.data):
            got[s.offset + i] = int(v)
    assert got == shadow


@settings(deadline=None, max_examples=200)
@given(ops)
def test_xor_policy_matches_naive_model(writes):
    idx = TwoLevelIndex("xor")
    shadow = {}
    for off, payload in writes:
        idx.insert("b", off, np.array(payload, dtype=np.uint8))
        for i, v in enumerate(payload):
            shadow[off + i] = shadow.get(off + i, 0) ^ v
    got = {}
    for s in idx.segments("b"):
        for i, v in enumerate(s.data):
            got[s.offset + i] = int(v)
    assert got == shadow


@settings(deadline=None, max_examples=100)
@given(ops, st.integers(min_value=0, max_value=80), st.integers(min_value=1, max_value=16))
def test_lookup_consistent_with_segments(writes, off, length):
    idx = TwoLevelIndex("overwrite")
    shadow = {}
    for o, payload in writes:
        idx.insert("b", o, np.array(payload, dtype=np.uint8))
        for i, v in enumerate(payload):
            shadow[o + i] = v
    hit = idx.lookup("b", off, length)
    fully_covered = all((off + i) in shadow for i in range(length))
    if hit is not None:
        assert fully_covered
        assert [int(x) for x in hit] == [shadow[off + i] for i in range(length)]
    else:
        # lookup only serves single-segment hits; absence of full coverage
        # is the common reason, a segment boundary inside the range the other.
        if fully_covered:
            segs = idx.segments("b")
            assert not any(
                s.offset <= off and s.end >= off + length for s in segs
            )


def test_inplace_and_rebuild_merges_agree():
    """The contained-update fast path is unobservable in index content."""
    rng = np.random.default_rng(42)
    for policy in ("overwrite", "xor"):
        fast = TwoLevelIndex(policy)
        slow = TwoLevelIndex(policy, inplace_merge=False)
        for _ in range(300):
            off = int(rng.integers(0, 64))
            size = int(rng.integers(1, 32))
            data = rng.integers(0, 256, size, dtype=np.uint8)
            fast.insert("b", off, data.copy())
            slow.insert("b", off, data.copy())
        fs, ss = fast.segments("b"), slow.segments("b")
        assert [(s.offset, s.data.tobytes()) for s in fs] == \
            [(s.offset, s.data.tobytes()) for s in ss]


def test_inplace_merge_opt_out_never_mutates_handed_arrays():
    """PARIX's requirement: without inplace_merge, handed-over payloads
    keep their bytes even when later contained updates land on them —
    the same array object may be owned by another OSD's index."""
    shared = arr(1, 2, 3, 4, 5, 6, 7, 8)
    a = TwoLevelIndex("overwrite", inplace_merge=False)
    b = TwoLevelIndex("overwrite", inplace_merge=False)
    a.insert("k", 0, shared)
    b.insert("k", 0, shared)
    a.insert("k", 2, arr(99, 99))  # contained update in index a only
    assert np.array_equal(shared, arr(1, 2, 3, 4, 5, 6, 7, 8))
    assert np.array_equal(b.lookup("k", 0, 8), shared)
    assert np.array_equal(a.lookup("k", 0, 8), arr(1, 2, 99, 99, 5, 6, 7, 8))


def test_inplace_fold_copies_read_only_payloads_first():
    """Read-only segment payloads (zero-copy store views) are snapshotted
    by the copy-on-first-write fold; content correct, source untouched."""
    base = arr(1, 2, 3, 4)
    base.flags.writeable = False
    idx = TwoLevelIndex("xor")
    idx.insert("k", 0, base)
    idx.insert("k", 1, arr(0xFF, 0xFF))
    assert np.array_equal(idx.lookup("k", 0, 4), arr(1, 2 ^ 0xFF, 3 ^ 0xFF, 4))
    assert np.array_equal(base, arr(1, 2, 3, 4))


def test_inplace_fold_never_mutates_client_retained_payloads():
    """The retry-idempotency invariant: a client may re-send the exact
    payload array it handed to a log-structured append (crash retry), so
    contained folds must never write into it — the first fold snapshots,
    later folds hit the index-private copy only."""
    retained = arr(10, 11, 12, 13, 14, 15)
    idx = TwoLevelIndex("overwrite")
    idx.insert("k", 0, retained)
    idx.insert("k", 2, arr(99, 99))        # first contained fold: copies
    idx.insert("k", 4, arr(77))            # second fold: in place, private
    assert np.array_equal(retained, arr(10, 11, 12, 13, 14, 15))
    assert np.array_equal(
        idx.lookup("k", 0, 6), arr(10, 11, 99, 99, 77, 15)
    )
