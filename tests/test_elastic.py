"""The live-change fault plane: fail-slow devices, degraded/lossy links,
rolling restarts and elastic membership (join/decommission rebalance)."""

import json

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.devices import SSD
from repro.net import NET_25GBE, Fabric, LinkLossError
from repro.recovery import (
    StripeMigrationError,
    fail_osd,
    rebalance_join,
    rebalance_leave,
)
from repro.harness.experiment import drain_all
from repro.sim import Simulator
from repro.update import make_strategy_factory
from repro.workload import (
    ELASTIC_SCENARIOS,
    METHODS,
    SCENARIOS,
    FaultEvent,
    FaultInjector,
    primary_victim,
    run_scenario,
    secondary_victim,
)

K, M, BLOCK = 4, 2, 2048
SMOKE = dict(n_clients=2, requests_per_client=40)


def build(method="fo", n_osds=8, seed=13, **params):
    sim = Simulator()
    if method == "tsue" and not params:
        params = dict(unit_bytes=8 * 1024, flush_age=0.01, flush_interval=0.005)
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=n_osds, k=K, m=M, block_size=BLOCK, seed=seed,
                      client_overhead_s=0.0),
        make_strategy_factory(method, **params),
    )
    return sim, cluster


def run_to(sim, proc, horizon=120.0):
    while not proc.fired and sim.peek() != float("inf") and sim.now < horizon:
        sim.step()
    assert proc.fired
    return proc.value


def load(cluster, inode=600, stripes=2, seed=1):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, stripes * K * BLOCK, dtype=np.uint8)
    cluster.instant_load_file(inode, data)
    return data


# ----------------------------------------------------------------------
# FaultEvent validation (satellite: mode is fail-only; field scoping)
# ----------------------------------------------------------------------
def test_fault_event_mode_only_valid_on_fail():
    with pytest.raises(ValueError, match="only meaningful on 'fail'"):
        FaultEvent(at=0.0, action="slow", victim="osd0", mode="crash", factor=2.0)
    with pytest.raises(ValueError, match="only meaningful on 'fail'"):
        FaultEvent(at=0.0, action="restore", victim="osd0", mode="stop")
    # fail without a mode normalizes to crash; bad modes are rejected.
    assert FaultEvent(at=0.0, action="fail", victim="osd0").mode == "crash"
    with pytest.raises(ValueError, match="unknown failure mode"):
        FaultEvent(at=0.0, action="fail", victim="osd0", mode="maim")


def test_fault_event_field_scoping():
    with pytest.raises(ValueError, match="unknown fault action"):
        FaultEvent(at=0.0, action="warp", victim="osd0")
    with pytest.raises(ValueError, match="takes no victim"):
        FaultEvent(at=0.0, action="join", victim="osd0")
    with pytest.raises(ValueError, match="requires a victim"):
        FaultEvent(at=0.0, action="slow", factor=2.0)
    with pytest.raises(ValueError, match="factor must be > 0"):
        FaultEvent(at=0.0, action="slow", victim="osd0", factor=0.0)
    with pytest.raises(ValueError, match="only meaningful on slow"):
        FaultEvent(at=0.0, action="fail", victim="osd0", factor=2.0)
    with pytest.raises(ValueError, match="slow_link"):
        FaultEvent(at=0.0, action="slow", victim="osd0", factor=2.0, loss_every=3)
    with pytest.raises(ValueError, match="duration > 0"):
        FaultEvent(at=0.0, action="restart", victim="osd0")
    with pytest.raises(ValueError, match="restart events"):
        FaultEvent(at=0.0, action="fail", victim="osd0", duration=1.0)


def test_injector_timeline_records_failure_mode():
    """Satellite: the timeline carries the fail mode so tests and metrics
    can tell crash from stop without re-reading the schedule."""
    sim, cluster = build("fo")
    load(cluster)
    cluster.start()
    victim = cluster.placement(600, 0)[0]
    inj = FaultInjector(cluster, [600], [
        FaultEvent(at=0.001, action="fail", victim=primary_victim, mode="stop"),
        FaultEvent(at=0.002, action="restore", victim=primary_victim),
    ])
    run_to(sim, sim.process(inj.run()))
    cluster.stop()
    (t1, a1, n1, d1), (t2, a2, n2, d2) = inj.timeline
    assert (a1, n1, d1) == ("fail", victim, "stop")
    assert (a2, n2, d2) == ("restore", victim, "")
    assert t1 == pytest.approx(0.001) and t2 == pytest.approx(0.002)


def test_equal_time_events_fire_in_declared_order():
    """Satellite: sorting the schedule is stable, so two events at the
    same instant fire in declaration order."""
    sim, cluster = build("fo")
    load(cluster)
    cluster.start()
    a, b = cluster.ring[0], cluster.ring[1]
    inj = FaultInjector(cluster, [600], [
        FaultEvent(at=0.001, action="slow", victim=a, factor=2.0),
        FaultEvent(at=0.001, action="slow", victim=b, factor=3.0),
        FaultEvent(at=0.002, action="heal", victim=a),
        FaultEvent(at=0.002, action="heal", victim=b),
    ])
    run_to(sim, sim.process(inj.run()))
    cluster.stop()
    assert [(act, name) for _t, act, name, _d in inj.timeline] == [
        ("slow", a), ("slow", b), ("heal", a), ("heal", b),
    ]


def test_secondary_victim_raises_when_no_candidate():
    class TinyCluster:
        def placement(self, inode, stripe):
            return ["osd0", "osd1"]

        def replica_of(self, name):
            return "osd1"

    with pytest.raises(RuntimeError, match="no eligible secondary victim"):
        secondary_victim(TinyCluster(), [600])


def test_victims_resolve_lazily_against_the_live_cluster():
    """Satellite: pickers run at fire time — a membership change between
    scheduling and firing changes who gets hit."""
    sim, cluster = build("fo")
    load(cluster)
    cluster.start()
    before = primary_victim(cluster, [600])
    inj = FaultInjector(cluster, [600], [
        FaultEvent(at=0.002, action="slow", victim=primary_victim, factor=2.0),
        FaultEvent(at=0.003, action="heal", victim=primary_victim),
    ])
    rotated = list(cluster.ring[1:]) + [cluster.ring[0]]
    sim.call_at(0.001, lambda: cluster.commit_ring(rotated))
    run_to(sim, sim.process(inj.run()))
    cluster.stop()
    after = cluster.placement(600, 0)[0]
    assert after != before  # the rotation really moved the primary
    assert inj.timeline[0][2] == after


# ----------------------------------------------------------------------
# fail-slow devices
# ----------------------------------------------------------------------
def test_device_degrade_scales_service_time_and_heals():
    sim = Simulator()
    ssd = SSD(sim)
    base = ssd.service_time("write", 4096, sequential=True)
    ssd.degrade(6.0)
    assert ssd.service_time("write", 4096, sequential=True) == base * 6.0
    ssd.heal()
    assert ssd.service_time("write", 4096, sequential=True) == base
    with pytest.raises(ValueError):
        ssd.degrade(0.0)


# ----------------------------------------------------------------------
# fabric degradation + egress loss
# ----------------------------------------------------------------------
def test_degrade_link_scales_bw_and_adds_latency():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    fab.attach("b")
    fab.degrade_link("a", bw_factor=0.5, extra_latency=1e-4)

    def proc():
        yield from fab.transfer("a", "b", 1 << 20)
        return sim.now

    p = sim.process(proc())
    sim.run()
    wire = ((1 << 20) + NET_25GBE.header_bytes) / NET_25GBE.bandwidth
    # tx serialisation doubles (half bandwidth); rx leg is untouched.
    assert p.value == pytest.approx(3 * wire + NET_25GBE.base_latency + 1e-4)


def test_heal_link_restores_profile_speed():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    fab.attach("b")
    fab.degrade_link("a", bw_factor=0.25)
    assert fab.link_state("a") is not None
    fab.heal_link("a")
    fab.heal_link("a")  # idempotent
    assert fab.link_state("a") is None

    def proc():
        yield from fab.transfer("a", "b", 1 << 20)
        return sim.now

    p = sim.process(proc())
    sim.run()
    wire = ((1 << 20) + NET_25GBE.header_bytes) / NET_25GBE.bandwidth
    assert p.value == pytest.approx(2 * wire + NET_25GBE.base_latency)


def test_degrade_link_validation():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    with pytest.raises(KeyError):
        fab.degrade_link("ghost", bw_factor=0.5)
    with pytest.raises(ValueError):
        fab.degrade_link("a", bw_factor=0.0)
    with pytest.raises(ValueError):
        fab.degrade_link("a", extra_latency=-1.0)
    with pytest.raises(ValueError):
        fab.degrade_link("a", loss_every=-1)


def test_lossy_link_drops_every_nth_egress_message():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    fab.attach("b")
    fab.degrade_link("a", loss_every=2)
    outcomes = []

    def one(kind):
        try:
            yield from fab.transfer("a", "b", 4096, kind=kind)
            outcomes.append("ok")
        except LinkLossError as exc:
            assert exc.endpoint == "a"
            outcomes.append("dropped")

    def proc():
        for _ in range(4):
            yield from one("req")

    run_to(sim, sim.process(proc()))
    assert outcomes == ["ok", "dropped", "ok", "dropped"]
    assert fab.dropped_total == 2
    assert fab.link_state("a").dropped == 2


def test_egress_loss_exempts_reply_and_err_frames():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    fab.attach("b")
    fab.degrade_link("a", loss_every=1)  # would drop every countable message

    def proc():
        yield from fab.transfer("a", "b", 64, kind="read.reply")
        yield from fab.transfer("a", "b", 64, kind="update.err")
        return "delivered"

    p = sim.process(proc())
    sim.run()
    assert p.value == "delivered"
    assert fab.dropped_total == 0


def test_transfer_counters_record_on_completion():
    """Satellite: traffic counters move at delivery, not at issue — an
    in-flight transfer contributes nothing yet."""
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    fab.attach("b")

    def proc():
        yield from fab.transfer("a", "b", 1 << 20, kind="delta")

    p = sim.process(proc())
    wire = ((1 << 20) + NET_25GBE.header_bytes) / NET_25GBE.bandwidth
    # Past the tx leg and switch latency, mid rx-deserialisation.
    sim.run(until=wire + NET_25GBE.base_latency + wire / 2)
    assert not p.fired
    assert fab.counters.messages == 0 and fab.counters.bytes_sent == 0
    assert fab.nics["a"].counters.bytes_sent == 0
    sim.run()
    assert p.fired
    assert fab.counters.messages == 1 and fab.counters.bytes_sent == 1 << 20
    assert fab.nics["a"].counters.bytes_sent == 1 << 20


def test_dropped_transfer_counts_no_bytes():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    fab.attach("b")
    fab.degrade_link("a", loss_every=1)

    def proc():
        try:
            yield from fab.transfer("a", "b", 4096, kind="req")
        except LinkLossError:
            return "dropped"

    p = sim.process(proc())
    sim.run()
    assert p.value == "dropped"
    assert fab.counters.messages == 0 and fab.counters.bytes_sent == 0
    assert fab.dropped_total == 1


# ----------------------------------------------------------------------
# elastic membership: provision, join, decommission
# ----------------------------------------------------------------------
def test_add_osd_provisions_outside_the_ring():
    sim, cluster = build("fo")
    cluster.start()
    osd = cluster.add_osd()
    assert osd.name == "osd8"
    assert osd.running
    assert osd.name not in cluster.ring
    assert len(cluster.ring) == 8  # placement unchanged until commit
    cluster.stop()


def test_join_rebalances_and_preserves_data():
    sim, cluster = build("fo")
    data = load(cluster, stripes=4)
    client = cluster.add_client("c0")
    cluster.start()
    osd = cluster.add_osd()
    result = run_to(sim, sim.process(rebalance_join(cluster, osd.name)))
    assert osd.name in cluster.ring and len(cluster.ring) == 9
    assert result.kind == "join" and result.osd == osd.name
    assert result.stripes_migrated > 0
    assert result.blocks_moved > 0
    assert result.bytes_moved == result.blocks_moved * BLOCK
    assert result.t_end > result.t_start
    for s in range(4):
        assert cluster.stripe_consistent(600, s)
    # Every key lives exactly at its (new) placement — stale copies pruned.
    for s in range(4):
        names = cluster.placement(600, s)
        for b in range(K + M):
            for other in cluster.osds:
                blk = other.store.peek((600, s, b))
                if other.name == names[b]:
                    assert blk is not None
                else:
                    assert blk is None
    # Reads decode byte-correct through the new membership.

    def rd():
        return (yield from client.read(600, 100, 256))

    got = run_to(sim, sim.process(rd()))
    cluster.stop()
    assert np.array_equal(got, data[100:356])


def test_decommission_moves_placement_and_stops_node():
    sim, cluster = build("fo")
    data = load(cluster, stripes=4)
    client = cluster.add_client("c0")
    cluster.start()
    victim = cluster.placement(600, 0)[0]
    result = run_to(sim, sim.process(rebalance_leave(cluster, victim)))
    assert result.kind == "decommission"
    assert victim not in cluster.ring and len(cluster.ring) == 7
    victim_osd = cluster.osd_by_name(victim)
    assert not victim_osd.running
    assert not victim_osd.store.blocks  # fully copied away, then pruned
    for s in range(4):
        assert cluster.stripe_consistent(600, s)

    def rd():
        return (yield from client.read(600, 3 * BLOCK - 64, 128))

    got = run_to(sim, sim.process(rd()))
    cluster.stop()
    assert np.array_equal(got, data[3 * BLOCK - 64 : 3 * BLOCK + 64])


def test_rebalance_guards():
    sim, cluster = build("fo")
    load(cluster)
    cluster.start()
    # Join of an existing member / leave of a non-member are caller bugs.
    with pytest.raises(ValueError, match="already a ring member"):
        next(rebalance_join(cluster, cluster.ring[0]))
    with pytest.raises(ValueError, match="not a ring member"):
        next(rebalance_leave(cluster, "ghost"))
    # A down member must be recovered before it can be decommissioned.
    victim = cluster.ring[0]
    fail_osd(cluster, victim, mode="stop")
    with pytest.raises(StripeMigrationError, match="while it is down"):
        next(rebalance_leave(cluster, victim))
    cluster.stop()


def test_decommission_below_min_ring_refused():
    sim, cluster = build("fo", n_osds=6)  # exactly k+m members
    load(cluster)
    cluster.start()
    with pytest.raises(StripeMigrationError, match="below k\\+m"):
        next(rebalance_leave(cluster, cluster.ring[0]))
    cluster.stop()


# ----------------------------------------------------------------------
# the live-change scenario axis end to end (tentpole acceptance)
# ----------------------------------------------------------------------
def test_elastic_scenarios_registered():
    assert set(ELASTIC_SCENARIOS) <= set(SCENARIOS)
    for name in ELASTIC_SCENARIOS:
        scenario = SCENARIOS[name]
        assert scenario.faults
        assert not scenario.recovery  # heal by schedule, no watcher


@pytest.mark.parametrize("method", METHODS)
def test_scale_in_live_all_methods(method):
    """The acceptance bar for migration: every method survives a live
    decommission — consistent drain, clean forced scrub, full elastic
    section, no lost foreground ops."""
    res = run_scenario("scale_in_live", method=method, **SMOKE)
    assert res.consistent
    e = res.elastic
    assert e is not None
    assert e["decommissions"] == 1 and e["migrations"] == 1
    assert e["stripes_migrated"] > 0 and e["migration_mb"] > 0
    assert e["time_to_rebalance_s"] > 0
    assert e["ring_size"] == 7
    assert res.recovery["scrub_clean"] is True
    assert res.updates + res.reads == SMOKE["n_clients"] * SMOKE["requests_per_client"]


def test_scale_out_live_migrates_onto_joiner():
    res = run_scenario("scale_out_live", **SMOKE)
    e = res.elastic
    assert e["joins"] == 1 and e["ring_size"] == 9
    assert e["stripes_migrated"] > 0 and e["blocks_moved"] > 0
    assert e["rebalance_copy_s"] > 0
    assert res.recovery["scrub_clean"] is True
    # Fault scenarios must run the event plane, never the projected one.
    assert res.perf["fast_dataplane"] == 0.0


def test_fail_slow_amplifies_the_tail():
    res = run_scenario("fail_slow", **SMOKE)
    e = res.elastic
    assert e["slow_events"] == 1 and e["heals"] == 1
    assert e["degraded_s"] > 0
    assert e["straggler_p99_us"] > e["healthy_p99_us"]
    assert e["straggler_amplification"] > 1.0
    assert res.recovery["failures"] == 0  # nothing ever went down


def test_congested_fabric_drops_and_retries():
    res = run_scenario("congested_fabric", **SMOKE)
    e = res.elastic
    assert e["slow_link_events"] == 2 and e["heals"] == 2
    assert e["link_drops"] > 0
    assert res.recovery["update_retries"] > 0  # dropped requests retried
    assert e["straggler_amplification"] > 1.0


def test_rolling_restart_counts_and_dips():
    res = run_scenario("rolling_restart", **SMOKE)
    e = res.elastic
    assert e["restarts"] == 3
    assert res.recovery["failures"] == 3  # restart windows count as outages
    assert res.recovery["recoveries"] == 0  # self-healing, no rebuild
    assert e["change_window_s"] > 0
    assert 0 < e["change_dip"] < 1.0  # foreground visibly dips


def test_elastic_results_serialize():
    res = run_scenario("fail_slow", **SMOKE)
    payload = json.loads(json.dumps(res.to_dict()))
    assert payload["elastic"]["slow_events"] == 1.0
    assert "elastic" in res.render() and "straggler" in res.render()


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_cli_bench_elastic_rows(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "bench.json"
    rc = main(["bench", "--clients", "2", "--requests", "30",
               "--scenarios", "steady", "--methods", "tsue",
               "--recovery-scenario", "none",
               "--scale-up-scenario", "none",
               "--scale-out-scenario", "none",
               "--elastic-scenarios", "fail_slow",
               "--json", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "per-method live-change rows (fail_slow)" in out
    payload = json.loads(path.read_text())
    row = payload["elastic"]["fail_slow"]["tsue"]
    assert row["consistent"] is True
    assert row["elastic"]["slow_events"] == 1.0
    assert payload["perf"]["fail_slow/tsue"]["wall_s"] > 0


def test_cli_bench_elastic_none_skips(tmp_path):
    from repro.cli import main

    path = tmp_path / "bench.json"
    rc = main(["bench", "--clients", "2", "--requests", "30",
               "--scenarios", "steady", "--methods", "tsue",
               "--recovery-scenario", "none",
               "--scale-up-scenario", "none",
               "--scale-out-scenario", "none",
               "--elastic-scenarios", "none",
               "--json", str(path)])
    assert rc == 0
    assert "elastic" not in json.loads(path.read_text())


def test_cli_bench_unknown_elastic_scenario_fails_fast(capsys):
    from repro.cli import main

    rc = main(["bench", "--elastic-scenarios", "bogus"])
    assert rc == 2
    assert "bogus" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the at-most-once fault plane: loss scopes, direction accounting,
# QoS-throttled rebalance (satellites + tentpole acceptance)
# ----------------------------------------------------------------------
def test_degrade_link_loss_scope_validation():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    with pytest.raises(ValueError, match="loss_scope"):
        fab.degrade_link("a", loss_every=2, loss_scope="everything")
    with pytest.raises(KeyError):
        fab.degrade_link("ghost", loss_every=2, loss_scope="all")


def test_fault_event_loss_scope_and_throttle_scoping():
    """Satellite: strict FaultEvent field validation for the new knobs."""
    # loss_scope: only meaningful on slow_link, only the two known values.
    with pytest.raises(ValueError, match="loss_scope"):
        FaultEvent(at=0.0, action="slow_link", victim="osd0", factor=2.0,
                   loss_every=2, loss_scope="sometimes")
    with pytest.raises(ValueError, match="slow_link"):
        FaultEvent(at=0.0, action="slow", victim="osd0", factor=2.0,
                   loss_scope="all")
    with pytest.raises(ValueError, match="slow_link"):
        FaultEvent(at=0.0, action="fail", victim="osd0", loss_scope="all")
    # rebalance_mbps: only on the membership actions, never negative.
    with pytest.raises(ValueError, match="rebalance_mbps"):
        FaultEvent(at=0.0, action="slow", victim="osd0", factor=2.0,
                   rebalance_mbps=64.0)
    with pytest.raises(ValueError, match="rebalance_mbps"):
        FaultEvent(at=0.0, action="join", rebalance_mbps=-1.0)
    # The valid combinations construct cleanly.
    ok = FaultEvent(at=0.0, action="slow_link", victim="osd0", factor=2.0,
                    loss_every=3, loss_scope="all")
    assert ok.loss_scope == "all"
    assert FaultEvent(at=0.0, action="join", rebalance_mbps=64.0).rebalance_mbps == 64.0
    assert FaultEvent(at=0.0, action="decommission", victim="osd0",
                      rebalance_mbps=96.0).rebalance_mbps == 96.0


def test_loss_scope_all_drops_replies_with_direction_accounting():
    """Satellite: scope=\"all\" covers reply/err frames, and drops are
    accounted per direction and folded into fabric totals on heal."""
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    fab.attach("b")
    fab.degrade_link("a", loss_every=1, loss_scope="all")
    outcomes = []

    def one(kind):
        try:
            yield from fab.transfer("a", "b", 256, kind=kind)
            outcomes.append("ok")
        except LinkLossError:
            outcomes.append("dropped")

    def proc():
        yield from one("req")
        yield from one("read.reply")
        yield from one("update.err")

    run_to(sim, sim.process(proc()))
    assert outcomes == ["dropped", "dropped", "dropped"]
    assert fab.link_state("a").dropped_requests == 1
    assert fab.link_state("a").dropped_replies == 2
    assert fab.link_state("a").dropped == 3
    assert (fab.dropped_requests, fab.dropped_replies) == (1, 2)
    fab.heal_link("a")  # folds the per-link counters into the fabric
    assert (fab.dropped_requests, fab.dropped_replies) == (1, 2)
    assert fab.dropped_total == 3


def test_default_scope_still_exempts_replies():
    """The historical contract is the default: requests-only loss leaves
    every reply/err frame alone (and off the countable-message stream)."""
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    fab.attach("b")
    fab.degrade_link("a", loss_every=1)  # loss_scope="requests"

    def proc():
        yield from fab.transfer("a", "b", 64, kind="read.reply")
        yield from fab.transfer("a", "b", 64, kind="update.err")
        return "delivered"

    p = sim.process(proc())
    sim.run()
    assert p.value == "delivered"
    assert fab.dropped_replies == 0


def test_retransmitted_transfer_bytes_count_at_completion():
    """Satellite: a dropped frame moves no counters; only the successful
    retransmission counts — and exactly once, at delivery time."""
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    fab.attach("b")
    fab.degrade_link("a", loss_every=2, loss_scope="all")

    def proc():
        yield from fab.transfer("a", "b", 1024, kind="d")   # 1st: delivered
        try:
            yield from fab.transfer("a", "b", 2048, kind="d")  # 2nd: dropped
        except LinkLossError:
            yield from fab.transfer("a", "b", 2048, kind="d")  # retransmit

    p = sim.process(proc())
    sim.run()
    assert p.fired
    assert fab.counters.messages == 2          # only delivered frames
    assert fab.counters.bytes_sent == 1024 + 2048  # retransmit counted once
    assert fab.link_state("a").dropped == 1


@pytest.mark.parametrize("method", METHODS)
def test_lossy_drained_state_matches_lossless(method):
    """The retry-safety property: with loss on OSD egress AND reply frames,
    every method drains to the byte-identical state of a lossless run fed
    the same RNG draws.  Fails on the pre-at-most-once transport (reply
    loss either double-applied deltas or was simply unsupported)."""
    def run(lossy):
        sim, cluster = build(method)
        data = load(cluster, stripes=2)
        client = cluster.add_client("c0")
        cluster.start()
        victim = cluster.placement(600, 0)[0]
        if lossy:
            cluster.fabric.degrade_link(victim, bw_factor=0.5, loss_every=3,
                                        loss_scope="all")
            cluster.fabric.degrade_link("c0", bw_factor=0.5, loss_every=4,
                                        loss_scope="all")
        rng = np.random.default_rng(99)
        offsets = rng.integers(0, 2 * K * BLOCK - 64, size=24)
        payloads = rng.integers(0, 256, size=(24, 64), dtype=np.uint8)

        def work():
            # One client, sequential ops: a total order, so loss can delay
            # but never reorder — the drained bytes must match exactly.
            for off, buf in zip(offsets, payloads):
                yield from client.update(600, int(off), buf)
            if lossy:
                cluster.fabric.heal_link(victim)
                cluster.fabric.heal_link("c0")
            yield from drain_all(cluster)

        run_to(sim, sim.process(work()), horizon=240.0)
        cluster.stop()
        state = {
            osd.name: {
                key: blk.tobytes()
                for key, blk in sorted(osd.store.blocks.items())
            }
            for osd in cluster.osds
        }
        dropped = cluster.fabric.dropped_total
        return state, dropped

    lossless, d0 = run(lossy=False)
    lossy, d1 = run(lossy=True)
    assert d0 == 0 and d1 > 0  # the lossy run really did lose frames
    assert lossy == lossless


def test_lossy_cluster_all_methods_smoke():
    """The scenario gate for one method (the full seven-method sweep runs
    in the bench): consistent drain, clean scrub, live delivery metrics."""
    res = run_scenario("lossy_cluster", method="tsue", **SMOKE)
    assert res.consistent
    assert res.recovery["scrub_clean"] is True
    e = res.elastic
    assert e["slow_link_events"] == 2 and e["heals"] == 2
    assert e["retransmits"] > 0
    assert e["duplicates_suppressed"] > 0
    assert e["cached_reply_hits"] > 0
    assert e["link_drop_replies"] > 0
    assert e["link_drops"] == e["link_drop_requests"] + e["link_drop_replies"]
    assert res.updates + res.reads == SMOKE["n_clients"] * SMOKE["requests_per_client"]


def test_throttled_rebalance_softens_the_change_dip():
    """QoS acceptance: same decommission, same migration plan — but the
    token-bucket copy leaves foreground updates a strictly better in-window
    rate than the unthrottled rebalance."""
    base = run_scenario("scale_in_live", method="tsue", **SMOKE)
    qos = run_scenario("throttled_rebalance", method="tsue", **SMOKE)
    assert qos.consistent and qos.recovery["scrub_clean"] is True
    b, q = base.elastic, qos.elastic
    assert q["stripes_migrated"] == b["stripes_migrated"]  # equal volume
    assert q["rebalance_throttle_mbps"] == 96.0
    assert q["rebalance_throttle_wait_s"] > 0
    assert 0.0 < q["throttle_utilization"] < 2.0
    assert q["change_dip"] > b["change_dip"]  # higher ratio = smaller dip
    # The throttle stretches the copy: the change window grows, the pain
    # per unit time shrinks.
    assert q["rebalance_copy_s"] > b["rebalance_copy_s"]
    # Baseline rows keep their historical key set (bit-identity gate).
    assert "throttle_utilization" not in b
    assert "retransmits" not in b


# ----------------------------------------------------------------------
# drains under live traffic (the QoS path drains per stripe while every
# other stripe keeps updating — regressions here corrupt parity silently)
# ----------------------------------------------------------------------
def test_plr_live_drain_keeps_delta_appended_mid_recycle():
    """A parity delta that lands while a live drain is mid-recycle must
    start a fresh ledger and be applied by the next pass.  Fails on the
    pre-fix recycle, which zeroed the region counters *after* its device
    yields — stranding the mid-flight delta invisibly in the index forever.
    The historical (sync) recycle keeps its exact pre-PR timing; only
    drains on a cluster latched into live_drain (the QoS rebalance) take
    the drain-safe path."""
    from types import SimpleNamespace

    sim, cluster = build("plr")
    load(cluster, stripes=1)
    cluster.start()
    parity = cluster.osd_by_name(cluster.placement(600, 0)[K])
    strat = parity.strategy
    pkey = (600, 0, K)
    d1 = np.full(64, 3, dtype=np.uint8)
    d2 = np.full(64, 5, dtype=np.uint8)
    p0 = parity.store.peek(pkey).copy()

    def append(offset, pdelta):
        msg = SimpleNamespace(payload={"pkey": pkey, "offset": offset,
                                       "pdelta": pdelta})
        yield from strat._h_append(msg)

    run_to(sim, sim.process(append(0, d1)))
    # Race a second append against a live drain of the first: its region
    # write (96 B) completes inside the recycle's chunk read+write window.
    cluster.live_drain = True  # as latched by the QoS rebalance
    p_rec = sim.process(strat.drain(0))
    p_app = sim.process(append(128, d2))
    run_to(sim, p_rec)
    run_to(sim, p_app)
    # The mid-recycle delta is pending again — visibly, so gates skip it.
    assert strat.region_used.get(pkey, 0) > 0
    assert strat.stripe_pending(600, 0)
    run_to(sim, sim.process(drain_all(cluster)))
    assert pkey not in list(strat.log_index.blocks())
    assert strat.region_used.get(pkey, 0) == 0
    expect = p0.copy()
    expect[0:64] ^= d1
    expect[128:192] ^= d2
    assert np.array_equal(parity.store.peek(pkey), expect)


def test_plr_live_drain_sweeps_stranded_entries():
    """The historical sync recycle keeps its pre-PR timing, so an append
    racing it can still strand an index entry under a zeroed ledger.  On a
    live_drain cluster the stripe must stay visibly pending and the next
    drain must sweep the strand into the parity chunk."""
    from types import SimpleNamespace

    sim, cluster = build("plr")
    load(cluster, stripes=1)
    cluster.start()
    parity = cluster.osd_by_name(cluster.placement(600, 0)[K])
    strat = parity.strategy
    pkey = (600, 0, K)
    d1 = np.full(64, 3, dtype=np.uint8)
    d2 = np.full(64, 5, dtype=np.uint8)
    p0 = parity.store.peek(pkey).copy()

    def append(offset, pdelta):
        msg = SimpleNamespace(payload={"pkey": pkey, "offset": offset,
                                       "pdelta": pdelta})
        yield from strat._h_append(msg)

    run_to(sim, sim.process(append(0, d1)))
    run_to(sim, sim.process(drain_all(cluster)))  # applies d1, ledger zeroed
    # Manufacture the race outcome: entry in the index, ledger reads zero.
    strat.log_index.insert(pkey, 128, d2)
    cluster.live_drain = True
    assert strat.stripe_pending(600, 0)
    run_to(sim, sim.process(drain_all(cluster)))
    assert pkey not in list(strat.log_index.blocks())
    assert not strat.stripe_pending(600, 0)
    expect = p0.copy()
    expect[0:64] ^= d1
    expect[128:192] ^= d2
    assert np.array_equal(parity.store.peek(pkey), expect)


def test_qos_rebalance_skips_wholesale_on_rebuilt():
    """The final QoS commit is placement-neutral (every moved stripe already
    routes through its override, installed against a fenced + drained
    stripe), so it must NOT fire the wholesale on_rebuilt() reset: unfenced
    stripes keep updating through the copy windows, and the reset would wipe
    their live pending state (PARIX deltas, for one) mid-flow."""
    def run(mbps):
        sim, cluster = build("parix", n_osds=8)
        load(cluster, stripes=2)
        cluster.start()
        calls = []
        for osd in cluster.osds:
            osd.strategy.on_rebuilt = (
                lambda name=osd.name: calls.append(name)
            )
        victim = cluster.placement(600, 0)[0]
        res = run_to(
            sim, sim.process(rebalance_leave(cluster, victim, rebalance_mbps=mbps))
        )
        assert res.stripes_migrated > 0
        return calls

    assert run(64.0) == []          # QoS path: no wholesale reset
    assert len(run(0.0)) == 7       # classic path: every new-ring member
