"""The live-change fault plane: fail-slow devices, degraded/lossy links,
rolling restarts and elastic membership (join/decommission rebalance)."""

import json

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.devices import SSD
from repro.net import NET_25GBE, Fabric, LinkLossError
from repro.recovery import (
    StripeMigrationError,
    fail_osd,
    rebalance_join,
    rebalance_leave,
)
from repro.sim import Simulator
from repro.update import make_strategy_factory
from repro.workload import (
    ELASTIC_SCENARIOS,
    METHODS,
    SCENARIOS,
    FaultEvent,
    FaultInjector,
    primary_victim,
    run_scenario,
    secondary_victim,
)

K, M, BLOCK = 4, 2, 2048
SMOKE = dict(n_clients=2, requests_per_client=40)


def build(method="fo", n_osds=8, seed=13, **params):
    sim = Simulator()
    if method == "tsue" and not params:
        params = dict(unit_bytes=8 * 1024, flush_age=0.01, flush_interval=0.005)
    cluster = Cluster(
        sim,
        ClusterConfig(n_osds=n_osds, k=K, m=M, block_size=BLOCK, seed=seed,
                      client_overhead_s=0.0),
        make_strategy_factory(method, **params),
    )
    return sim, cluster


def run_to(sim, proc, horizon=120.0):
    while not proc.fired and sim.peek() != float("inf") and sim.now < horizon:
        sim.step()
    assert proc.fired
    return proc.value


def load(cluster, inode=600, stripes=2, seed=1):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, stripes * K * BLOCK, dtype=np.uint8)
    cluster.instant_load_file(inode, data)
    return data


# ----------------------------------------------------------------------
# FaultEvent validation (satellite: mode is fail-only; field scoping)
# ----------------------------------------------------------------------
def test_fault_event_mode_only_valid_on_fail():
    with pytest.raises(ValueError, match="only meaningful on 'fail'"):
        FaultEvent(at=0.0, action="slow", victim="osd0", mode="crash", factor=2.0)
    with pytest.raises(ValueError, match="only meaningful on 'fail'"):
        FaultEvent(at=0.0, action="restore", victim="osd0", mode="stop")
    # fail without a mode normalizes to crash; bad modes are rejected.
    assert FaultEvent(at=0.0, action="fail", victim="osd0").mode == "crash"
    with pytest.raises(ValueError, match="unknown failure mode"):
        FaultEvent(at=0.0, action="fail", victim="osd0", mode="maim")


def test_fault_event_field_scoping():
    with pytest.raises(ValueError, match="unknown fault action"):
        FaultEvent(at=0.0, action="warp", victim="osd0")
    with pytest.raises(ValueError, match="takes no victim"):
        FaultEvent(at=0.0, action="join", victim="osd0")
    with pytest.raises(ValueError, match="requires a victim"):
        FaultEvent(at=0.0, action="slow", factor=2.0)
    with pytest.raises(ValueError, match="factor must be > 0"):
        FaultEvent(at=0.0, action="slow", victim="osd0", factor=0.0)
    with pytest.raises(ValueError, match="only meaningful on slow"):
        FaultEvent(at=0.0, action="fail", victim="osd0", factor=2.0)
    with pytest.raises(ValueError, match="slow_link"):
        FaultEvent(at=0.0, action="slow", victim="osd0", factor=2.0, loss_every=3)
    with pytest.raises(ValueError, match="duration > 0"):
        FaultEvent(at=0.0, action="restart", victim="osd0")
    with pytest.raises(ValueError, match="restart events"):
        FaultEvent(at=0.0, action="fail", victim="osd0", duration=1.0)


def test_injector_timeline_records_failure_mode():
    """Satellite: the timeline carries the fail mode so tests and metrics
    can tell crash from stop without re-reading the schedule."""
    sim, cluster = build("fo")
    load(cluster)
    cluster.start()
    victim = cluster.placement(600, 0)[0]
    inj = FaultInjector(cluster, [600], [
        FaultEvent(at=0.001, action="fail", victim=primary_victim, mode="stop"),
        FaultEvent(at=0.002, action="restore", victim=primary_victim),
    ])
    run_to(sim, sim.process(inj.run()))
    cluster.stop()
    (t1, a1, n1, d1), (t2, a2, n2, d2) = inj.timeline
    assert (a1, n1, d1) == ("fail", victim, "stop")
    assert (a2, n2, d2) == ("restore", victim, "")
    assert t1 == pytest.approx(0.001) and t2 == pytest.approx(0.002)


def test_equal_time_events_fire_in_declared_order():
    """Satellite: sorting the schedule is stable, so two events at the
    same instant fire in declaration order."""
    sim, cluster = build("fo")
    load(cluster)
    cluster.start()
    a, b = cluster.ring[0], cluster.ring[1]
    inj = FaultInjector(cluster, [600], [
        FaultEvent(at=0.001, action="slow", victim=a, factor=2.0),
        FaultEvent(at=0.001, action="slow", victim=b, factor=3.0),
        FaultEvent(at=0.002, action="heal", victim=a),
        FaultEvent(at=0.002, action="heal", victim=b),
    ])
    run_to(sim, sim.process(inj.run()))
    cluster.stop()
    assert [(act, name) for _t, act, name, _d in inj.timeline] == [
        ("slow", a), ("slow", b), ("heal", a), ("heal", b),
    ]


def test_secondary_victim_raises_when_no_candidate():
    class TinyCluster:
        def placement(self, inode, stripe):
            return ["osd0", "osd1"]

        def replica_of(self, name):
            return "osd1"

    with pytest.raises(RuntimeError, match="no eligible secondary victim"):
        secondary_victim(TinyCluster(), [600])


def test_victims_resolve_lazily_against_the_live_cluster():
    """Satellite: pickers run at fire time — a membership change between
    scheduling and firing changes who gets hit."""
    sim, cluster = build("fo")
    load(cluster)
    cluster.start()
    before = primary_victim(cluster, [600])
    inj = FaultInjector(cluster, [600], [
        FaultEvent(at=0.002, action="slow", victim=primary_victim, factor=2.0),
        FaultEvent(at=0.003, action="heal", victim=primary_victim),
    ])
    rotated = list(cluster.ring[1:]) + [cluster.ring[0]]
    sim.call_at(0.001, lambda: cluster.commit_ring(rotated))
    run_to(sim, sim.process(inj.run()))
    cluster.stop()
    after = cluster.placement(600, 0)[0]
    assert after != before  # the rotation really moved the primary
    assert inj.timeline[0][2] == after


# ----------------------------------------------------------------------
# fail-slow devices
# ----------------------------------------------------------------------
def test_device_degrade_scales_service_time_and_heals():
    sim = Simulator()
    ssd = SSD(sim)
    base = ssd.service_time("write", 4096, sequential=True)
    ssd.degrade(6.0)
    assert ssd.service_time("write", 4096, sequential=True) == base * 6.0
    ssd.heal()
    assert ssd.service_time("write", 4096, sequential=True) == base
    with pytest.raises(ValueError):
        ssd.degrade(0.0)


# ----------------------------------------------------------------------
# fabric degradation + egress loss
# ----------------------------------------------------------------------
def test_degrade_link_scales_bw_and_adds_latency():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    fab.attach("b")
    fab.degrade_link("a", bw_factor=0.5, extra_latency=1e-4)

    def proc():
        yield from fab.transfer("a", "b", 1 << 20)
        return sim.now

    p = sim.process(proc())
    sim.run()
    wire = ((1 << 20) + NET_25GBE.header_bytes) / NET_25GBE.bandwidth
    # tx serialisation doubles (half bandwidth); rx leg is untouched.
    assert p.value == pytest.approx(3 * wire + NET_25GBE.base_latency + 1e-4)


def test_heal_link_restores_profile_speed():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    fab.attach("b")
    fab.degrade_link("a", bw_factor=0.25)
    assert fab.link_state("a") is not None
    fab.heal_link("a")
    fab.heal_link("a")  # idempotent
    assert fab.link_state("a") is None

    def proc():
        yield from fab.transfer("a", "b", 1 << 20)
        return sim.now

    p = sim.process(proc())
    sim.run()
    wire = ((1 << 20) + NET_25GBE.header_bytes) / NET_25GBE.bandwidth
    assert p.value == pytest.approx(2 * wire + NET_25GBE.base_latency)


def test_degrade_link_validation():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    with pytest.raises(KeyError):
        fab.degrade_link("ghost", bw_factor=0.5)
    with pytest.raises(ValueError):
        fab.degrade_link("a", bw_factor=0.0)
    with pytest.raises(ValueError):
        fab.degrade_link("a", extra_latency=-1.0)
    with pytest.raises(ValueError):
        fab.degrade_link("a", loss_every=-1)


def test_lossy_link_drops_every_nth_egress_message():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    fab.attach("b")
    fab.degrade_link("a", loss_every=2)
    outcomes = []

    def one(kind):
        try:
            yield from fab.transfer("a", "b", 4096, kind=kind)
            outcomes.append("ok")
        except LinkLossError as exc:
            assert exc.endpoint == "a"
            outcomes.append("dropped")

    def proc():
        for _ in range(4):
            yield from one("req")

    run_to(sim, sim.process(proc()))
    assert outcomes == ["ok", "dropped", "ok", "dropped"]
    assert fab.dropped_total == 2
    assert fab.link_state("a").dropped == 2


def test_egress_loss_exempts_reply_and_err_frames():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    fab.attach("b")
    fab.degrade_link("a", loss_every=1)  # would drop every countable message

    def proc():
        yield from fab.transfer("a", "b", 64, kind="read.reply")
        yield from fab.transfer("a", "b", 64, kind="update.err")
        return "delivered"

    p = sim.process(proc())
    sim.run()
    assert p.value == "delivered"
    assert fab.dropped_total == 0


def test_transfer_counters_record_on_completion():
    """Satellite: traffic counters move at delivery, not at issue — an
    in-flight transfer contributes nothing yet."""
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    fab.attach("b")

    def proc():
        yield from fab.transfer("a", "b", 1 << 20, kind="delta")

    p = sim.process(proc())
    wire = ((1 << 20) + NET_25GBE.header_bytes) / NET_25GBE.bandwidth
    # Past the tx leg and switch latency, mid rx-deserialisation.
    sim.run(until=wire + NET_25GBE.base_latency + wire / 2)
    assert not p.fired
    assert fab.counters.messages == 0 and fab.counters.bytes_sent == 0
    assert fab.nics["a"].counters.bytes_sent == 0
    sim.run()
    assert p.fired
    assert fab.counters.messages == 1 and fab.counters.bytes_sent == 1 << 20
    assert fab.nics["a"].counters.bytes_sent == 1 << 20


def test_dropped_transfer_counts_no_bytes():
    sim = Simulator()
    fab = Fabric(sim, NET_25GBE)
    fab.attach("a")
    fab.attach("b")
    fab.degrade_link("a", loss_every=1)

    def proc():
        try:
            yield from fab.transfer("a", "b", 4096, kind="req")
        except LinkLossError:
            return "dropped"

    p = sim.process(proc())
    sim.run()
    assert p.value == "dropped"
    assert fab.counters.messages == 0 and fab.counters.bytes_sent == 0
    assert fab.dropped_total == 1


# ----------------------------------------------------------------------
# elastic membership: provision, join, decommission
# ----------------------------------------------------------------------
def test_add_osd_provisions_outside_the_ring():
    sim, cluster = build("fo")
    cluster.start()
    osd = cluster.add_osd()
    assert osd.name == "osd8"
    assert osd.running
    assert osd.name not in cluster.ring
    assert len(cluster.ring) == 8  # placement unchanged until commit
    cluster.stop()


def test_join_rebalances_and_preserves_data():
    sim, cluster = build("fo")
    data = load(cluster, stripes=4)
    client = cluster.add_client("c0")
    cluster.start()
    osd = cluster.add_osd()
    result = run_to(sim, sim.process(rebalance_join(cluster, osd.name)))
    assert osd.name in cluster.ring and len(cluster.ring) == 9
    assert result.kind == "join" and result.osd == osd.name
    assert result.stripes_migrated > 0
    assert result.blocks_moved > 0
    assert result.bytes_moved == result.blocks_moved * BLOCK
    assert result.t_end > result.t_start
    for s in range(4):
        assert cluster.stripe_consistent(600, s)
    # Every key lives exactly at its (new) placement — stale copies pruned.
    for s in range(4):
        names = cluster.placement(600, s)
        for b in range(K + M):
            for other in cluster.osds:
                blk = other.store.peek((600, s, b))
                if other.name == names[b]:
                    assert blk is not None
                else:
                    assert blk is None
    # Reads decode byte-correct through the new membership.

    def rd():
        return (yield from client.read(600, 100, 256))

    got = run_to(sim, sim.process(rd()))
    cluster.stop()
    assert np.array_equal(got, data[100:356])


def test_decommission_moves_placement_and_stops_node():
    sim, cluster = build("fo")
    data = load(cluster, stripes=4)
    client = cluster.add_client("c0")
    cluster.start()
    victim = cluster.placement(600, 0)[0]
    result = run_to(sim, sim.process(rebalance_leave(cluster, victim)))
    assert result.kind == "decommission"
    assert victim not in cluster.ring and len(cluster.ring) == 7
    victim_osd = cluster.osd_by_name(victim)
    assert not victim_osd.running
    assert not victim_osd.store.blocks  # fully copied away, then pruned
    for s in range(4):
        assert cluster.stripe_consistent(600, s)

    def rd():
        return (yield from client.read(600, 3 * BLOCK - 64, 128))

    got = run_to(sim, sim.process(rd()))
    cluster.stop()
    assert np.array_equal(got, data[3 * BLOCK - 64 : 3 * BLOCK + 64])


def test_rebalance_guards():
    sim, cluster = build("fo")
    load(cluster)
    cluster.start()
    # Join of an existing member / leave of a non-member are caller bugs.
    with pytest.raises(ValueError, match="already a ring member"):
        next(rebalance_join(cluster, cluster.ring[0]))
    with pytest.raises(ValueError, match="not a ring member"):
        next(rebalance_leave(cluster, "ghost"))
    # A down member must be recovered before it can be decommissioned.
    victim = cluster.ring[0]
    fail_osd(cluster, victim, mode="stop")
    with pytest.raises(StripeMigrationError, match="while it is down"):
        next(rebalance_leave(cluster, victim))
    cluster.stop()


def test_decommission_below_min_ring_refused():
    sim, cluster = build("fo", n_osds=6)  # exactly k+m members
    load(cluster)
    cluster.start()
    with pytest.raises(StripeMigrationError, match="below k\\+m"):
        next(rebalance_leave(cluster, cluster.ring[0]))
    cluster.stop()


# ----------------------------------------------------------------------
# the live-change scenario axis end to end (tentpole acceptance)
# ----------------------------------------------------------------------
def test_elastic_scenarios_registered():
    assert set(ELASTIC_SCENARIOS) <= set(SCENARIOS)
    for name in ELASTIC_SCENARIOS:
        scenario = SCENARIOS[name]
        assert scenario.faults
        assert not scenario.recovery  # heal by schedule, no watcher


@pytest.mark.parametrize("method", METHODS)
def test_scale_in_live_all_methods(method):
    """The acceptance bar for migration: every method survives a live
    decommission — consistent drain, clean forced scrub, full elastic
    section, no lost foreground ops."""
    res = run_scenario("scale_in_live", method=method, **SMOKE)
    assert res.consistent
    e = res.elastic
    assert e is not None
    assert e["decommissions"] == 1 and e["migrations"] == 1
    assert e["stripes_migrated"] > 0 and e["migration_mb"] > 0
    assert e["time_to_rebalance_s"] > 0
    assert e["ring_size"] == 7
    assert res.recovery["scrub_clean"] is True
    assert res.updates + res.reads == SMOKE["n_clients"] * SMOKE["requests_per_client"]


def test_scale_out_live_migrates_onto_joiner():
    res = run_scenario("scale_out_live", **SMOKE)
    e = res.elastic
    assert e["joins"] == 1 and e["ring_size"] == 9
    assert e["stripes_migrated"] > 0 and e["blocks_moved"] > 0
    assert e["rebalance_copy_s"] > 0
    assert res.recovery["scrub_clean"] is True
    # Fault scenarios must run the event plane, never the projected one.
    assert res.perf["fast_dataplane"] == 0.0


def test_fail_slow_amplifies_the_tail():
    res = run_scenario("fail_slow", **SMOKE)
    e = res.elastic
    assert e["slow_events"] == 1 and e["heals"] == 1
    assert e["degraded_s"] > 0
    assert e["straggler_p99_us"] > e["healthy_p99_us"]
    assert e["straggler_amplification"] > 1.0
    assert res.recovery["failures"] == 0  # nothing ever went down


def test_congested_fabric_drops_and_retries():
    res = run_scenario("congested_fabric", **SMOKE)
    e = res.elastic
    assert e["slow_link_events"] == 2 and e["heals"] == 2
    assert e["link_drops"] > 0
    assert res.recovery["update_retries"] > 0  # dropped requests retried
    assert e["straggler_amplification"] > 1.0


def test_rolling_restart_counts_and_dips():
    res = run_scenario("rolling_restart", **SMOKE)
    e = res.elastic
    assert e["restarts"] == 3
    assert res.recovery["failures"] == 3  # restart windows count as outages
    assert res.recovery["recoveries"] == 0  # self-healing, no rebuild
    assert e["change_window_s"] > 0
    assert 0 < e["change_dip"] < 1.0  # foreground visibly dips


def test_elastic_results_serialize():
    res = run_scenario("fail_slow", **SMOKE)
    payload = json.loads(json.dumps(res.to_dict()))
    assert payload["elastic"]["slow_events"] == 1.0
    assert "elastic" in res.render() and "straggler" in res.render()


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_cli_bench_elastic_rows(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "bench.json"
    rc = main(["bench", "--clients", "2", "--requests", "30",
               "--scenarios", "steady", "--methods", "tsue",
               "--recovery-scenario", "none",
               "--scale-up-scenario", "none",
               "--scale-out-scenario", "none",
               "--elastic-scenarios", "fail_slow",
               "--json", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "per-method live-change rows (fail_slow)" in out
    payload = json.loads(path.read_text())
    row = payload["elastic"]["fail_slow"]["tsue"]
    assert row["consistent"] is True
    assert row["elastic"]["slow_events"] == 1.0
    assert payload["perf"]["fail_slow/tsue"]["wall_s"] > 0


def test_cli_bench_elastic_none_skips(tmp_path):
    from repro.cli import main

    path = tmp_path / "bench.json"
    rc = main(["bench", "--clients", "2", "--requests", "30",
               "--scenarios", "steady", "--methods", "tsue",
               "--recovery-scenario", "none",
               "--scale-up-scenario", "none",
               "--scale-out-scenario", "none",
               "--elastic-scenarios", "none",
               "--json", str(path)])
    assert rc == 0
    assert "elastic" not in json.loads(path.read_text())


def test_cli_bench_unknown_elastic_scenario_fails_fast(capsys):
    from repro.cli import main

    rc = main(["bench", "--elastic-scenarios", "bogus"])
    assert rc == 2
    assert "bogus" in capsys.readouterr().err
