"""Tests for counters, latency recording, residency and lifespan math."""

import pytest

from repro.metrics import (
    IntervalSeries,
    LatencyRecorder,
    NetCounters,
    OpCounters,
    ResidencyTracker,
    WearModel,
    format_series,
    format_table,
    lifespan_ratios,
)
from repro.metrics.lifespan import endurance_years


def test_opcounters_read_write_split():
    c = OpCounters()
    c.record_read(100, sequential=True)
    c.record_read(200, sequential=False)
    c.record_write(300, sequential=False, overwrite=True)
    c.record_write(400, sequential=True, overwrite=False)
    assert c.read_ops == 2 and c.write_ops == 2 and c.rw_ops == 4
    assert c.read_bytes == 300 and c.write_bytes == 700 and c.rw_bytes == 1000
    assert c.overwrite_ops == 1 and c.overwrite_bytes == 300


def test_opcounters_merge_and_aggregate():
    a, b = OpCounters(), OpCounters()
    a.record_read(10, True)
    b.record_write(20, False, True)
    total = OpCounters.aggregate([a, b])
    assert total.rw_ops == 2
    assert total.read_bytes_seq == 10
    assert total.overwrite_bytes == 20


def test_wear_model_random_overwrite_amplifies():
    w = WearModel()
    w.record_write(4096, sequential=False, overwrite=True)
    rand_erases = w.erase_ops
    w2 = WearModel()
    w2.record_write(4096, sequential=True, overwrite=True)
    assert rand_erases > 2 * w2.erase_ops
    w3 = WearModel()
    w3.record_write(4096, sequential=True, overwrite=False)
    assert w3.erase_ops < w2.erase_ops


def test_wear_merge():
    a, b = WearModel(), WearModel()
    a.record_write(4096, False, True)
    b.record_write(4096, False, True)
    m = a.merge(b)
    assert m.erase_ops == pytest.approx(2 * a.erase_ops)
    assert m.page_writes == 2 * a.page_writes


def test_netcounters():
    n = NetCounters()
    n.record(100, "x")
    n.record(50)
    assert n.messages == 2 and n.bytes_sent == 150
    assert n.by_kind == {"x": 100}
    m = n.merge(n)
    assert m.bytes_sent == 300 and m.by_kind == {"x": 200}


def test_latency_recorder_stats():
    r = LatencyRecorder("upd")
    for i, lat in enumerate([0.001, 0.002, 0.003, 0.004]):
        r.record(completion_time=(i + 1) * 0.5, latency=lat)
    assert r.count == 4
    assert r.mean() == pytest.approx(0.0025)
    assert r.percentile(0) == 0.001
    assert r.percentile(100) == 0.004
    assert r.throughput() == pytest.approx(4 / 2.0)
    assert r.throughput(horizon=4.0) == pytest.approx(1.0)


def test_latency_recorder_validation_and_empty():
    r = LatencyRecorder()
    assert r.mean() == 0.0 and r.percentile(50) == 0.0 and r.throughput() == 0.0
    with pytest.raises(ValueError):
        r.record(1.0, -0.1)


def test_iops_series_buckets():
    r = LatencyRecorder("x")
    for t in [0.1, 0.2, 1.5, 1.6, 1.7]:
        r.record(t, 0.001)
    s = r.iops_series(bucket=1.0, horizon=2.0)
    assert s.times == [1.0, 2.0]
    assert s.values == [2.0, 3.0]
    assert s.mean() == pytest.approx(2.5)
    assert s.value_at(0.5) == 2.0


def test_residency_tracker_means():
    t = ResidencyTracker()
    t.record("data_log", append=100e-6, buffer=1.0, recycle=300e-6)
    t.record("data_log", append=300e-6, buffer=3.0, recycle=500e-6)
    a, b, r = t.mean_us("data_log")
    assert a == pytest.approx(200.0)
    assert b == pytest.approx(2e6)
    assert r == pytest.approx(400.0)
    assert t.samples("data_log") == 2
    assert t.mean_us("delta_log") == (0.0, 0.0, 0.0)
    assert t.total_time_us() == pytest.approx(200 + 2e6 + 400)


def test_residency_unknown_layer_rejected():
    t = ResidencyTracker()
    with pytest.raises(KeyError):
        t.record("bogus", 0, 0, 0)


def test_lifespan_ratios_inverse_of_erases():
    wa, wb = WearModel(), WearModel()
    for _ in range(10):
        wa.record_write(4096, False, True)
    wb.record_write(4096, False, True)
    ratios = lifespan_ratios({"heavy": wa, "light": wb})
    assert ratios["heavy"] == pytest.approx(1.0)
    assert ratios["light"] == pytest.approx(10.0)


def test_endurance_years_scales_with_wear():
    w = WearModel()
    w.record_write(1 << 30, sequential=True, overwrite=True)
    y1 = endurance_years(w, device_bytes=400 * 10**9)
    w.record_write(1 << 30, sequential=True, overwrite=True)
    y2 = endurance_years(w, device_bytes=400 * 10**9)
    assert y2 == pytest.approx(y1 / 2)
    assert endurance_years(WearModel(), device_bytes=1) == float("inf")


def test_format_table_alignment_and_validation():
    out = format_table(["a", "bb"], [[1, 2.5], [30000, 0.001]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert "30,000" in out
    with pytest.raises(ValueError):
        format_table(["a"], [[1, 2]])


def test_format_series():
    out = format_series({"m1": [1, 2], "m2": [3, 4]}, x=[10, 20], x_name="clients")
    assert "clients" in out and "m1" in out and "m2" in out
    assert out.splitlines()[-1].split("|")[0].strip() == "20"


def test_percentiles_batch_matches_singles():
    r = LatencyRecorder("x")
    for i in range(1, 101):
        r.record(float(i), i / 1000.0)
    batch = r.percentiles((50.0, 95.0, 99.0))
    assert batch == [r.percentile(50), r.percentile(95), r.percentile(99)]
    assert batch[0] <= batch[1] <= batch[2]
    assert r.percentile(0) == 0.001 and r.percentile(100) == 0.1


def test_percentiles_empty_and_validation():
    r = LatencyRecorder("x")
    assert r.percentiles((50.0, 99.0)) == [0.0, 0.0]
    r.record(1.0, 0.5)
    with pytest.raises(ValueError):
        r.percentiles((101.0,))
    with pytest.raises(ValueError):
        r.percentiles((-1.0,))


def test_latency_summary_digest():
    r = LatencyRecorder("x")
    assert r.summary()["count"] == 0.0
    for lat in (0.001, 0.002, 0.003, 0.010):
        r.record(1.0, lat)
    s = r.summary()
    assert s["count"] == 4.0
    assert s["mean"] == pytest.approx(0.004)
    assert s["p50"] <= s["p95"] <= s["p99"]
    assert s["p99"] == 0.010
