"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures at a scale
that finishes in minutes on a laptop, prints the rows/series the paper
reports, and archives them under ``benchmarks/results/``.  Setting
``REPRO_FULL=1`` switches to the paper's full grid (much slower).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL = os.environ.get("REPRO_FULL", "") == "1"


def scale(quick: int, full: int) -> int:
    return full if FULL else quick


@pytest.fixture
def archive():
    """Write a rendered artifact to benchmarks/results/<name>.txt and echo it."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _save
