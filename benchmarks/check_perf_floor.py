#!/usr/bin/env python
"""Events/sec floor check: fresh bench perf vs the committed baseline.

Wall-clock perf is machine-dependent by design (the ``perf`` section is
excluded from every determinism gate), but a *hard* engine regression —
an accidental O(n^2) in the kernel, a fast path silently disabled — shows
up as a collapse in ``events_per_sec`` that no host difference explains.
This check compares the rows present in both a fresh run and the
committed ``BENCH_scenarios.json`` and fails if any fresh row's
events/sec drops below ``(1 - tolerance)`` of the committed value.  The
default tolerance is deliberately generous (50%): CI runners differ from
the snapshot host, and rows may run concurrently under ``--jobs``; the
check is a tripwire for hard regressions, not a benchmark.

Usage:
    python benchmarks/check_perf_floor.py \
        --baseline BENCH_scenarios.json --fresh /tmp/BENCH_smoke.json \
        [--tolerance 0.5] [--rows steady hot_stripe]
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed bench JSON (the floor)")
    ap.add_argument("--fresh", required=True,
                    help="bench JSON from this run")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="allowed fractional drop (default 0.5 = 50%%)")
    ap.add_argument("--rows", nargs="*", default=None, metavar="NAME",
                    help="restrict the check to these perf rows "
                         "(default: every row present in both files)")
    ap.add_argument("--metric", choices=["events_per_sec",
                                         "events_per_cpu_sec"],
                    default="events_per_sec",
                    help="throughput metric to floor-check; the CPU-time "
                         "variant is steadier on shared/1-core runners "
                         "where wall time includes preemption "
                         "(default: %(default)s)")
    args = ap.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        print(f"tolerance must be in [0, 1), got {args.tolerance}",
              file=sys.stderr)
        return 2

    try:
        baseline = json.load(open(args.baseline)).get("perf", {})
        fresh = json.load(open(args.fresh)).get("perf", {})
    except (OSError, ValueError) as exc:
        print(f"cannot load perf sections: {exc}", file=sys.stderr)
        return 2

    shared = sorted(set(baseline) & set(fresh))
    if args.rows is not None:
        missing = [r for r in args.rows if r not in shared]
        if missing:
            print(f"requested rows missing from one side: {missing} "
                  f"(shared: {shared})", file=sys.stderr)
            return 2
        shared = args.rows
    if not shared:
        print("no perf rows shared between baseline and fresh run",
              file=sys.stderr)
        return 2

    metric = args.metric
    unit = "ev/s" if metric == "events_per_sec" else "ev/cpu-s"
    lacking = [r for r in shared
               if metric not in baseline[r] or metric not in fresh[r]]
    if lacking:
        # A baseline written before the metric existed cannot provide a
        # floor for it; failing loudly beats silently checking nothing.
        print(f"metric {metric!r} missing from rows {lacking}; regenerate "
              f"the baseline (repro bench --json) or use --metric "
              f"events_per_sec", file=sys.stderr)
        return 2

    failures = []
    for row in shared:
        floor = baseline[row][metric] * (1.0 - args.tolerance)
        got = fresh[row][metric]
        status = "ok" if got >= floor else "REGRESSED"
        print(f"{row:24s} {got:>12,.0f} {unit} (floor {floor:>12,.0f}, "
              f"committed {baseline[row][metric]:>12,.0f}) "
              f"{status}")
        if got < floor:
            failures.append(row)
    if failures:
        print(f"PERF FLOOR FAILED for {failures}: {metric} fell more "
              f"than {args.tolerance:.0%} below the committed baseline",
              file=sys.stderr)
        return 1
    print(f"perf floor ok over {len(shared)} row(s) "
          f"(metric {metric}, tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
