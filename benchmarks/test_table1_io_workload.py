"""Table 1 — storage workload and network traffic, Ten-Cloud RS(6,4).

Shape: TSUE has by far the fewest overwrite (write-penalty) operations and
fewer read/write operations than the in-place family; CoRD has the lowest
network traffic with TSUE close behind; PARIX tops network traffic (it
ships full data to every parity log, twice for cold locations).
"""

from __future__ import annotations

from benchmarks.conftest import scale
from repro.harness.table1 import run_table1


def test_table1_io_workload(benchmark, archive):
    res = benchmark.pedantic(
        run_table1,
        kwargs=dict(n_clients=scale(24, 48), updates_per_client=scale(100, 300)),
        rounds=1,
        iterations=1,
    )
    archive("table1_io_workload", res.render())
    r = res.results
    # TSUE: fewest overwrites, by a lot (paper: 8 % of FO's).
    assert r["tsue"].overwrite_ops == min(x.overwrite_ops for x in r.values())
    assert r["tsue"].overwrite_ops < 0.4 * r["fo"].overwrite_ops
    # TSUE performs fewer device ops than PL (paper: ~20 %).
    assert r["tsue"].rw_ops < 0.7 * r["pl"].rw_ops
    # CoRD minimises network traffic; TSUE is within ~2x of it.
    assert r["cord"].net_bytes == min(x.net_bytes for x in r.values())
    assert r["tsue"].net_bytes < 2.0 * r["cord"].net_bytes
    # PARIX ships the most bytes over the network.
    assert r["parix"].net_bytes == max(x.net_bytes for x in r.values())
