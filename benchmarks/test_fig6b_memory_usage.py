"""Fig. 6b — throughput and memory vs the per-pool log-unit quota.

Shape: quota 2 backpressures the front end badly; from quota >= 4 the
throughput is high and stable while memory grows linearly with the quota —
the basis for the paper's "max 4 units" default (§5.3.2).
"""

from __future__ import annotations

from benchmarks.conftest import FULL, scale
from repro.harness.fig6 import UNIT_QUOTAS, run_fig6b

QUOTAS = UNIT_QUOTAS if FULL else (2, 4, 8, 16)


def test_fig6b_memory_usage(benchmark, archive):
    res = benchmark.pedantic(
        run_fig6b,
        kwargs=dict(
            quotas=QUOTAS,
            n_clients=scale(24, 48),
            updates_per_client=scale(100, 300),
        ),
        rounds=1,
        iterations=1,
    )
    archive("fig6b_memory_usage", res.render())
    by_quota = dict(zip(res.quotas, res.iops))
    peak = max(res.iops)
    # Quota 2 is the back-pressured worst case, well below the plateau.
    assert by_quota[2] == min(res.iops)
    assert by_quota[2] < 0.67 * peak
    # A small quota already reaches the plateau (paper: 4; we allow the
    # knee anywhere at or below 8), and the plateau is stable after it.
    knee = next(q for q in res.quotas if by_quota[q] >= 0.8 * peak)
    assert knee <= 8, f"throughput knee at quota {knee}"
    for q in res.quotas[res.quotas.index(knee) :]:
        assert by_quota[q] >= 0.7 * peak
    # Memory footprint grows with the quota.
    assert res.peak_memory_mb[-1] > res.peak_memory_mb[0]
