"""Table 2 — residency of updated data in memory (TSUE, RS(12,4)).

Shape: append and recycle phases are microsecond-to-millisecond scale while
the buffer phase dominates the end-to-end residency; every layer records a
healthy sample count.  (Absolute totals scale with the log-unit size —
§5.3.5 — and our bench units are smaller than the paper's 16 MB.)
"""

from __future__ import annotations

from benchmarks.conftest import scale
from repro.harness.table2 import run_table2
from repro.metrics.latency import ResidencyTracker


def test_table2_residency(benchmark, archive):
    res = benchmark.pedantic(
        run_table2,
        kwargs=dict(n_clients=scale(24, 48), updates_per_client=scale(100, 300)),
        rounds=1,
        iterations=1,
    )
    archive("table2_residency", res.render())
    for trace, tracker in res.residency.items():
        total_buffer = 0.0
        total_processing = 0.0
        for layer in ResidencyTracker.LAYERS:
            append_us, buffer_us, recycle_us = tracker.mean_us(layer)
            assert tracker.samples(layer) > 0, f"{trace}/{layer} never exercised"
            # Buffer wait exceeds the synchronous append cost everywhere.
            assert buffer_us > append_us
            total_buffer += buffer_us
            total_processing += append_us + recycle_us
        # End-to-end, residency is dominated by buffering, not processing —
        # the Table 2 shape that makes compression feasible (§7).
        assert total_buffer > total_processing
        assert res.totals_us[trace] > 0
