"""Scenario smoke bench — the open-loop workload baseline.

Shape: every registered scenario completes, stays parity-consistent, and
genuinely pipelines (iodepth > 1 observed on the clients).  Bursty arrivals
reach a deeper pipeline than steady ones under the same budget, and the
diurnal ramp — which starts at the trough and spends half of each period
well below peak — takes visibly longer than a flat-out peak-rate stream.

The same numbers back the committed ``BENCH_scenarios.json`` baseline
(regenerate with ``python -m repro bench --json``), giving later scaling
PRs a perf trajectory to diff against.
"""

from __future__ import annotations

from benchmarks.conftest import scale
from repro.workload import run_all_scenarios


def test_bench_scenarios(benchmark, archive):
    results = benchmark.pedantic(
        run_all_scenarios,
        kwargs=dict(
            n_clients=scale(4, 16),
            requests_per_client=scale(200, 1000),
        ),
        rounds=1,
        iterations=1,
    )
    archive("scenarios", "\n".join(r.render() for r in results))
    by_name = {r.name: r for r in results}
    for r in results:
        assert r.consistent, f"{r.name} drained inconsistent"
        assert r.updates > 0 and r.iops > 0
        assert r.peak_inflight > 1, f"{r.name} never overlapped updates"
        assert r.p50_latency <= r.p95_latency <= r.p99_latency
    assert by_name["mixed_rw"].reads > 0
    assert by_name["burst"].peak_inflight >= by_name["steady"].peak_inflight
    # Diurnal arrivals average well below their 8k req/s peak, so the run
    # must take clearly longer than a hypothetical flat peak-rate stream.
    diurnal = by_name["diurnal"]
    requests_per_client = diurnal.updates // diurnal.n_clients
    assert diurnal.horizon > 1.5 * (requests_per_client / 8000.0)
