"""Fig. 7 — the O1..O5 contribution ladder.

Shape (§5.3.3): every step is monotone non-degrading within noise; the log
pool (O3) delivers the largest single jump; the pool-count step (O4)
contributes the least; the DeltaLog (O5) adds a visible (paper: ~30 %)
improvement; and the full ladder lands several times above the baseline.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL, scale
from repro.harness.fig7 import run_fig7

TRACES_M = [("ten", 4), ("ali", 4)] + ([("ten", 2), ("ali", 2), ("ten", 3), ("ali", 3)] if FULL else [])


@pytest.mark.parametrize("trace,m", TRACES_M)
def test_fig7_breakdown(benchmark, archive, trace, m):
    res = benchmark.pedantic(
        run_fig7,
        kwargs=dict(
            trace=trace,
            m=m,
            n_clients=scale(24, 48),
            updates_per_client=scale(100, 300),
        ),
        rounds=1,
        iterations=1,
    )
    archive(f"fig7_breakdown_{trace}_m{m}", res.render())
    by = dict(zip(res.labels, res.iops))
    # Full TSUE beats the baseline by a wide margin.
    assert by["O5"] > 2.0 * by["baseline"]
    # O3 (log pool) is the single largest step of the ladder.
    gains = {lab: res.gain(lab) for lab in res.labels[1:]}
    assert max(gains, key=gains.get) == "O3"
    # O4 (multi-pool) contributes minimally (the paper's observation that
    # one pool per SSD suffices when memory is tight).
    assert gains["O4"] < 1.15
    # O1 (data-log locality) contributes more than O2 (parity-log locality).
    assert gains["O1"] > gains["O2"]
    # The DeltaLog helps (within 5 % tolerance it must not hurt).
    assert by["O5"] > 0.95 * by["O4"]
