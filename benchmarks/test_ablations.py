"""Ablations beyond Fig. 7 (DESIGN.md §5)."""

from __future__ import annotations

from benchmarks.conftest import scale
from repro.harness.ablations import (
    run_index_ablation,
    run_replica_ablation,
    run_unit_size_ablation,
)


def test_ablation_unit_size(benchmark, archive):
    """§5.3.5: buffer residency scales with the log-unit size."""
    res = benchmark.pedantic(
        run_unit_size_ablation,
        kwargs=dict(n_clients=scale(24, 48), updates=scale(100, 300)),
        rounds=1,
        iterations=1,
    )
    archive("ablation_unit_size", res.render())
    # Larger units hold entries longer before sealing.
    assert res.buffer_us[-1] > res.buffer_us[0]


def test_ablation_replicas(benchmark, archive):
    """Each extra DataLog copy costs ack latency but little throughput."""
    res = benchmark.pedantic(
        run_replica_ablation,
        kwargs=dict(n_clients=scale(24, 48), updates=scale(100, 300)),
        rounds=1,
        iterations=1,
    )
    archive("ablation_replicas", res.render())
    assert res.latency_us[0] < res.latency_us[1] < res.latency_us[2]
    # Even 3 copies keep TSUE within 2x of its replica-free latency.
    assert res.latency_us[2] < 2.0 * res.latency_us[0]


def test_ablation_index(benchmark, archive):
    """Index merging cuts device R/W operations at fixed pool structure."""
    res = benchmark.pedantic(
        run_index_ablation,
        kwargs=dict(n_clients=scale(24, 48), updates=scale(100, 300)),
        rounds=1,
        iterations=1,
    )
    archive("ablation_index", res.render())
    off, on = res.rw_ops
    assert on < off, "merging must reduce device operations"
    assert res.iops[1] >= 0.9 * res.iops[0]
