"""Fig. 8a — HDD update throughput over the MSR volumes, RS(6,4).

Shape: TSUE highest on every volume by a wide margin (its critical path is
sequential, the others seek); FO the worst (all-random, all-synchronous);
PARIX the best of the baselines (it skips the read-before-write seek).
"""

from __future__ import annotations

from benchmarks.conftest import FULL, scale
from repro.harness.fig8 import MSR_VOLS, run_fig8a

VOLS = MSR_VOLS if FULL else ("src10", "proj2", "hm0", "mds0")


def test_fig8a_hdd_throughput(benchmark, archive):
    res = benchmark.pedantic(
        run_fig8a,
        kwargs=dict(
            volumes=VOLS,
            n_clients=scale(16, 32),
            updates_per_client=scale(160, 320),
        ),
        rounds=1,
        iterations=1,
    )
    archive("fig8a_hdd_throughput", res.render())
    for i, vol in enumerate(res.volumes):
        per_vol = {m: res.iops[m][i] for m in res.iops}
        assert max(per_vol, key=per_vol.get) == "tsue", f"TSUE must win on {vol}"
        assert min(per_vol, key=per_vol.get) == "fo", f"FO must be slowest on {vol}"
        assert per_vol["tsue"] > 2 * per_vol["parix"]
        # PARIX is at (or within 15 % of) the top of the baselines.
        baselines = {m: v for m, v in per_vol.items() if m != "tsue"}
        assert per_vol["parix"] > 0.85 * max(baselines.values())
