"""Fig. 8b — HDD recovery bandwidth after an update warm-up.

Shape: deferred-log methods (PL/PLR/PARIX) pay a log-drain stall before
reconstruction can start, cutting their effective recovery bandwidth; TSUE
recycles in real time and lands close to FO (no logs at all).  Every
recovery is verified byte-exact inside the harness.
"""

from __future__ import annotations

from benchmarks.conftest import FULL, scale
from repro.harness.fig8 import run_fig8b

VOLS = ("src10", "hm0", "usr0") if FULL else ("src10", "hm0")


def test_fig8b_recovery(benchmark, archive):
    res = benchmark.pedantic(
        run_fig8b,
        kwargs=dict(
            volumes=VOLS,
            n_clients=8,
            updates_per_client=scale(240, 480),
        ),
        rounds=1,
        iterations=1,
    )
    archive("fig8b_recovery", res.render())
    for i, vol in enumerate(res.volumes):
        bw = {m: res.bandwidth_mbps[m][i] for m in res.bandwidth_mbps}
        # FO (no logs at all) sets the ceiling.
        assert max(bw, key=bw.get) == "fo"
        # TSUE is the best of the logging methods — its real-time recycle
        # leaves a small bounded residue, while deferred logs accumulate.
        # (At bench scale the rebuild is ~50 ms of work, so even TSUE's
        # ~0.2 s residue drain dents the ratio to FO; at the paper's
        # node-scale rebuild the residue vanishes and TSUE ~ FO.  See
        # EXPERIMENTS.md.)
        for lagger in ("pl", "plr", "parix"):
            assert bw["tsue"] > bw[lagger], f"{lagger} should trail TSUE on {vol}: {bw}"
        # The loss mechanism is the pre-recovery drain, and TSUE's residue
        # is several times smaller than the deferred logs'.
        tsue_drain = res.details["tsue"][i].drain_seconds
        for m in ("pl", "parix"):
            assert res.details[m][i].drain_seconds > 1.4 * tsue_drain
