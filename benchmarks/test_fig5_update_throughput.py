"""Fig. 5 — SSD update throughput across RS codes, traces and client counts.

Regenerates all twelve panels.  Validation is on *shape*: TSUE wins every
panel, and its margin over the in-place/deferred baselines grows with m.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL, scale
from repro.harness.fig5 import CODES, METHODS, run_panel

# Quick mode: one client count for every panel plus a sweep on two panels.
PANEL_CLIENTS = (8, 24, 64) if FULL else (24,)
SWEEP_CLIENTS = (8, 24, 64) if FULL else (8, 24)
UPDATES = scale(60, 150)


@pytest.mark.parametrize("trace", ["ali", "ten"])
@pytest.mark.parametrize("k,m", list(CODES))
def test_fig5_panel(benchmark, archive, k, m, trace):
    panel = benchmark.pedantic(
        run_panel,
        kwargs=dict(k=k, m=m, trace=trace, clients=PANEL_CLIENTS, updates_per_client=UPDATES),
        rounds=1,
        iterations=1,
    )
    archive(f"fig5_rs{k}_{m}_{trace}", panel.render())
    # Shape: TSUE wins at the largest client count of every panel.
    assert panel.winner_at(PANEL_CLIENTS[-1]) == "tsue"
    # Shape: PL is the best non-TSUE method (the paper's consistent #2).
    last = {meth: panel.iops[meth][-1] for meth in METHODS}
    non_tsue = {m_: v for m_, v in last.items() if m_ != "tsue"}
    assert max(non_tsue, key=non_tsue.get) == "pl"


def test_fig5_margin_grows_with_m(benchmark, archive):
    """TSUE/PLR and TSUE/FO ratios must widen from m=2 to m=4 (§5.2)."""

    def run_two():
        p2 = run_panel(6, 2, "ten", clients=SWEEP_CLIENTS, updates_per_client=UPDATES)
        p4 = run_panel(6, 4, "ten", clients=SWEEP_CLIENTS, updates_per_client=UPDATES)
        return p2, p4

    p2, p4 = benchmark.pedantic(run_two, rounds=1, iterations=1)
    archive("fig5_sweep_rs6_2_ten", p2.render())
    archive("fig5_sweep_rs6_4_ten", p4.render())
    i = len(SWEEP_CLIENTS) - 1
    for rival in ("fo", "plr"):
        r2 = p2.iops["tsue"][i] / p2.iops[rival][i]
        r4 = p4.iops["tsue"][i] / p4.iops[rival][i]
        assert r4 > r2, f"TSUE/{rival} margin should grow with m: {r2:.2f} -> {r4:.2f}"
    # Throughput grows with client count for TSUE.
    assert p4.iops["tsue"][-1] > p4.iops["tsue"][0]
