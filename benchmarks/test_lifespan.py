"""SSD lifespan (§5.3.4): erase-op accounting per update method.

Shape: TSUE erases flash the least, with a multiple-x advantage over the
in-place methods (paper: SSDs under TSUE endure 2.5x-13x longer).
"""

from __future__ import annotations

from benchmarks.conftest import scale
from repro.harness.lifespan import run_lifespan


def test_lifespan(benchmark, archive):
    res = benchmark.pedantic(
        run_lifespan,
        kwargs=dict(n_clients=scale(24, 48), updates_per_client=scale(100, 300)),
        rounds=1,
        iterations=1,
    )
    archive("lifespan", res.render())
    rel = res.relative_lifespan()
    assert max(rel, key=rel.get) == "tsue"
    adv = res.tsue_advantage()
    # Directional at bench scale: TSUE outlasts every method, and by a
    # multiple over the reserved-space logger.  (The paper's 2.5x-13x spread
    # rides on a 12x op-count merge factor that hour-long traces provide;
    # our short traces merge ~4x.  See EXPERIMENTS.md.)
    for rival in ("fo", "pl", "plr", "parix", "cord"):
        assert adv[rival] > 1.05, f"TSUE lifespan advantage over {rival}: {adv[rival]:.2f}"
    assert adv["plr"] > 2.0  # reserved-space scatter wears flash hardest
