"""Fig. 6a — the back-end recycle's impact on update throughput over time.

Shape: with the default (>= 4) unit quota, throughput over the run is high
and stable — the recycle runs concurrently without starving the front end.
"""

from __future__ import annotations

from benchmarks.conftest import scale
from repro.harness.fig6 import run_fig6a


def test_fig6a_recycle_overhead(benchmark, archive):
    res = benchmark.pedantic(
        run_fig6a,
        kwargs=dict(
            n_clients=scale(24, 48),
            updates_per_client=scale(150, 400),
        ),
        rounds=1,
        iterations=1,
    )
    archive("fig6a_recycle_overhead", res.render())
    assert res.mean_iops > 0
    # Steady-state variability stays bounded (no recycle-induced collapse).
    assert res.steady_cv < 0.5, f"throughput unstable: cv={res.steady_cv:.2f}"
    # No bucket in the steady half drops below half the steady mean.
    half = res.iops[len(res.iops) // 2 :]
    steady_mean = sum(half) / len(half)
    assert min(half) > 0.5 * steady_mean
