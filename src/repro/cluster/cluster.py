"""Cluster configuration, block placement and node wiring.

``Cluster`` owns the simulator-level objects of one experiment: the fabric,
one MDS, ``n_osds`` OSDs (each with one device), and any number of clients.
Placement is the deterministic rotated-ring layout every node can compute
locally (clients cache it after opening a file, mirroring §4's MDS-tracked
locations without paying an RPC per update).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.dataplane import as_payload
from repro.devices import HDD, SSD, DeviceProfile, StorageDevice
from repro.ec import RSCodec, StripeMap
from repro.metrics.counters import NetCounters, OpCounters, WearModel
from repro.net import Fabric, NET_25GBE, NetworkProfile
from repro.sim import RngStreams, Simulator


def placement(n_osds: int, width: int, inode: int, stripe: int) -> List[int]:
    """OSD indices hosting the ``width = k+m`` blocks of one stripe.

    A hash-rotated ring: distinct OSDs per stripe, rotating with the stripe
    number so parity load spreads across the cluster.
    """
    if width > n_osds:
        raise ValueError(f"stripe width {width} exceeds cluster size {n_osds}")
    start = zlib.crc32(f"{inode}:{stripe}".encode()) % n_osds
    return [(start + i) % n_osds for i in range(width)]


@dataclass
class ClusterConfig:
    """Geometry + hardware of one experiment run."""

    n_osds: int = 16
    k: int = 6
    m: int = 2
    block_size: int = 128 * 1024
    construction: str = "vandermonde"
    device_kind: str = "ssd"  # "ssd" | "hdd"
    device_profile: Optional[DeviceProfile] = None
    net_profile: NetworkProfile = NET_25GBE
    # Client-side per-request cost: POSIX layer, placement lookup, marker
    # handling, context switches (the CLIENT component of §4).  Charged once
    # per update/read call before any message leaves the node.
    client_overhead_s: float = 120e-6
    seed: int = 0
    # Projected-completion data plane (one absolute-time sleep per device
    # I/O / fabric transfer instead of per-hop events).  Bit-identical
    # virtual times on fault-free runs; must stay False when OSDs can crash
    # or stop mid-run (interrupt semantics need the event path).
    fast_dataplane: bool = False
    # Ghost payload plane (see repro.dataplane): payloads carry sizes and
    # provenance only, never bytes.  Composes with fast_dataplane; must
    # stay False for fault/rebuild/scrub scenarios, which need real bytes
    # (decode refuses with GhostMaterializationError).
    ghost_dataplane: bool = False

    def __post_init__(self) -> None:
        if self.k + self.m > self.n_osds:
            raise ValueError(
                f"k+m={self.k + self.m} blocks cannot be spread over "
                f"{self.n_osds} OSDs"
            )
        if self.device_kind not in ("ssd", "hdd"):
            raise ValueError(f"unknown device kind {self.device_kind!r}")


class Cluster:
    """All simulator objects of one experiment, wired together."""

    def __init__(
        self,
        sim: Simulator,
        config: ClusterConfig,
        strategy_factory: Callable[["OSD"], "UpdateStrategy"],
    ):
        # Imports deferred: fs and update import Cluster types for hints.
        from repro.fs.client import Client
        from repro.fs.mds import MDS
        from repro.fs.osd import OSD

        self.sim = sim
        self.config = config
        self._strategy_factory = strategy_factory
        self.rng = RngStreams(config.seed)
        self.fabric = Fabric(sim, config.net_profile)
        self.fabric.fast_plane = config.fast_dataplane
        self.codec = RSCodec(config.k, config.m, config.construction)
        self.stripe_map = StripeMap(config.k, config.m, config.block_size)

        self.mds = MDS(sim, self.fabric, "mds", cluster=self)
        self.osds: List[OSD] = []
        for i in range(config.n_osds):
            device = self._make_device(f"osd{i}.dev")
            osd = OSD(
                sim,
                self.fabric,
                f"osd{i}",
                cluster=self,
                device=device,
                strategy_factory=strategy_factory,
            )
            self.osds.append(osd)
        self.clients: List[Client] = []
        self._hosts: Dict[str, "RpcHost"] = {"mds": self.mds}
        for osd in self.osds:
            self._hosts[osd.name] = osd
        self._connect_all()
        # Failure bookkeeping: the cluster-wide view of unavailable OSDs
        # (stands in for the MDS's membership map the clients would poll)
        # plus the outage windows [name, t_down, t_up] behind the recovery
        # metrics of failure scenarios.
        self.down_osds: Set[str] = set()
        self.down_windows: List[List] = []
        # Live placement membership.  ``osds`` is every OSD ever provisioned
        # (decommissioned nodes stay there as stopped hosts so drains and
        # counter aggregation remain total); ``ring`` is the ordered subset
        # placement maps onto.  Membership changes go through commit_ring()
        # (the rebalance plane), never by mutating ``ring`` in place.
        self.ring: List[str] = [osd.name for osd in self.osds]
        self._ring_pos: Dict[str, int] = {n: i for i, n in enumerate(self.ring)}
        # Elastic-migration fencing: stripes mid-migration (clients hold new
        # ops until the set clears) and a refcount of in-flight foreground
        # ops per stripe (the rebalancer quiesces on it before copying).
        # Both are plain dict/set state touched by non-yielding helpers, so
        # fault-free runs see identical virtual time.
        self.migrating_stripes: Set[Tuple[int, int]] = set()
        self._active_stripe_ops: Dict[Tuple[int, int], int] = {}
        # Per-stripe placement overrides, installed by the QoS rebalance as
        # each stripe's copy lands (fence-copy-flip) and cleared wholesale
        # when commit_ring() installs the new membership.  Empty outside a
        # migration, so the healthy placement path pays one falsy check.
        self.placement_overrides: Dict[Tuple[int, int], List[str]] = {}
        # Latched by the QoS rebalance the first time drains run under live
        # foreground traffic: from then on, strategies whose drain path
        # must tolerate appends racing a recycle (PLR's reserved regions)
        # switch to their drain-safe variant.  Never set on fault-free or
        # classic-rebalance runs, so those keep the historical timing.
        self.live_drain: bool = False

    # ------------------------------------------------------------------
    def _make_device(self, name: str) -> StorageDevice:
        if self.config.device_kind == "ssd":
            dev = SSD(self.sim, profile=self.config.device_profile, name=name)
        else:
            dev = HDD(self.sim, profile=self.config.device_profile, name=name)
        dev.fast_plane = self.config.fast_dataplane
        return dev

    def _connect_all(self) -> None:
        for host in self._hosts.values():
            host.connect(self._hosts)

    def add_client(self, name: str) -> "Client":
        from repro.fs.client import Client

        client = Client(self.sim, self.fabric, name, cluster=self)
        self.clients.append(client)
        self._hosts[name] = client
        self._connect_all()
        if any(h.running for h in self.osds):
            client.start()
        return client

    # ------------------------------------------------------------------
    def start(self) -> None:
        for host in self._hosts.values():
            host.start()
        for osd in self.osds:
            osd.strategy.start_background()

    def stop(self) -> None:
        for osd in self.osds:
            osd.strategy.stop_background()
        for host in self._hosts.values():
            host.stop()

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def placement(self, inode: int, stripe: int) -> List[str]:
        """OSD names for the k+m blocks of a stripe, in block order.

        Maps onto the *current ring* — elastic membership changes move
        stripes by changing the ring (via :meth:`commit_ring`), and every
        placement consumer follows automatically.  A QoS rebalance flips
        stripes one at a time via ``placement_overrides`` before the final
        ring commit.
        """
        if self.placement_overrides:
            override = self.placement_overrides.get((inode, stripe))
            if override is not None:
                return override
        ring = self.ring
        idx = placement(len(ring), self.config.k + self.config.m, inode, stripe)
        return [ring[i] for i in idx]

    def placement_on(self, ring: List[str], inode: int, stripe: int) -> List[str]:
        """Placement under a hypothetical ring (rebalance planning)."""
        idx = placement(len(ring), self.config.k + self.config.m, inode, stripe)
        return [ring[i] for i in idx]

    def osd_of_block(self, inode: int, stripe: int, block_index: int) -> str:
        return self.placement(inode, stripe)[block_index]

    def osd_by_name(self, name: str) -> "OSD":
        host = self._hosts[name]
        return host  # type: ignore[return-value]

    def replica_of(self, osd_name: str) -> str:
        """Ring neighbour hosting this OSD's DataLog replica (Fig. 4)."""
        ring = self.ring
        return ring[(self._ring_pos[osd_name] + 1) % len(ring)]

    def ring_neighbor(self, osd_name: str, r: int) -> str:
        """The ``r``-th ring successor of an OSD (replica fan-out targets)."""
        ring = self.ring
        return ring[(self._ring_pos[osd_name] + r) % len(ring)]

    def commit_ring(self, new_ring: List[str]) -> None:
        """Atomically install a new placement membership.

        Only the rebalance plane calls this, after migrated blocks are in
        place on their new homes; the flip itself is instantaneous (no
        yields), so no foreground op can observe a half-committed ring.
        """
        if len(set(new_ring)) != len(new_ring):
            raise ValueError("ring members must be unique")
        if len(new_ring) < self.config.k + self.config.m:
            raise ValueError(
                f"ring of {len(new_ring)} cannot hold stripes of width "
                f"{self.config.k + self.config.m}"
            )
        for name in new_ring:
            if name not in self._hosts:
                raise ValueError(f"unknown ring member {name!r}")
        self.ring = list(new_ring)
        self._ring_pos = {n: i for i, n in enumerate(self.ring)}
        # Any per-stripe overrides were stepping stones to exactly this
        # membership; the committed ring now answers for every stripe.
        self.placement_overrides.clear()

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def add_osd(self) -> "OSD":
        """Provision one fresh OSD (host + device + strategy) outside the ring.

        The node is wired, started (if the cluster is live) and heartbeat-
        seeded, but carries no placement until a rebalance commits it into
        the ring — joining is a two-step protocol so the data copy happens
        while the old placement still serves traffic.  Non-yielding.
        """
        from repro.fs.osd import OSD

        name = f"osd{len(self.osds)}"
        if name in self._hosts:
            raise ValueError(f"host name {name!r} already taken")
        device = self._make_device(f"{name}.dev")
        osd = OSD(
            self.sim,
            self.fabric,
            name,
            cluster=self,
            device=device,
            strategy_factory=self._strategy_factory,
        )
        live = any(h.running for h in self.osds)
        self.osds.append(osd)
        self._hosts[name] = osd
        self._connect_all()
        if live:
            osd.start()
            osd.strategy.start_background()
        # Seed liveness so a running failure detector never flags the
        # joiner in the gap before its first heartbeat lands.
        self.mds.last_heartbeat[name] = self.sim.now
        return osd

    def decommission_osd(self, name: str, rebalance_mbps: float = 0.0):
        """Drain one OSD out of the ring (generator; run in a process).

        Delegates to the rebalance plane: migrate the leaver's blocks to
        the post-leave placement under the consistency gates, commit the
        shrunken ring, then stop the node.  Returns the RebalanceResult.
        ``rebalance_mbps > 0`` selects the per-stripe QoS protocol with a
        token-bucket copy throttle (see ``repro.recovery.rebalance``).
        """
        from repro.recovery.rebalance import rebalance_leave

        result = yield from rebalance_leave(self, name, rebalance_mbps=rebalance_mbps)
        return result

    # ------------------------------------------------------------------
    # migration fencing (non-yielding: called on the foreground op path)
    # ------------------------------------------------------------------
    def note_ops_begin(self, inode: int, stripes) -> None:
        """Register in-flight foreground ops on each (inode, stripe)."""
        ops = self._active_stripe_ops
        for s in stripes:
            key = (inode, s)
            ops[key] = ops.get(key, 0) + 1

    def note_ops_end(self, inode: int, stripes) -> None:
        ops = self._active_stripe_ops
        for s in stripes:
            key = (inode, s)
            n = ops.get(key, 0) - 1
            if n <= 0:
                ops.pop(key, None)
            else:
                ops[key] = n

    def stripes_quiesced(self, keys) -> bool:
        """True iff no foreground op is in flight on any given stripe key."""
        ops = self._active_stripe_ops
        if not ops:
            return True
        return not any(k in ops for k in keys)

    # ------------------------------------------------------------------
    # failure bookkeeping
    # ------------------------------------------------------------------
    def mark_down(self, name: str) -> None:
        """Record an OSD as unavailable (clients fence/degrade around it)."""
        if name not in self.down_osds:
            self.down_osds.add(name)
            self.down_windows.append([name, self.sim.now, None])

    def mark_up(self, name: str) -> None:
        """Clear an OSD's down mark and close its outage window."""
        self.down_osds.discard(name)
        for window in reversed(self.down_windows):
            if window[0] == name and window[2] is None:
                window[2] = self.sim.now
                break

    # ------------------------------------------------------------------
    # workload pre-load
    # ------------------------------------------------------------------
    def register_sparse_file(self, inode: int, size: int) -> None:
        """Register a zero-filled file with no block materialisation.

        RS codes are linear, so all-zero data blocks encode to all-zero
        parity: a sparse file is trivially parity-consistent and blocks are
        materialised lazily on first touch.  This lets experiments use
        realistically large working sets (tens of MB per client) with
        memory bounded by the bytes actually updated.
        """
        cfg = self.config
        span = cfg.k * cfg.block_size
        if size <= 0 or size % span:
            raise ValueError(f"file size must be a positive multiple of {span}")
        self.mds.register_file(inode, size)

    def instant_load_file(self, inode: int, data: np.ndarray) -> None:
        """Install a file's blocks and parity with no simulated I/O cost.

        ``data`` must be a whole number of stripes; experiments pre-fill the
        working set this way so measurement windows contain only updates.
        """
        data = as_payload(data)
        cfg = self.config
        span = cfg.k * cfg.block_size
        if data.size == 0 or data.size % span:
            raise ValueError(f"file size must be a positive multiple of {span}")
        n_stripes = data.size // span
        for s in range(n_stripes):
            chunk = data[s * span : (s + 1) * span]
            blocks = [
                chunk[j * cfg.block_size : (j + 1) * cfg.block_size]
                for j in range(cfg.k)
            ]
            parity = self.codec.encode(blocks)
            names = self.placement(inode, s)
            for j, blk in enumerate(blocks):
                self.osd_by_name(names[j]).store.install((inode, s, j), blk)
            for p, blk in enumerate(parity):
                self.osd_by_name(names[cfg.k + p]).store.install(
                    (inode, s, cfg.k + p), blk
                )
        self.mds.register_file(inode, data.size)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def total_ops(self) -> OpCounters:
        return OpCounters.aggregate(o.device.counters for o in self.osds)

    def total_wear(self) -> WearModel:
        out = WearModel()
        for o in self.osds:
            out = out.merge(o.device.wear)
        return out

    def total_net(self) -> NetCounters:
        return self.fabric.counters

    # ------------------------------------------------------------------
    # consistency checking (tests / recovery)
    # ------------------------------------------------------------------
    def stripe_consistent(self, inode: int, stripe: int) -> bool:
        """True iff stored parity equals re-encoded stored data.

        Ghost plane: with no bytes to re-encode, the check degrades to the
        coverage invariant every strategy's parity path maintains — each
        parity block's written-interval set equals the union of the data
        blocks' written intervals (a data write that drained must have
        patched every parity block over exactly the same extent).
        """
        cfg = self.config
        names = self.placement(inode, stripe)
        if cfg.ghost_dataplane:
            from repro.logstruct.intervals import IntervalSet

            union = IntervalSet()
            for j in range(cfg.k):
                store = self.osd_by_name(names[j]).store
                for a, b in store.covered((inode, stripe, j)).intervals():
                    union.add(a, b)
            expect_ivs = union.intervals()
            for p in range(cfg.m):
                store = self.osd_by_name(names[cfg.k + p]).store
                got = store.covered((inode, stripe, cfg.k + p)).intervals()
                if got != expect_ivs:
                    return False
            return True
        blocks = []
        for j in range(cfg.k):
            blk = self.osd_by_name(names[j]).store.peek((inode, stripe, j))
            if blk is None:
                blk = np.zeros(cfg.block_size, dtype=np.uint8)
            blocks.append(blk)
        expect = self.codec.encode(blocks)
        for p in range(cfg.m):
            got = self.osd_by_name(names[cfg.k + p]).store.peek(
                (inode, stripe, cfg.k + p)
            )
            if got is None:
                got = np.zeros(cfg.block_size, dtype=np.uint8)
            if not np.array_equal(got, expect[p]):
                return False
        return True
