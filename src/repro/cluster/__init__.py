"""Cluster assembly: nodes, placement, and the experiment-facing facade."""

from repro.cluster.cluster import Cluster, ClusterConfig, placement

__all__ = ["Cluster", "ClusterConfig", "placement"]
