"""HDD device model."""

from __future__ import annotations

from typing import Optional

from repro.devices.base import StorageDevice
from repro.devices.profiles import HDD_2TB_7200, DeviceProfile
from repro.sim.core import Simulator


class HDD(StorageDevice):
    """A rotating disk: single actuator, seek-dominated random access.

    Defaults to the 2 TB 7.2k profile of the paper's HDD testbed.  Flash
    wear accounting is disabled; ``counters`` still track overwrite volume
    for Table-1-style comparisons.
    """

    def __init__(
        self,
        sim: Simulator,
        profile: Optional[DeviceProfile] = None,
        name: str = "hdd",
    ):
        profile = profile or HDD_2TB_7200
        if profile.is_flash:
            raise ValueError(f"profile {profile.name!r} is a flash profile")
        super().__init__(sim, profile, name=name)
