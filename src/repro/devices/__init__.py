"""Calibrated storage device models running on virtual time.

The entire evaluation of the paper rests on one physical fact: small random
I/O is several times more expensive than sequential I/O, on both SSDs
(flash translation + per-command overhead) and HDDs (seek + rotation).  The
device models here price every simulated I/O through that lens and feed the
wear model that backs the lifespan results.

* :class:`~repro.devices.base.StorageDevice` — service-time math, channel
  queueing, counter/wear hookup;
* :class:`~repro.devices.ssd.SSD` and :class:`~repro.devices.hdd.HDD` —
  concrete profiles;
* :mod:`repro.devices.profiles` — the calibration constants (documented in
  DESIGN.md §6).
"""

from repro.devices.base import IoRequest, StorageDevice
from repro.devices.hdd import HDD
from repro.devices.profiles import DeviceProfile, HDD_2TB_7200, SSD_DATACENTER_400GB
from repro.devices.ssd import SSD

__all__ = [
    "DeviceProfile",
    "HDD",
    "HDD_2TB_7200",
    "IoRequest",
    "SSD",
    "SSD_DATACENTER_400GB",
    "StorageDevice",
]
