"""Device calibration constants.

Values sit inside published spec envelopes for the hardware classes the
paper's testbeds used (DESIGN.md §6).  Only the *ratios* between random and
sequential service matter for reproducing the paper's comparisons; absolute
values set the overall scale of the reported IOPS.
"""

from __future__ import annotations

from dataclasses import dataclass

MB = 1 << 20


@dataclass(frozen=True)
class DeviceProfile:
    """Latency/bandwidth/parallelism envelope of a storage device."""

    name: str
    capacity_bytes: int
    # fixed per-command overhead (seconds) by (op, pattern)
    seq_read_overhead: float
    seq_write_overhead: float
    rand_read_overhead: float
    rand_write_overhead: float
    # streaming bandwidth (bytes/second) by (op, pattern)
    seq_read_bw: float
    seq_write_bw: float
    rand_read_bw: float
    rand_write_bw: float
    # number of internal channels serving commands concurrently
    channels: int
    # flash geometry (ignored by HDD wear accounting)
    page_size: int = 4096
    erase_block: int = 256 * 1024
    is_flash: bool = True


# A 400 GB datacenter SATA-class SSD (Chameleon nodes).
# 4 KiB QD1: random read ~ 85 us + 8 us transfer ~ 93 us; random write
# ~ 105 us + 12 us ~ 117 us.  Sequential large I/O streams at 450/350 MB/s
# with ~ 25 us per-command overhead.  4 effective channels give the
# queue-depth scaling of SATA-class devices (sustained random 4 KiB ceiling
# ~ 40 kIOPS/device).
SSD_DATACENTER_400GB = DeviceProfile(
    name="ssd-400g",
    capacity_bytes=400 * 10**9,
    seq_read_overhead=25e-6,
    seq_write_overhead=30e-6,
    rand_read_overhead=85e-6,
    rand_write_overhead=105e-6,
    seq_read_bw=450 * MB,
    seq_write_bw=350 * MB,
    rand_read_bw=380 * MB,
    rand_write_bw=300 * MB,
    channels=4,
    page_size=4096,
    erase_block=256 * 1024,
    is_flash=True,
)

# A 2 TB 7.2k-rpm SATA HDD (the paper's HDD testbed uses three per node).
# Cold random reads cost a full seek + half-rotation (~12.7 ms), but under
# sustained queue depth NCQ reordering shortens the effective seek: we model
# ~6 ms effective random-read service and 2 overlapped commands.  Random
# writes land in the on-drive write-back cache and destage reordered
# (~3.5 ms effective).  Sequential streams at 160 MB/s.
HDD_2TB_7200 = DeviceProfile(
    name="hdd-2t-7200",
    capacity_bytes=2 * 10**12,
    seq_read_overhead=120e-6,
    seq_write_overhead=120e-6,
    rand_read_overhead=6e-3,
    rand_write_overhead=3.5e-3,
    seq_read_bw=160 * MB,
    seq_write_bw=160 * MB,
    rand_read_bw=160 * MB,
    rand_write_bw=160 * MB,
    channels=2,
    is_flash=False,
)
