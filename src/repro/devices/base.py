"""Virtual-time storage device: queueing, service-time math, accounting.

A device is a FIFO multi-channel server (:class:`repro.sim.Resource`).  Each
I/O acquires a channel, holds it for the profile-derived service time, and
updates the operation counters and the wear model.

Sequentiality: callers that know their access pattern (log appends are
sequential; in-place small updates are random) pass ``pattern="seq"`` or
``"rand"``.  With ``pattern=None`` the device auto-classifies by comparing
the I/O's start offset with the end offset of the previous I/O in the same
named *zone* (a zone is one on-device region with its own head position —
e.g. a log file or the block area).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.metrics.counters import OpCounters, WearModel
from repro.devices.profiles import DeviceProfile
from repro.sim.core import At, Simulator
from repro.sim.resources import Resource


@dataclass
class IoRequest:
    """A single device command (used by tests and tracing hooks)."""

    op: str  # "read" | "write"
    zone: str
    offset: int
    nbytes: int
    sequential: bool
    overwrite: bool
    service_time: float


class StorageDevice:
    """Base storage device model; see module docstring."""

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        name: str = "dev",
    ):
        self.sim = sim
        self.profile = profile
        self.name = name
        self.channels = Resource(sim, capacity=profile.channels, name=f"{name}.ch")
        self.counters = OpCounters()
        self.wear = WearModel(
            page_size=profile.page_size, erase_block=profile.erase_block
        )
        # Per-zone head position for auto-classification.
        self._zone_head: Dict[str, int] = {}
        self.trace_hook = None  # optional callable(IoRequest)
        # Projected-completion mode (fault-free runs): per-channel
        # busy-until clocks replace the event-based channel Resource.
        # FIFO multi-server algebra over these floats reproduces the
        # event path's grant/complete instants exactly; keep it off when
        # handlers can be interrupted mid-I/O (crash scenarios), where the
        # event path releases a channel early.
        self.fast_plane = False
        self._busy = [0.0] * profile.channels
        # Fail-slow state: a service-time multiplier applied inside
        # service_time(), so both the event plane and the projected fast
        # plane honor it without further plumbing.  1.0 == healthy; the
        # multiply is guarded so healthy runs execute today's exact float
        # operations (bit-identical baselines).
        self.slow_factor = 1.0

    # ------------------------------------------------------------------
    # fail-slow plane
    # ------------------------------------------------------------------
    def degrade(self, factor: float) -> None:
        """Enter (or deepen) fail-slow: every service time is multiplied
        by ``factor``.  Calling again replaces the previous factor."""
        if factor <= 0:
            raise ValueError(f"degrade factor must be > 0, got {factor!r}")
        self.slow_factor = float(factor)

    def heal(self) -> None:
        """Leave fail-slow; subsequent I/O runs at profile speed."""
        self.slow_factor = 1.0

    # ------------------------------------------------------------------
    # service-time math (pure, unit-testable)
    # ------------------------------------------------------------------
    def service_time(self, op: str, nbytes: int, sequential: bool) -> float:
        """Seconds one channel is busy serving this command."""
        if nbytes < 0:
            raise ValueError("negative I/O size")
        p = self.profile
        if op == "read":
            overhead = p.seq_read_overhead if sequential else p.rand_read_overhead
            bw = p.seq_read_bw if sequential else p.rand_read_bw
        elif op == "write":
            overhead = p.seq_write_overhead if sequential else p.rand_write_overhead
            bw = p.seq_write_bw if sequential else p.rand_write_bw
        else:
            raise ValueError(f"unknown op {op!r}")
        dt = overhead + nbytes / bw
        if self.slow_factor != 1.0:
            dt *= self.slow_factor
        return dt

    def classify(self, zone: str, offset: int, nbytes: int) -> bool:
        """True if this access continues the zone's previous one."""
        head = self._zone_head.get(zone)
        sequential = head is not None and offset == head
        self._zone_head[zone] = offset + nbytes
        return sequential

    # ------------------------------------------------------------------
    # simulated I/O (generators for `yield from` inside processes)
    # ------------------------------------------------------------------
    def read(
        self,
        nbytes: int,
        zone: str = "data",
        offset: int = 0,
        pattern: Optional[str] = None,
    ):
        """Simulate one read; completes after queueing + service time."""
        sequential = self._resolve_pattern(pattern, zone, offset, nbytes)
        dt = self.service_time("read", nbytes, sequential)
        self.counters.record_read(nbytes, sequential)
        if self.trace_hook is not None:
            self._trace("read", zone, offset, nbytes, sequential, False, dt)
        if self.fast_plane:
            yield At(self._project(dt))
            return
        # Uncontended channel fast path: one float sleep, no request event.
        ch = self.channels
        if ch.try_acquire():
            try:
                yield dt
            finally:
                ch.release()
        else:
            yield from ch.use(dt)

    def write(
        self,
        nbytes: int,
        zone: str = "data",
        offset: int = 0,
        pattern: Optional[str] = None,
        overwrite: bool = False,
    ):
        """Simulate one write; ``overwrite=True`` marks an in-place update."""
        sequential = self._resolve_pattern(pattern, zone, offset, nbytes)
        dt = self.service_time("write", nbytes, sequential)
        self.counters.record_write(nbytes, sequential, overwrite)
        if self.profile.is_flash:
            self.wear.record_write(nbytes, sequential, overwrite)
        if self.trace_hook is not None:
            self._trace("write", zone, offset, nbytes, sequential, overwrite, dt)
        if self.fast_plane:
            yield At(self._project(dt))
            return
        ch = self.channels
        if ch.try_acquire():
            try:
                yield dt
            finally:
                ch.release()
        else:
            yield from ch.use(dt)

    def _project(self, dt: float) -> float:
        """FIFO multi-channel service projection (fast plane).

        The earliest-free channel serves this command: start at ``now`` if
        it is already free, else exactly at its projected release — the
        same instants the event-based FIFO queue grants.
        """
        busy = self._busy
        now = self.sim.now
        b = busy[0]
        idx = 0
        for i in range(1, len(busy)):
            v = busy[i]
            if v < b:
                b = v
                idx = i
        start = now if b < now else b
        done = start + dt
        busy[idx] = done
        return done

    # ------------------------------------------------------------------
    def _resolve_pattern(
        self, pattern: Optional[str], zone: str, offset: int, nbytes: int
    ) -> bool:
        if pattern == "seq":
            # Keep the zone head moving so later auto calls stay consistent.
            self._zone_head[zone] = offset + nbytes
            return True
        if pattern == "rand":
            self._zone_head[zone] = offset + nbytes
            return False
        if pattern is None:
            return self.classify(zone, offset, nbytes)
        raise ValueError(f"pattern must be 'seq', 'rand' or None, got {pattern!r}")

    def _trace(
        self,
        op: str,
        zone: str,
        offset: int,
        nbytes: int,
        sequential: bool,
        overwrite: bool,
        dt: float,
    ) -> None:
        if self.trace_hook is not None:
            self.trace_hook(
                IoRequest(op, zone, offset, nbytes, sequential, overwrite, dt)
            )
