"""SSD device model."""

from __future__ import annotations

from typing import Optional

from repro.devices.base import StorageDevice
from repro.devices.profiles import SSD_DATACENTER_400GB, DeviceProfile
from repro.sim.core import Simulator


class SSD(StorageDevice):
    """A flash device: multi-channel, wear-tracked.

    Defaults to the 400 GB datacenter profile of the paper's SSD testbed.
    """

    def __init__(
        self,
        sim: Simulator,
        profile: Optional[DeviceProfile] = None,
        name: str = "ssd",
    ):
        profile = profile or SSD_DATACENTER_400GB
        if not profile.is_flash:
            raise ValueError(f"profile {profile.name!r} is not a flash profile")
        super().__init__(sim, profile, name=name)

    @property
    def erase_ops(self) -> float:
        return self.wear.erase_ops

    @property
    def page_writes(self) -> int:
        return self.wear.page_writes
