"""TSUE: the two-stage update engine (paper §3-§4).

:class:`~repro.tsue.engine.TSUEEngine` hosts, per OSD:

* the synchronous front end — replicated sequential DataLog appends;
* the asynchronous back end — a recycle worker pool draining the
  DataLog -> DeltaLog -> ParityLog pipeline in real time;
* the locality machinery — merged/coalesced segments at every layer and
  Eq. (5) cross-block combining inside the DeltaLog recycler;
* the elasticity/ablation knobs of :class:`~repro.tsue.engine.TSUEConfig`
  (Fig. 6b unit quota sweep, Fig. 7 O1..O5 breakdown).
"""

from repro.tsue.engine import TSUEConfig, TSUEEngine

__all__ = ["TSUEConfig", "TSUEEngine"]
