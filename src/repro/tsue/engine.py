"""The per-OSD TSUE engine: front-end appends and the three-layer recycler.

Data flow (Fig. 2 of the paper):

1. **Front end** (synchronous): ``append_datalog`` puts the update into the
   right DataLog pool (hash of the block identity), persists it with one
   sequential device write, and the hosting strategy forwards a replica to
   the ring neighbour before acking the client.
2. **DataLog recycle** (async): merged segments per block -> one random
   read + one random write on the data block per *merged* segment, deltas
   forwarded to the DeltaLogs of the first two parity OSDs of the stripe.
3. **DeltaLog recycle** (async, primary copy only): pure memory — Eq. (3)
   same-offset folds and Eq. (5) cross-block combining — then per-parity
   combined deltas forwarded to each ParityLog.
4. **ParityLog recycle** (async): merged parity-delta segments -> one
   random read + XOR + one random write on the parity block each.

Ablation knobs (Fig. 7): O1/O2 toggle merged-vs-raw recycling in the
Data/Parity logs, O3 toggles the multi-unit FIFO pool against a single
mutually-exclusive unit, O4 sets pools per device, O5 toggles the DeltaLog
layer entirely (off = parity deltas go straight from the DataLog recycler
to the ParityLogs, one message per parity block per data delta).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.ec.rs import parity_delta as _parity_delta
from repro.logstruct.index import TwoLevelIndex
from repro.logstruct.pool import LogPool
from repro.logstruct.unit import ENTRY_HEADER_BYTES, LogUnit
from repro.metrics.latency import ResidencyTracker
from repro.sim.events import AllOf, Event, Interrupt
from repro.sim.resources import Store

BlockKey = Tuple[int, int, int]

DATA = "data_log"
DELTA = "delta_log"
PARITY = "parity_log"


@dataclass
class TSUEConfig:
    """Engine parameters; defaults follow §4.1/§5.3.2 of the paper."""

    unit_bytes: int = 16 * 1024 * 1024
    min_units: int = 2
    max_units: int = 4
    n_pools: int = 4
    replicas: int = 2            # DataLog copies (1 primary + replicas-1)
    use_delta_log: bool = True   # O5
    use_locality_data: bool = True    # O1
    use_locality_parity: bool = True  # O2
    use_log_pool: bool = True    # O3 (off = one exclusive unit per pool)
    # Total recycle workers across the three layers.  3 is the floor: the
    # per-layer deadlock-freedom invariant (see TSUEEngine.start) needs at
    # least one worker per layer, so fewer than 3 is silently rounded up.
    recycle_workers: int = 4
    flush_interval: float = 0.5  # scan period for the real-time flusher
    flush_age: float = 1.0       # seal active units older than this
    compression: Optional[str] = None  # future-work hook (§7); must be None

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.n_pools < 1:
            raise ValueError("n_pools must be >= 1")
        if self.compression is not None:
            raise NotImplementedError(
                "log compression is the paper's future work and not implemented"
            )

    def pool_kwargs(self, policy: str, keep_raw: bool) -> dict:
        if self.use_log_pool:
            return dict(
                unit_capacity=self.unit_bytes,
                min_units=self.min_units,
                max_units=self.max_units,
                policy=policy,
                keep_raw=keep_raw,
            )
        # O3 off: one unit, appends must wait for its recycle (exclusive).
        return dict(
            unit_capacity=self.unit_bytes,
            min_units=1,
            max_units=1,
            policy=policy,
            keep_raw=keep_raw,
        )


class TSUEEngine:
    """Per-OSD TSUE state machine."""

    def __init__(self, osd, config: Optional[TSUEConfig] = None):
        self.osd = osd
        self.sim = osd.sim
        self.cluster = osd.cluster
        self.config = config or TSUEConfig()
        cfg = self.config
        self.residency = ResidencyTracker()

        self.data_pools = [
            LogPool(name=f"{osd.name}.dlog{i}", **cfg.pool_kwargs("overwrite", not cfg.use_locality_data))
            for i in range(cfg.n_pools)
        ]
        self.delta_pools = [
            LogPool(name=f"{osd.name}.xlog{i}", **cfg.pool_kwargs("xor", False))
            for i in range(cfg.n_pools)
        ]
        self.parity_pools = [
            LogPool(name=f"{osd.name}.plog{i}", **cfg.pool_kwargs("xor", not cfg.use_locality_parity))
            for i in range(cfg.n_pools)
        ]
        self._recycle_queue: Store = Store(self.sim, name=f"{osd.name}.recycleq")
        self._pending: Dict[str, int] = {DATA: 0, DELTA: 0, PARITY: 0}
        self._idle_waiters: Dict[str, List[Event]] = {DATA: [], DELTA: [], PARITY: []}
        self._space_waiters: Dict[int, List[Event]] = {}
        self._procs = []
        self._worker_queues: Dict[str, List[Store]] = {}
        self._running = False
        # Replica log device cursors (replica DataLog/DeltaLog: SSD only).
        self._replica_bytes = 0

        # Device zone per pool, precomputed once: the append path is the
        # hottest front-end code and must not scan the pool list per call.
        self._pool_zone: Dict[int, str] = {}
        for layer, prefix, pools in (
            (DATA, "dlog", self.data_pools),
            (DELTA, "xlog", self.delta_pools),
            (PARITY, "plog", self.parity_pools),
        ):
            for i, pool in enumerate(pools):
                pool.seal_listener = self._make_seal_listener(layer, pool)
                self._pool_zone[id(pool)] = f"{prefix}{i}"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        # One worker pool per layer.  This is a deadlock-freedom invariant,
        # not just a tuning choice: DataLog recycle jobs block on remote
        # DeltaLog appends, DeltaLog jobs block on remote ParityLog appends,
        # and ParityLog jobs block only on the local device.  With a shared
        # pool, data jobs on every node can occupy all workers while the
        # appends they wait for need a recycle that has no worker left — a
        # cycle.  Layered pools make the wait graph acyclic (parity ->
        # device only), so the pipeline always drains.
        #
        # Every layer needs at least one worker, so 3 is the floor; above
        # it the split spends the whole budget without ever exceeding
        # max(3, recycle_workers) — DataLog (the hot layer) gets whatever
        # the two downstream layers leave over.
        n = max(3, self.config.recycle_workers)
        delta_n = max(1, n // 4)
        parity_n = max(1, n // 4)
        per_layer = {DATA: n - delta_n - parity_n, DELTA: delta_n, PARITY: parity_n}
        self._worker_queues = {}
        for layer, count in per_layer.items():
            queues = [
                Store(self.sim, name=f"{self.osd.name}.{layer}.wq{w}")
                for w in range(count)
            ]
            self._worker_queues[layer] = queues
            for w, q in enumerate(queues):
                self._procs.append(
                    self.sim.process(self._worker(q), name=f"{self.osd.name}.{layer}.rw{w}")
                )
        self._procs.append(
            self.sim.process(self._unit_manager(), name=f"{self.osd.name}.recycle-mgr")
        )
        self._procs.append(
            self.sim.process(self._flush_loop(), name=f"{self.osd.name}.flush")
        )

    def stop(self) -> None:
        self._running = False
        for p in self._procs:
            if p.is_alive:
                p.interrupt("stop")
        self._procs.clear()

    # ------------------------------------------------------------------
    # pool plumbing
    # ------------------------------------------------------------------
    def _pool_for(self, pools: List[LogPool], key: Hashable) -> LogPool:
        return pools[hash(key) % len(pools)]

    def _make_seal_listener(self, layer: str, pool: LogPool):
        def on_seal(unit: LogUnit) -> None:
            self._pending[layer] += 1
            self._recycle_queue.put((layer, pool, unit))

        return on_seal

    def _wait_space(self, pool: LogPool) -> Event:
        ev = self.sim.event(name=f"space:{pool.name}")
        self._space_waiters.setdefault(id(pool), []).append(ev)
        return ev

    def _notify_space(self, pool: LogPool) -> None:
        for ev in self._space_waiters.pop(id(pool), []):
            if not ev.triggered:
                ev.succeed()

    def _append_with_backpressure(self, pools, key, offset, data):
        """Pool append + sequential device persist; waits when at quota."""
        pool = self._pool_for(pools, key)
        while not pool.append(key, offset, data, self.sim.now):
            yield self._wait_space(pool)
        yield from self.osd.device.write(
            int(data.size) + ENTRY_HEADER_BYTES,
            zone=self._pool_zone[id(pool)],
            pattern="seq",
            overwrite=False,
        )

    # ------------------------------------------------------------------
    # front end
    # ------------------------------------------------------------------
    def append_datalog(self, key: BlockKey, offset: int, data: np.ndarray):
        yield from self._append_with_backpressure(self.data_pools, key, offset, data)

    def append_replica_datalog(self, key: BlockKey, offset: int, data: np.ndarray):
        """Replica DataLog: persisted sequentially, no memory pool (§4.1)."""
        yield from self.osd.device.write(
            int(data.size) + ENTRY_HEADER_BYTES,
            zone="dlog_rep",
            pattern="seq",
            overwrite=False,
        )
        self._replica_bytes += int(data.size)

    def append_deltalog(self, key: BlockKey, entries, primary: bool):
        """DeltaLog append: primary goes to the pool, replica persists only."""
        if primary:
            for offset, delta in entries:
                yield from self._append_with_backpressure(
                    self.delta_pools, key, offset, delta
                )
        else:
            total = sum(int(d.size) for _, d in entries)
            yield from self.osd.device.write(
                total + ENTRY_HEADER_BYTES,
                zone="xlog_rep",
                pattern="seq",
                overwrite=False,
            )
            self._replica_bytes += total

    def append_paritylog(self, pkey: BlockKey, entries):
        for offset, pdelta in entries:
            yield from self._append_with_backpressure(
                self.parity_pools, pkey, offset, pdelta
            )

    # ------------------------------------------------------------------
    # read cache
    # ------------------------------------------------------------------
    def read_overlay(self, key: BlockKey, offset: int, length: int):
        pool = self._pool_for(self.data_pools, key)
        frags = pool.cache_lookup_partial(key, offset, length)
        return frags or None

    # ------------------------------------------------------------------
    # back end
    # ------------------------------------------------------------------
    def _flush_loop(self):
        """Real-time recycle driver: seal aging active units periodically."""
        cfg = self.config
        shrink_every = max(1, int(round((10 * cfg.flush_age) / cfg.flush_interval)))
        tick = 0
        try:
            while self._running:
                yield self.sim.timeout(cfg.flush_interval)
                tick += 1
                now = self.sim.now
                for pools in (self.data_pools, self.delta_pools, self.parity_pools):
                    for pool in pools:
                        active = pool.active
                        if (
                            active is not None
                            and active.first_append_time is not None
                            and now - active.first_append_time >= cfg.flush_age
                        ):
                            pool.flush_active(now)
                        # Elastic shrink (§3.2.2): after a quiet stretch,
                        # release RECYCLED units beyond the minimum.
                        if tick % shrink_every == 0 and not pool.has_pending_recycle():
                            pool.shrink()
        except Interrupt:
            return

    def _unit_manager(self):
        """Consumes sealed units in seal order and farms out per-block jobs.

        Same-key jobs always land on the same worker queue (hash routing)
        and worker queues are FIFO, so two units touching one block recycle
        that block's entries in seal order — the paper's "log records for
        the same block are assigned to the same recycle thread".  Different
        units still recycle concurrently across workers.
        """
        try:
            while self._running:
                layer, pool, unit = yield self._recycle_queue.get()
                unit.start_recycle(self.sim.now)
                jobs = self._unit_jobs(layer, unit)
                state = {
                    "left": len(jobs),
                    "layer": layer,
                    "pool": pool,
                    "unit": unit,
                    "t0": self.sim.now,
                }
                if not jobs:
                    self._finish_unit(state)
                    continue
                queues = self._worker_queues[layer]
                for key, fn in jobs:
                    queues[hash(key) % len(queues)].put((fn, state))
        except Interrupt:
            return

    def _worker(self, queue: Store):
        try:
            while self._running:
                fn, state = yield queue.get()
                # A crashing job must still count towards unit completion:
                # otherwise state["left"] never reaches zero, the unit stays
                # RECYCLING forever, _notify_space never fires, and every
                # appender blocked in _append_with_backpressure deadlocks.
                # Interrupt (engine stopping) and GeneratorExit (GC closing
                # an abandoned run) re-raise *without* the accounting — an
                # aborted job is not a completed one.
                try:
                    yield from fn()
                except (Interrupt, GeneratorExit):
                    raise
                except BaseException as err:
                    self.sim._crash(err)
                state["left"] -= 1
                if state["left"] == 0:
                    self._finish_unit(state)
        except Interrupt:
            return

    def _finish_unit(self, state) -> None:
        layer, pool, unit = state["layer"], state["pool"], state["unit"]
        unit.finish_recycle(self.sim.now)
        n = max(1, len(unit.entries))
        self.residency.record_buffer(layer, unit.mean_buffer_time())
        self.residency.record_recycle(layer, (self.sim.now - state["t0"]) / n)
        self._pending[layer] -= 1
        self._notify_space(pool)
        if self._pending[layer] == 0:
            for ev in self._idle_waiters[layer]:
                if not ev.triggered:
                    ev.succeed()
            self._idle_waiters[layer].clear()

    def _unit_jobs(self, layer: str, unit: LogUnit):
        """(routing_key, job_generator_fn) pairs for one sealed unit."""
        if layer == DATA:
            work = self._block_work(unit, self.config.use_locality_data)
            return [
                (key, (lambda k=key, p=pieces: self._recycle_data_block(k, p)))
                for key, pieces in work.items()
            ]
        if layer == DELTA:
            stripes: Dict[Tuple[int, int], Dict[int, list]] = {}
            for key in unit.index.blocks():
                inode, stripe, j = key
                stripes.setdefault((inode, stripe), {})[j] = unit.index.segments(key)
            return [
                (sk, (lambda s=sk, pb=per_block: self._recycle_delta_stripe(s, pb)))
                for sk, per_block in stripes.items()
            ]
        work = self._block_work(unit, self.config.use_locality_parity)
        return [
            (pkey, (lambda k=pkey, p=pieces: self._recycle_parity_block(k, p)))
            for pkey, pieces in work.items()
        ]

    # -- DataLog ---------------------------------------------------------
    def _block_work(self, unit: LogUnit, use_locality: bool):
        """(key -> [(offset, payload)]) a recycler must process."""
        work: Dict[Hashable, List[Tuple[int, np.ndarray]]] = {}
        if use_locality:
            for key in unit.index.blocks():
                work[key] = [(s.offset, s.data) for s in unit.index.segments(key)]
        else:
            for e in unit.entries:
                if e.data is None:
                    raise RuntimeError(
                        "raw-entry recycle requested but unit was not keep_raw"
                    )
                work.setdefault(e.key, []).append((e.offset, e.data))
        return work

    def _recycle_data_block(self, key: BlockKey, pieces):
        """RMW the data block and forward deltas downstream."""
        cfg = self.config
        store = self.osd.store
        deltas: List[Tuple[int, np.ndarray]] = []
        for offset, data in pieces:
            old = yield from store.read_range(key, offset, data.size, pattern="rand")
            # ``old`` is a view of the live block — delta before the write.
            delta = old ^ data
            yield from store.write_range(key, offset, data, pattern="rand")
            deltas.append((offset, delta))
        if not deltas:
            return
        inode, stripe, j = key
        m = self.cluster.config.m
        k = self.cluster.config.k
        names = self.cluster.placement(inode, stripe)
        nbytes = sum(int(d.size) for _, d in deltas)
        if cfg.use_delta_log and m >= 2:
            # Forward to the DeltaLogs of the first two parity OSDs: the
            # first is the primary (it recycles), the second the replica.
            # Retrying pushes: the recycle worker owns these deltas and
            # the destination may be mid-failure/recovery.
            calls = []
            for rank, primary in ((0, True), (1, False)):
                dst = names[k + rank]
                calls.append(
                    self.sim.process(
                        self.osd.rpc_with_retry(
                            dst,
                            "tsue_delta",
                            {
                                "key": key,
                                "entries": deltas,
                                "primary": primary,
                            },
                            nbytes=nbytes,
                            # Fixed cadence: the committed bench rows
                            # encode this retry timing.
                            backoff=1.0,
                        )
                    )
                )
            yield AllOf(self.sim, calls)
        else:
            # O5 off (or m == 1): scale per parity and go straight to the
            # ParityLogs — one message per parity block.
            calls = []
            for p in range(m):
                coeff = self.cluster.codec.coefficient(p, j)
                pentries = [
                    (off, _parity_delta(coeff, d)) for off, d in deltas
                ]
                calls.append(
                    self.sim.process(
                        self.osd.rpc_with_retry(
                            names[k + p],
                            "tsue_parity",
                            {"pkey": (inode, stripe, k + p), "entries": pentries},
                            nbytes=nbytes,
                            # Fixed cadence: the committed bench rows
                            # encode this retry timing.
                            backoff=1.0,
                        )
                    )
                )
            yield AllOf(self.sim, calls)

    # -- DeltaLog --------------------------------------------------------
    def _recycle_delta_stripe(self, stripe_key: Tuple[int, int], per_block):
        """Eq. (3)/(5) combining, then per-parity forwards to ParityLogs.

        Keys in the DeltaLog are data-block keys; the manager groups them by
        stripe and this job folds every block's deltas into one combined
        parity delta per parity block.  No device I/O happens here at all —
        this layer's whole point is trading arithmetic for I/O and network
        volume.
        """
        inode, stripe = stripe_key
        k = self.cluster.config.k
        m = self.cluster.config.m
        names = self.cluster.placement(inode, stripe)
        calls = []
        for p in range(m):
            pkey = (inode, stripe, k + p)
            combined = TwoLevelIndex("xor")
            for j, segs in per_block.items():
                coeff = self.cluster.codec.coefficient(p, j)
                for s in segs:
                    combined.insert(pkey, s.offset, _parity_delta(coeff, s.data))
            entries = [(s.offset, s.data) for s in combined.segments(pkey)]
            if not entries:
                continue
            nbytes = sum(int(d.size) for _, d in entries)
            calls.append(
                self.sim.process(
                    self.osd.rpc_with_retry(
                        names[k + p],
                        "tsue_parity",
                        {"pkey": pkey, "entries": entries},
                        nbytes=nbytes,
                        # Fixed cadence: the committed bench rows encode
                        # this retry timing.
                        backoff=1.0,
                    )
                )
            )
        if calls:
            yield AllOf(self.sim, calls)

    # -- ParityLog -------------------------------------------------------
    def _recycle_parity_block(self, pkey: BlockKey, pieces):
        for offset, pdelta in pieces:
            yield from self.osd.store.xor_range(pkey, offset, pdelta, pattern="rand")

    # ------------------------------------------------------------------
    # drain support
    # ------------------------------------------------------------------
    def _layer_pools(self, layer: str) -> List[LogPool]:
        return {DATA: self.data_pools, DELTA: self.delta_pools, PARITY: self.parity_pools}[layer]

    def drain_layer(self, layer: str):
        """Seal every active unit of a layer and wait until all recycled."""
        for pool in self._layer_pools(layer):
            pool.flush_active(self.sim.now)
        while self._pending[layer] > 0:
            ev = self.sim.event(name=f"idle:{layer}")
            self._idle_waiters[layer].append(ev)
            yield ev

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def log_memory_bytes(self) -> int:
        return sum(
            p.memory_bytes
            for pools in (self.data_pools, self.delta_pools, self.parity_pools)
            for p in pools
        )

    def peak_log_memory_bytes(self) -> int:
        return sum(
            p.peak_memory_bytes
            for pools in (self.data_pools, self.delta_pools, self.parity_pools)
            for p in pools
        )

    def pending_recycles(self) -> int:
        return sum(self._pending.values())

    def stripe_pending(self, inode: int, stripe: int) -> bool:
        """True if any log layer still holds unrecycled entries for the
        stripe (best-effort; scoped per stripe for the scrubber).

        DataLog and DeltaLog units are keyed by data-block keys, ParityLog
        units by parity keys — all carry ``(inode, stripe, ...)``.  Units
        already RECYCLED keep their index as a read cache and are excluded:
        their content has been applied.
        """
        from repro.logstruct.states import UnitState

        for pools in (self.data_pools, self.delta_pools, self.parity_pools):
            for pool in pools:
                for unit in pool.units:
                    if unit.state is UnitState.RECYCLED:
                        continue
                    for key in unit.index.blocks():
                        if key[0] == inode and key[1] == stripe:
                            return True
        return False
