"""Table-driven GF(2^8) arithmetic.

The exp table is laid out doubled (length 510) so ``exp[log a + log b]``
never needs an explicit ``mod 255``; the log table maps 1..255 to 0..254
(``log[0]`` is a sentinel never consulted on a valid path).

Bulk multiplication (`gf_mul`, `gf_mul_scalar`) is fully vectorised: a
256-entry per-scalar product row is gathered once and indexed by the data
bytes, which keeps the inner loop inside numpy's fancy indexing.
"""

from __future__ import annotations

import numpy as np

GF_ORDER = 256
PRIM_POLY = 0x11D  # x^8 + x^4 + x^3 + x^2 + 1


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(510, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIM_POLY
    exp[255:510] = exp[0:255]
    return exp, log


_EXP, _LOG = _build_tables()

# 256x256 full multiplication table: 64 KiB, built once.  Row g is the map
# b -> g*b, which turns scalar-times-buffer into one gather.
_MUL_TABLE = np.zeros((256, 256), dtype=np.uint8)
for _g in range(1, 256):
    _bs = np.arange(1, 256)
    _MUL_TABLE[_g, 1:] = _EXP[_LOG[_g] + _LOG[_bs]]
del _g, _bs

# The same rows as 256-byte `bytes` objects: ``payload.translate(row)`` is
# the fastest scalar-times-buffer kernel CPython offers (a tight C loop with
# no index-dtype conversion), beating numpy fancy indexing ~3-5x on the
# sub-64KiB buffers the update path moves.
_MUL_BYTES = [bytes(_MUL_TABLE[_g2]) for _g2 in range(256)]


def gf_exp_table() -> np.ndarray:
    """A read-only view of the doubled exp table (length 510)."""
    v = _EXP.view()
    v.flags.writeable = False
    return v


def gf_log_table() -> np.ndarray:
    """A read-only view of the log table (index 0 is a sentinel)."""
    v = _LOG.view()
    v.flags.writeable = False
    return v


def gf_add(a, b) -> np.ndarray:
    """Field addition (= subtraction): bytewise XOR."""
    return np.bitwise_xor(np.asarray(a, dtype=np.uint8), np.asarray(b, dtype=np.uint8))


def gf_mul(a, b) -> np.ndarray:
    """Elementwise field product of two uint8 arrays (broadcasting)."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    return _MUL_TABLE[a, b]


def gf_mul_scalar(scalar: int, buf) -> np.ndarray:
    """``scalar * buf`` over the field, vectorised via one table row."""
    if not 0 <= scalar <= 255:
        raise ValueError(f"scalar {scalar} outside GF(256)")
    buf = np.asarray(buf, dtype=np.uint8)
    if scalar == 0:
        return np.zeros_like(buf)
    if scalar == 1:
        return buf.copy()
    return _MUL_TABLE[scalar][buf]


def gf_inv(a: int) -> int:
    """Multiplicative inverse of a nonzero field element."""
    if not 0 < a <= 255:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return int(_EXP[255 - _LOG[a]])


def gf_div(a, b) -> np.ndarray:
    """Elementwise ``a / b``; raises on any zero divisor."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if np.any(b == 0):
        raise ZeroDivisionError("division by zero in GF(256)")
    la = _LOG[a]
    lb = _LOG[b]
    out = _EXP[(la - lb) % 255].astype(np.uint8)
    return np.where(a == 0, np.uint8(0), out)


def gf_pow(a: int, n: int) -> int:
    """``a ** n`` in the field (n may be any integer for nonzero a)."""
    if a == 0:
        if n == 0:
            return 1
        if n < 0:
            raise ZeroDivisionError("0 ** negative in GF(256)")
        return 0
    return int(_EXP[(_LOG[a] * n) % 255])
