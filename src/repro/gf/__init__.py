"""GF(2^8) arithmetic, vectorised over ``numpy`` ``uint8`` arrays.

All erasure-code math in this repository happens in the field GF(256) with
the AES/Rijndael-compatible primitive polynomial x^8 + x^4 + x^3 + x^2 + 1
(0x11D), the same field used by ISA-L and Jerasure.  Addition is XOR;
multiplication goes through log/exp tables so bulk operations stay inside
numpy.
"""

from repro.gf.arithmetic import (
    GF_ORDER,
    PRIM_POLY,
    gf_add,
    gf_div,
    gf_exp_table,
    gf_inv,
    gf_log_table,
    gf_mul,
    gf_mul_scalar,
    gf_pow,
)

__all__ = [
    "GF_ORDER",
    "PRIM_POLY",
    "gf_add",
    "gf_div",
    "gf_exp_table",
    "gf_inv",
    "gf_log_table",
    "gf_mul",
    "gf_mul_scalar",
    "gf_pow",
]
