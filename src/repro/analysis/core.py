"""Framework core: findings, rules, suppressions, and the file driver.

Design notes
------------

* **Rules are AST visitors over one file.**  A rule gets a
  :class:`FileContext` (source, parsed tree, import-alias map, config) and
  yields :class:`Finding`\\ s.  No cross-file state: every invariant the
  rules encode is local enough to check per file, which keeps the pass
  trivially incremental and order-independent.

* **Suppressions must carry a reason.**  ``# repro-lint: allow(<rule>) --
  <reason>`` on the offending line (or on its own line directly above)
  silences exactly that rule there.  An ``allow`` without a ``--
  <reason>`` tail is itself a finding, and so is an ``allow`` that
  matched nothing — the gate treats a stale suppression the same way it
  treats a live violation, so the inventory of exceptions can never rot.

* **Determinism of the tool itself.**  File discovery sorts every
  directory listing and findings are reported in a total order, so two
  runs over the same tree emit byte-identical reports — the linter obeys
  the invariant it enforces.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

# Meta rule ids emitted by the framework itself (not registered rules).
SUPPRESSION_MISSING_REASON = "suppression-missing-reason"
UNUSED_SUPPRESSION = "unused-suppression"
SUPPRESSION_SYNTAX = "suppression-syntax"
PARSE_ERROR = "parse-error"
META_RULES = (SUPPRESSION_MISSING_REASON, UNUSED_SUPPRESSION,
              SUPPRESSION_SYNTAX, PARSE_ERROR)


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    fixit: str
    suppressed: bool = False
    suppress_reason: Optional[str] = None

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fixit": self.fixit,
            "suppressed": self.suppressed,
            "suppress_reason": self.suppress_reason,
        }

    @staticmethod
    def from_dict(data: dict) -> "Finding":
        return Finding(
            rule=data["rule"], path=data["path"], line=data["line"],
            col=data["col"], message=data["message"], fixit=data["fixit"],
            suppressed=data.get("suppressed", False),
            suppress_reason=data.get("suppress_reason"),
        )


@dataclass(frozen=True)
class LintConfig:
    """Scoping knobs.  Defaults describe the shipped tree; tests override."""

    # Modules under hot-path hygiene (PR 4's hand-optimised kernel files).
    # Matched as posix-path suffixes of the analyzed file.
    hot_module_suffixes: Tuple[str, ...] = (
        "repro/sim/core.py",
        "repro/sim/events.py",
    )
    # Path fragments that exclude a file from analysis entirely.
    exclude_parts: Tuple[str, ...] = ("__pycache__",)
    # Name fragments identifying payload-plane mode flags (ghost_dataplane
    # and friends).  The plane-branch rule flags branches on these inside
    # generator functions: plane selection is an __init__-time binding
    # decision, never a per-event one.
    plane_flag_markers: Tuple[str, ...] = ("ghost",)
    # ``__init__.py`` re-exports names on purpose; the dead-import rule
    # skips them unless configured otherwise.
    dead_import_skip_init: bool = True
    # ------------------------------------------------------------------
    # whole-program knobs (the ipd/rpc families; see analysis/graph.py)
    # ------------------------------------------------------------------
    # Modules whose functions never export may-block: simulated device /
    # store I/O time charged inside a critical section is the modelled
    # cost of the RMW itself, not a lock-discipline violation.
    lock_transparent_parts: Tuple[str, ...] = (
        "repro/sim/", "repro/devices/", "repro/fs/blockstore.py",
    )
    # The RPC transport layer forwards caller-supplied message kinds by
    # design; its variable-kind sends don't count as dynamic protocol
    # sends (which would disable dead-handler checking project-wide).
    rpc_transport_parts: Tuple[str, ...] = ("repro/fs/messages.py",)
    # Function names whose bodies ingest payloads of either plane: the
    # roots of ghost-reachability for ipd-ghost-materialize.
    ghost_entry_names: Tuple[str, ...] = (
        "on_update", "_h_write_block", "_h_update", "_h_read",
    )
    # Bench-row producers: determinism taint must never reach them.
    row_producer_names: Tuple[str, ...] = ("to_dict",)


_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*allow\(\s*([^)]*?)\s*\)\s*(?:--\s*(\S.*))?$"
)


@dataclass
class Suppression:
    """One parsed ``# repro-lint: allow(...)`` comment."""

    comment_line: int          # 1-based line the comment sits on
    target_line: int           # line whose findings it suppresses
    rules: Tuple[str, ...]
    reason: Optional[str]
    used_rules: set = field(default_factory=set)


def _comment_tokens(
    lines: Sequence[str],
) -> Iterator[Tuple[int, int, str]]:
    """(lineno, col, text) for every *real* comment token.

    Tokenizing (rather than regex-scanning raw lines) keeps suppression
    syntax quoted inside docstrings or string literals from being parsed
    as a live suppression.
    """
    src = "\n".join(lines) + "\n"
    try:
        for tok in tokenize.generate_tokens(io.StringIO(src).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparsable tail (analyze_file already reports parse errors);
        # fall back to a crude per-line scan so suppressions near the
        # breakage still resolve.
        for i, raw in enumerate(lines):
            idx = raw.find("#")
            if idx >= 0:
                yield i + 1, idx, raw[idx:]


def parse_suppressions(lines: Sequence[str]) -> List[Suppression]:
    """Extract suppressions; standalone comments bind to the next code line."""
    out: List[Suppression] = []
    for lineno, col, text in _comment_tokens(lines):
        m = _SUPPRESS_RE.match(text)
        if not m:
            continue
        # Rule lists split on commas *and* bare whitespace: before this,
        # `allow(rule-a rule-b)` parsed as one bogus rule id that matched
        # nothing and then fired `unused-suppression` with a confusing
        # message.
        rules = tuple(r for r in re.split(r"[\s,]+", m.group(1)) if r)
        reason = m.group(2).strip() if m.group(2) else None
        target = lineno
        if not lines[lineno - 1][:col].strip():
            # Standalone comment: applies to the next non-blank,
            # non-comment line (stacked suppressions skip each other).
            for j in range(lineno, len(lines)):
                stripped = lines[j].strip()
                if stripped and not stripped.startswith("#"):
                    target = j + 1
                    break
        out.append(Suppression(lineno, target, rules, reason))
    return out


class FileContext:
    """Everything a rule needs to check one file."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 config: LintConfig):
        self.path = path
        self.posix_path = path.replace(os.sep, "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self._aliases: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------
    def path_endswith(self, suffixes: Iterable[str]) -> bool:
        return any(self.posix_path.endswith(s) for s in suffixes)

    @property
    def module_aliases(self) -> Dict[str, str]:
        """Local name -> canonical dotted origin, from every import stmt.

        ``import time as _time`` maps ``_time`` -> ``time``;
        ``from os import urandom`` maps ``urandom`` -> ``os.urandom``.
        Function-local imports are included — rules care about what a name
        *means*, not where it was bound.
        """
        if self._aliases is None:
            aliases: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for a in node.names:
                        aliases[a.asname or a.name.split(".")[0]] = (
                            a.name if a.asname else a.name.split(".")[0]
                        )
                elif isinstance(node, ast.ImportFrom) and node.module:
                    for a in node.names:
                        if a.name == "*":
                            continue
                        aliases[a.asname or a.name] = f"{node.module}.{a.name}"
            self._aliases = aliases
        return self._aliases

    def dotted(self, node: ast.AST) -> Optional[str]:
        """``a.b.c`` for an attribute chain rooted at a Name, else None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def canonical_call(self, call: ast.Call) -> Optional[str]:
        """The called name with import aliases resolved to their origin.

        ``_time.perf_counter()`` -> ``time.perf_counter`` when the file
        holds ``import time as _time``; plain calls resolve through
        ``from``-imports (``urandom()`` -> ``os.urandom``).
        """
        name = self.dotted(call.func)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        origin = self.module_aliases.get(head)
        if origin is None:
            return name
        return f"{origin}.{rest}" if rest else origin


class Rule:
    """Base class: one rule = one id, one invariant, one fix-it recipe."""

    id: str = ""
    family: str = ""
    description: str = ""
    fixit: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                fixit: Optional[str] = None) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            fixit=fixit if fixit is not None else self.fixit,
        )


class ProjectRule:
    """Base for whole-program rules (the ``ipd``/``rpc`` families).

    A project rule checks the fixpoint-solved project model built by
    :mod:`repro.analysis.graph` instead of one file's AST, so it can see
    facts that flow through calls (``check`` receives the
    ``graph.Project``).  Findings still anchor to one concrete source
    location — the call site or definition that witnesses the violation
    — so the same line-based suppression machinery applies unchanged.
    """

    id: str = ""
    family: str = ""
    description: str = ""
    fixit: str = ""

    def check(self, project: "object") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, line: int, col: int, message: str,
                fixit: Optional[str] = None) -> Finding:
        return Finding(
            rule=self.id, path=path, line=line, col=col, message=message,
            fixit=fixit if fixit is not None else self.fixit,
        )


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
def iter_python_files(paths: Sequence[str],
                      config: Optional[LintConfig] = None) -> Iterator[str]:
    """Yield ``.py`` files under ``paths`` in a deterministic order."""
    config = config or LintConfig()

    def excluded(p: str) -> bool:
        posix = p.replace(os.sep, "/")
        return any(part in posix for part in config.exclude_parts)

    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and not excluded(path):
                yield path
            continue
        # repro-lint: allow(det-set-order) -- dirnames/filenames are sorted in the loop body; traversal order is pinned
        for dirpath, dirnames, filenames in os.walk(path):
            # Sorted traversal: the report (and any unused-suppression
            # diff) must not depend on readdir order.
            dirnames.sort()
            for fn in sorted(filenames):
                full = os.path.join(dirpath, fn)
                if fn.endswith(".py") and not excluded(full):
                    yield full


def load_context(path: str, config: Optional[LintConfig] = None,
                 source: Optional[str] = None,
                 ) -> Tuple[Optional[FileContext], List[Finding]]:
    """Read and parse one file.

    Returns ``(ctx, [])`` on success, ``(None, [parse-error finding])``
    when the file does not parse.  Factored out of :func:`analyze_file`
    so the whole-program driver can parse once and feed the same tree to
    both the per-file rules and the summary extractor.
    """
    config = config or LintConfig()
    if source is None:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, [Finding(
            rule=PARSE_ERROR, path=path, line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            message=f"cannot parse: {exc.msg}",
            fixit="fix the syntax error; unparseable files are unanalyzable "
                  "and fail the gate",
        )]
    return FileContext(path, source, tree, config), []


def run_rules(ctx: FileContext, rules: Sequence[Rule]) -> List[Finding]:
    """Raw (pre-suppression) findings from every rule over one file."""
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    return findings


def apply_suppressions(findings: Sequence[Finding],
                       suppressions: Sequence[Suppression]) -> None:
    """Mark suppressed findings in place; record rule usage on the allows.

    Callable more than once over the same suppression list (the project
    driver applies it to per-file findings first, then again to the
    interprocedural findings) — ``used_rules`` accumulates across calls
    so the audit sees the union.
    """
    by_line: Dict[int, List[Suppression]] = {}
    for sup in suppressions:
        by_line.setdefault(sup.target_line, []).append(sup)
    for f in findings:
        if f.suppressed:
            continue
        for sup in by_line.get(f.line, ()):
            if f.rule in sup.rules:
                f.suppressed = True
                f.suppress_reason = sup.reason
                sup.used_rules.add(f.rule)
                break


def audit_suppressions(path: str,
                       suppressions: Sequence[Suppression]) -> List[Finding]:
    """Meta findings: malformed, unjustified, and dead suppressions.

    Run *after* every :func:`apply_suppressions` pass over this file's
    findings — an allow() counts as used if any pass consumed it.
    """
    findings: List[Finding] = []
    for sup in suppressions:
        if not sup.rules:
            # `allow()` with no rule ids suppresses nothing and, before
            # this audit existed, produced no finding either — silent
            # dead weight in the exception inventory.
            findings.append(Finding(
                rule=SUPPRESSION_SYNTAX, path=path,
                line=sup.comment_line, col=1,
                message="allow() names no rules — it suppresses nothing",
                fixit="write `allow(<rule-id>[, <rule-id>...]) -- <reason>` "
                      "or delete the comment",
            ))
            continue
        if sup.reason is None:
            findings.append(Finding(
                rule=SUPPRESSION_MISSING_REASON, path=path,
                line=sup.comment_line, col=1,
                message="suppression has no justification "
                        f"(allow({', '.join(sup.rules)}) without `-- <reason>`)",
                fixit="append `-- <why this is safe here>` to the allow() "
                      "comment; unexplained exceptions do not pass review",
            ))
        for rule_id in sup.rules:
            if rule_id not in sup.used_rules:
                findings.append(Finding(
                    rule=UNUSED_SUPPRESSION, path=path,
                    line=sup.comment_line, col=1,
                    message=f"allow({rule_id}) matched no finding on line "
                            f"{sup.target_line}",
                    fixit="delete the stale allow() (or fix its rule name); "
                          "dead suppressions hide future violations",
                ))
    return findings


def analyze_file(path: str, rules: Sequence[Rule],
                 config: Optional[LintConfig] = None,
                 source: Optional[str] = None) -> List[Finding]:
    """Run ``rules`` over one file; apply and audit suppressions."""
    ctx, findings = load_context(path, config, source)
    if ctx is None:
        return findings
    findings = run_rules(ctx, rules)
    suppressions = parse_suppressions(ctx.lines)
    apply_suppressions(findings, suppressions)
    findings.extend(audit_suppressions(path, suppressions))
    return findings


def analyze_paths(paths: Sequence[str], rules: Sequence[Rule],
                  config: Optional[LintConfig] = None) -> List[Finding]:
    """Analyze every Python file under ``paths``; total-ordered findings."""
    config = config or LintConfig()
    findings: List[Finding] = []
    for path in iter_python_files(paths, config):
        findings.extend(analyze_file(path, rules, config))
    findings.sort(key=Finding.sort_key)
    return findings
