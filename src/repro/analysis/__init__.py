"""Rule-based static analysis over Python ``ast`` — the ``repro lint`` gate.

The engine's correctness contracts (bit-identical bench rows, per-stripe
lock discipline, zero-copy view lifetimes, allocation-free kernel hot
paths) are runtime-enforced at best and convention-enforced at worst.
This package makes them machine-checked at review time: every rule
encodes one engine invariant, fires with a per-finding fix-it message,
and can be silenced only by an inline suppression that *states a reason*
(``# repro-lint: allow(<rule>) -- <why this is safe here>``).  Unused
suppressions are themselves findings, so the suppression inventory can
never rot.

See ``docs/lint.md`` for the rule catalogue and the invariant each rule
family encodes.
"""

from repro.analysis.core import (
    FileContext,
    Finding,
    LintConfig,
    ProjectRule,
    Rule,
    Suppression,
    analyze_file,
    analyze_paths,
    iter_python_files,
)
from repro.analysis.project import analyze_project
from repro.analysis.reporters import render_github, render_json, render_text
from repro.analysis.rules import all_rules, project_rules, rules_by_id

__all__ = [
    "FileContext",
    "Finding",
    "LintConfig",
    "ProjectRule",
    "Rule",
    "Suppression",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_project",
    "iter_python_files",
    "project_rules",
    "render_github",
    "render_json",
    "render_text",
    "rules_by_id",
]
