"""Shared call vocabulary for the rule families and the summary builder.

One module owns the canonical tables of "interesting" callables — wall
clocks, entropy sources, blocking yield points, zero-copy view sources,
byte materializers — so the per-file rules (`rules/determinism.py`,
`rules/locks.py`, `rules/aliasing.py`) and the whole-program summary
extraction (`graph.py`) can never disagree about what a name means.
Before the interprocedural layer existed each rule module kept a private
copy; a vocabulary drift between the intraprocedural rule and the
summary that generalizes it would make `ipd-*` findings inconsistent
with their per-file counterparts.
"""

from __future__ import annotations

import ast
from typing import Optional

# ----------------------------------------------------------------------
# determinism: wall clocks and ambient entropy
# ----------------------------------------------------------------------
WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

ENTROPY_CALLS = frozenset({
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
})

# Seedable constructors: fine with an explicit seed argument, ambient
# entropy (and therefore flagged) when called with no arguments.
SEEDABLE_CALLS = frozenset({
    "random.Random", "random.SystemRandom",
    "numpy.random.default_rng", "numpy.random.SeedSequence",
    "numpy.random.Generator", "numpy.random.PCG64", "numpy.random.MT19937",
    "numpy.random.Philox", "numpy.random.RandomState",
})

# Filesystem enumerations whose order is readdir-dependent.
FS_ORDER_CALLS = frozenset({
    "os.listdir", "os.scandir", "os.walk",
    "glob.glob", "glob.iglob",
})


def is_entropy_call(canonical: str, has_args: bool) -> bool:
    """Shared predicate: does this canonical call inject ambient entropy?

    Mirrors the `det-entropy` rule exactly: direct entropy sources,
    anything in ``secrets``, seedable constructors called without a seed,
    and module-level ``random.*`` / ``numpy.random.*`` convenience calls
    (hidden global stream).
    """
    if canonical in ENTROPY_CALLS or canonical.startswith("secrets."):
        return True
    if canonical in SEEDABLE_CALLS:
        return not has_args
    return (canonical.startswith("random.")
            or canonical.startswith("numpy.random."))


# ----------------------------------------------------------------------
# locks: yield points that block simulated time while a lock is held.
# Device I/O (store/device read-write) is deliberately absent: charging
# device time inside the critical section is the modelled cost of RMW.
# The fence/rebalance entries are the live-change fault plane: fencing on
# a down or migrating stripe parks the caller for a whole outage/copy
# window, and a membership rebalance blocks across quiesce + drain +
# copy — all of them may-block by contract, so calling one while holding
# a stripe lock is a deadlock-shaped bug the per-file rules must see
# without the whole-program graph.  (Device ``degrade``/``heal`` and
# ``Fabric.degrade_link``/``heal_link`` are deliberately absent: they are
# instantaneous state flips, not yield points.)
# ----------------------------------------------------------------------
BLOCKING_CALL_TAILS = ("rpc", "rpc_delivered", "rpc_with_retry", "timeout", "sleep", "event",
                       "request", "acquire", "AllOf", "AnyOf", "At",
                       "_fence_wait", "_migration_wait",
                       "rebalance_join", "rebalance_leave",
                       "decommission_osd")

# ----------------------------------------------------------------------
# aliasing: call attribute names returning zero-copy views of live
# storage.  Zero-arg ``peek()`` is ``Simulator.peek`` (a float), which
# the rules special-case.
# ----------------------------------------------------------------------
VIEW_SOURCE_ATTRS = frozenset({
    "read_range", "peek", "lookup", "lookup_partial", "cache_lookup_partial",
})


def view_call(node: ast.AST) -> Optional[ast.Call]:
    """The view-returning Call inside ``node`` (unwrapping yield-from).

    Shared by the ``alias-*`` rules and the summary extractor so both
    generations agree on what produces a view.
    """
    if isinstance(node, (ast.YieldFrom, ast.Await)):
        node = node.value
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in VIEW_SOURCE_ATTRS):
        if node.func.attr == "peek" and not (node.args or node.keywords):
            # Zero-arg ``peek()`` is ``Simulator.peek`` (next event time,
            # a float) — only ``BlockStore.peek(key)`` returns a view.
            return None
        return node
    return None

# ----------------------------------------------------------------------
# payload plane: calls that force real bytes into existence.  On the
# ghost plane these either fabricate data (``bytes`` of a metadata-only
# extent has nothing to copy) or crash loudly at runtime
# (``GhostExtent.__array__`` raises) — either way, a ghost-reachable
# call site is a plane-discipline violation worth catching at review
# time.
# ----------------------------------------------------------------------
MATERIALIZE_CALLS = frozenset({
    "bytes", "bytearray", "memoryview",
    "numpy.asarray", "numpy.array", "numpy.ascontiguousarray",
    "numpy.frombuffer", "numpy.copyto",
})
MATERIALIZE_ATTR_TAILS = frozenset({"tobytes", "__array__"})

# Calls that mark a function as a *plane dispatch point*: a function
# that explicitly branches on ``is_ghost(...)`` handles both planes by
# contract (and the runtime ``GhostMaterializationError`` backstop
# catches it if it lies), so ghost-reachability analysis stops there.
PLANE_DISPATCH_TAILS = frozenset({"is_ghost"})
