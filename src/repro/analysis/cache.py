"""Content-hash-keyed summary cache for the whole-program pass.

PR 6's per-file rules were trivially incremental because they had no
cross-file state; the whole-program layer breaks that, so this cache
restores it DBSP-style — recompute the *change*, not the view:

* per-file entries (extracted model, raw per-file findings, parsed
  suppressions) are keyed by the file's content sha256: an untouched
  file is never re-parsed;
* the interprocedural view scan (the only ipd rule that needs the AST)
  is additionally keyed by a hash of the file's *view dependencies* —
  every call reference it makes, resolved, with the callee's
  returns-view bit.  Editing a helper so it starts (or stops) returning
  a view invalidates exactly the callers whose resolution map changed;
* everything else ipd computes (fixpoint, lock/ghost/det/rpc checks) is
  pure arithmetic over the cached models and is recomputed every run —
  re-deriving it is cheaper than invalidating it correctly.

The whole cache is invalidated wholesale when the analysis version, the
selected rule set, or the config changes (a ``fingerprint`` field), and
a corrupt or unreadable cache file degrades to a cold run — the cache
can change *when* work happens, never *what* the report says.  Cold and
warm runs are byte-identical by construction: cached values are exactly
the values the cold path would recompute.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.core import Finding, LintConfig, Suppression
from repro.analysis.graph import MODEL_VERSION

CACHE_VERSION = 1
DEFAULT_CACHE_NAME = ".repro-lint-cache"


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def fingerprint(config: LintConfig, rule_ids: Sequence[str]) -> str:
    """One hash over everything that changes analysis semantics."""
    payload = json.dumps(
        {
            "cache": CACHE_VERSION,
            "model": MODEL_VERSION,
            "rules": sorted(rule_ids),
            "config": repr(config),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _sup_to_list(sup: Suppression) -> list:
    return [sup.comment_line, sup.target_line, list(sup.rules), sup.reason]


def _sup_from_list(data: list) -> Suppression:
    return Suppression(data[0], data[1], tuple(data[2]), data[3])


class SummaryCache:
    """The on-disk store; tolerant of absence, corruption, staleness."""

    def __init__(self, path: str, fp: str):
        self.path = path
        self.fp = fp
        self._files: Dict[str, dict] = {}
        self._loaded_warm = False
        self._load()

    @property
    def was_warm(self) -> bool:
        """True when a compatible cache file existed at load time."""
        return self._loaded_warm

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return
        if (not isinstance(data, dict)
                or data.get("fingerprint") != self.fp
                or not isinstance(data.get("files"), dict)):
            return
        self._files = data["files"]
        self._loaded_warm = True

    # -- per-file entries ----------------------------------------------
    def get_file(self, path: str, sha: str) -> Optional[
        Tuple[Optional[dict], List[Finding], List[Suppression]]
    ]:
        entry = self._files.get(path)
        if not isinstance(entry, dict) or entry.get("sha") != sha:
            return None
        try:
            findings = [Finding.from_dict(d) for d in entry["findings"]]
            sups = [_sup_from_list(s) for s in entry["suppressions"]]
            return entry.get("model"), findings, sups
        except (KeyError, TypeError, IndexError):
            return None

    def put_file(self, path: str, sha: str, model: Optional[dict],
                 findings: Sequence[Finding],
                 suppressions: Sequence[Suppression]) -> None:
        self._files[path] = {
            "sha": sha,
            "model": model,
            "findings": [f.to_dict() for f in findings],
            "suppressions": [_sup_to_list(s) for s in suppressions],
        }

    # -- view-scan entries (file hash + dependency-summary hash) -------
    def get_view(self, path: str, sha: str,
                 dep: str) -> Optional[List[Finding]]:
        entry = self._files.get(path)
        if not isinstance(entry, dict) or entry.get("sha") != sha:
            return None
        view = entry.get("view")
        if not isinstance(view, dict) or view.get("dep") != dep:
            return None
        try:
            return [Finding.from_dict(d) for d in view["findings"]]
        except (KeyError, TypeError):
            return None

    def put_view(self, path: str, sha: str, dep: str,
                 findings: Sequence[Finding]) -> None:
        entry = self._files.get(path)
        if not isinstance(entry, dict) or entry.get("sha") != sha:
            return
        entry["view"] = {"dep": dep,
                         "findings": [f.to_dict() for f in findings]}

    # -- persistence ---------------------------------------------------
    def prune(self, live_paths: Sequence[str]) -> None:
        """Drop entries for files no longer in the analyzed set."""
        live = set(live_paths)
        for path in [p for p in self._files if p not in live]:
            del self._files[path]

    def save(self) -> None:
        data = {
            "fingerprint": self.fp,
            "files": {p: self._files[p] for p in sorted(self._files)},
        }
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(data, fh, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, self.path)
        except OSError:
            # A read-only checkout degrades to always-cold, never fails.
            try:
                os.unlink(tmp)
            except OSError:
                pass
