"""Finding reporters: human text and machine JSON.

Both render the same total-ordered finding list, so ``--format json`` is
exactly the text report's content with stable keys — CI archives the JSON,
humans read the text, neither can disagree with the other.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.core import Finding


def _counts_by_rule(findings: Sequence[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return dict(sorted(counts.items()))


def render_text(findings: Sequence[Finding], show_suppressed: bool = False) -> str:
    """The human report: location, rule, message, then a fix-it line."""
    active = [f for f in findings if not f.suppressed]
    shown: List[Finding] = list(findings) if show_suppressed else active
    out: List[str] = []
    for f in shown:
        tag = " (suppressed)" if f.suppressed else ""
        out.append(f"{f.path}:{f.line}:{f.col}: [{f.rule}]{tag} {f.message}")
        if f.fixit:
            out.append(f"    fix: {f.fixit}")
        if f.suppressed and f.suppress_reason:
            out.append(f"    allowed because: {f.suppress_reason}")
    n_sup = len(findings) - len(active)
    summary = (
        f"{len(active)} finding(s), {n_sup} suppressed"
        if findings
        else "clean: no findings"
    )
    if active:
        per_rule = ", ".join(
            f"{rule}={n}" for rule, n in _counts_by_rule(active).items()
        )
        summary += f" [{per_rule}]"
    out.append(summary)
    return "\n".join(out)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable-keyed JSON: findings plus a per-rule summary."""
    active = [f for f in findings if not f.suppressed]
    payload = {
        "findings": [f.to_dict() for f in findings],
        "summary": {
            "total": len(findings),
            "active": len(active),
            "suppressed": len(findings) - len(active),
            "by_rule": _counts_by_rule(active),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _gha_escape(value: str, property_value: bool = False) -> str:
    """GitHub Actions workflow-command data escaping."""
    out = value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if property_value:
        out = out.replace(":", "%3A").replace(",", "%2C")
    return out


def render_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions ``::error`` annotations, one per active finding.

    Emitted to stdout inside the CI lint job so strict-gate findings
    render inline on the PR diff.  Suppressed findings are omitted —
    they are accepted exceptions, not review feedback.
    """
    active = [f for f in findings if not f.suppressed]
    out: List[str] = []
    for f in active:
        message = f"[{f.rule}] {f.message}"
        if f.fixit:
            message += f" | fix: {f.fixit}"
        out.append(
            "::error file={file},line={line},col={col},title={title}::"
            "{message}".format(
                file=_gha_escape(f.path, property_value=True),
                line=f.line,
                col=f.col,
                title=_gha_escape(f"repro-lint {f.rule}",
                                  property_value=True),
                message=_gha_escape(message),
            )
        )
    out.append(f"{len(active)} finding(s)")
    return "\n".join(out)
