"""The whole-program driver: cache-aware analysis over a file set.

Composition order per run:

1. every file is hashed; cache hits restore (model, raw per-file
   findings, suppressions) without re-parsing, misses parse once and
   feed the same tree to the per-file rules and the summary extractor;
2. the project model is assembled and the summary fixpoint solved —
   always, from all models, cached or fresh (pure arithmetic, no I/O);
3. graph-math project rules run over the solved model; the AST-scanning
   view rule runs per file, keyed by (content hash, view-dependency
   hash) so a warm run re-scans only files whose inputs changed;
4. suppressions are applied to the union of per-file and project
   findings for each file — one allow() can silence either generation —
   and then audited once, so ``unused-suppression`` accounts for both.

``--changed`` scoping filters the *report* (changed files plus the
files whose summaries depend on them), never the analysis: summaries
are whole-program by definition, and the warm cache is what makes the
full pass cheap.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.cache import SummaryCache, content_hash, fingerprint
from repro.analysis.core import (
    Finding,
    LintConfig,
    ProjectRule,
    Rule,
    Suppression,
    apply_suppressions,
    audit_suppressions,
    iter_python_files,
    load_context,
    parse_suppressions,
    run_rules,
)
from repro.analysis.graph import (
    RETURNS_VIEW,
    Project,
    build_project,
    extract_model,
)


@dataclass
class ProjectResult:
    findings: List[Finding]
    project: Project
    cache_was_warm: bool = False


def _view_dep_hash(project: Project, model: dict) -> str:
    """Hash of everything the view scan of one file depends on.

    For every call reference the file makes: the resolved callee set and
    each callee's returns-view bit.  A helper edit that flips a callee's
    summary — or changes resolution itself (new override, renamed class)
    — changes the hash; anything else leaves it untouched.
    """
    items: List[list] = []
    mod = model["module"]
    for qual in sorted(model.get("functions", ())):
        info = project.functions.get(f"{mod}:{qual}")
        if info is None:
            continue
        for ref, *_site in info.calls:
            resolved = project.resolve_ref(info, ref)
            items.append([
                info.key, ref,
                [k for k in resolved
                 if project.functions[k].facts & RETURNS_VIEW],
            ])
    payload = json.dumps(items, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _report_scope(project: Project, files: Sequence[str],
                  changed: Set[str]) -> Set[str]:
    """Changed files plus their reverse summary dependents.

    A caller's ipd findings can change when a callee's summary does, so
    the scoped report includes every file holding a function that
    resolves a call into a changed file.
    """
    real = {os.path.realpath(p): p for p in files}
    scope = {real[c] for c in (os.path.realpath(c) for c in changed)
             if c in real}
    by_path: Dict[str, Set[str]] = {}
    for info in project.functions.values():
        for callee in info.callees:
            callee_path = project.functions[callee].path
            if callee_path != info.path:
                by_path.setdefault(callee_path, set()).add(info.path)
    for path in list(scope):
        scope.update(by_path.get(path, ()))
    return scope


def analyze_project(
    paths: Sequence[str],
    rules: Sequence[Rule],
    prules: Sequence[ProjectRule],
    config: Optional[LintConfig] = None,
    cache_path: Optional[str] = None,
    changed: Optional[Set[str]] = None,
) -> ProjectResult:
    """Full analysis: per-file rules + whole-program rules + audit."""
    config = config or LintConfig()
    files = list(iter_python_files(paths, config))

    cache: Optional[SummaryCache] = None
    if cache_path is not None:
        rule_ids = [r.id for r in rules] + [r.id for r in prules]
        cache = SummaryCache(cache_path, fingerprint(config, rule_ids))

    sources: Dict[str, Tuple[str, str]] = {}      # path -> (source, sha)
    per_file: Dict[str, List[Finding]] = {}
    sups: Dict[str, List[Suppression]] = {}
    models: Dict[str, dict] = {}

    for path in files:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        sha = content_hash(source)
        sources[path] = (source, sha)
        hit = cache.get_file(path, sha) if cache else None
        if hit is not None:
            model, findings, suppressions = hit
        else:
            ctx, findings = load_context(path, config, source)
            if ctx is None:
                model, suppressions = None, []
            else:
                findings = run_rules(ctx, rules)
                suppressions = parse_suppressions(ctx.lines)
                model = extract_model(ctx, suppressions)
            if cache:
                cache.put_file(path, sha, model, findings, suppressions)
        per_file[path] = findings
        sups[path] = suppressions
        if model is not None:
            models[path] = model

    project = build_project(models, config)

    proj_findings: Dict[str, List[Finding]] = {}

    def add(finding: Finding) -> None:
        proj_findings.setdefault(finding.path, []).append(finding)

    ast_rules: List[ProjectRule] = []
    for prule in prules:
        if getattr(prule, "needs_ast", False):
            ast_rules.append(prule)
            continue
        for finding in prule.check(project):
            add(finding)

    for prule in ast_rules:
        for path in files:
            model = models.get(path)
            if model is None:
                continue
            source, sha = sources[path]
            dep = _view_dep_hash(project, model)
            cached = cache.get_view(path, sha, dep) if cache else None
            if cached is not None:
                findings = cached
            else:
                ctx, _errs = load_context(path, config, source)
                findings = prule.scan_file(ctx, project) if ctx else []
                if cache:
                    cache.put_view(path, sha, dep, findings)
            for finding in findings:
                add(finding)

    all_findings: List[Finding] = []
    for path in files:
        combined = per_file[path] + proj_findings.get(path, [])
        apply_suppressions(combined, sups[path])
        combined.extend(audit_suppressions(path, sups[path]))
        all_findings.extend(combined)

    if changed is not None:
        scope = _report_scope(project, files, changed)
        all_findings = [f for f in all_findings if f.path in scope]

    all_findings.sort(key=Finding.sort_key)

    warm = False
    if cache:
        warm = cache.was_warm
        cache.prune(files)
        cache.save()
    return ProjectResult(findings=all_findings, project=project,
                         cache_was_warm=warm)
