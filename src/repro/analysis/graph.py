"""Whole-program layer: symbol table, call graph, and function summaries.

The per-file rules (PR 6) deliberately stop at file boundaries; the
failures that cost whole bench runs do not.  This module builds the
project model the ``ipd``/``rpc`` rule families consume:

* **Extraction** (:func:`extract_model`) — one pure-data summary per
  file: every function's direct facts (blocking calls, det-taint sites,
  materialize sites, view returns, lock acquisition), its outgoing call
  references, the class table (bases, ``serializes_stripes`` literals,
  methods), and the RPC protocol surface (kinds registered vs sent).
  The model is plain JSON — that is what the incremental cache stores.

* **Resolution** (:class:`Project`) — call references are resolved
  against the project symbol table: canonical dotted names through each
  file's import-alias map, bare names within their module (enclosing
  function first), ``self.``/``super().`` methods over the known class
  hierarchy, and unknown-receiver method calls by a conservative join
  over every class defining that method name.  This is a *may* analysis:
  over-approximating the callee set keeps the derived facts sound.

* **Fixpoint** (:func:`solve`) — transitive facts (may-block, det
  taint, returns-view) are computed bottom-up over Tarjan SCCs of the
  call graph; within an SCC the transfer is iterated to a fixpoint.
  Everything is visited in sorted order, so the solved summaries — and
  every report derived from them — are byte-deterministic.

The module is engine-free: it imports nothing from the simulator or
numpy, and never executes analyzed code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import ast

from repro.analysis.core import FileContext, LintConfig, Suppression
from repro.analysis.vocab import (
    BLOCKING_CALL_TAILS,
    MATERIALIZE_ATTR_TAILS,
    MATERIALIZE_CALLS,
    PLANE_DISPATCH_TAILS,
    WALLCLOCK_CALLS,
    is_entropy_call,
    view_call as _view_call,
)

# Schema version: bump on any change to the model dict layout so stale
# cache entries are discarded wholesale instead of misread.
MODEL_VERSION = 1

# ----------------------------------------------------------------------
# fact bits
# ----------------------------------------------------------------------
YIELDS = 1 << 0          # function body contains a yield (generator)
BLOCKING = 1 << 1        # direct blocking yield point (rpc/sleep/...)
MAY_BLOCK = 1 << 2       # BLOCKING, transitively through callees
RETURNS_VIEW = 1 << 3    # returns a zero-copy view (direct or via callee)
MATERIALIZES = 1 << 4    # direct byte-materializing call site
GHOST_DISPATCH = 1 << 5  # branches on the payload plane (is_ghost / type)
WALLCLOCK = 1 << 6       # direct unsuppressed wall-clock read
ENTROPY = 1 << 7         # direct unsuppressed ambient-entropy draw
TAINTED = 1 << 8         # WALLCLOCK|ENTROPY, transitively through callees
ACQUIRES_LOCK = 1 << 9   # calls serialize_stripe

FACT_NAMES = (
    (YIELDS, "yields"),
    (BLOCKING, "blocking"),
    (MAY_BLOCK, "may-block"),
    (RETURNS_VIEW, "returns-view"),
    (MATERIALIZES, "materializes"),
    (GHOST_DISPATCH, "ghost-dispatch"),
    (WALLCLOCK, "wallclock"),
    (ENTROPY, "entropy"),
    (TAINTED, "det-tainted"),
    (ACQUIRES_LOCK, "acquires-lock"),
)


def fact_names(facts: int) -> List[str]:
    return [name for bit, name in FACT_NAMES if facts & bit]


# ----------------------------------------------------------------------
# extraction: file AST -> plain-data model
# ----------------------------------------------------------------------
def module_name(posix_path: str) -> str:
    """Dotted module name for a file path, matching how it is imported.

    Files under a ``src`` segment get the path after the last ``src``
    (``src/repro/fs/osd.py`` -> ``repro.fs.osd``); elsewhere the longest
    all-identifier path suffix is kept, so fixture trees in temp
    directories still resolve their own intra-package imports.
    """
    parts = posix_path[:-3].split("/") if posix_path.endswith(".py") \
        else posix_path.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        last = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[last + 1:]
    else:
        keep: List[str] = []
        for part in reversed(parts):
            if part.isidentifier():
                keep.append(part)
            else:
                break
        parts = list(reversed(keep))
    return ".".join(parts) or "_"


def _classify_ref(ctx: FileContext, call: ast.Call) -> Optional[str]:
    """Encode who a call refers to, as resolvable-later plain data.

    ``d:<canonical>`` — dotted name with import aliases resolved;
    ``n:<name>`` — bare local/module-level name;
    ``m:self.<attr>`` / ``m:super.<attr>`` / ``m:?.<attr>`` — method
    call with known / parent / unknown receiver.
    """
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in ctx.module_aliases:
            return f"d:{ctx.canonical_call(call)}"
        return f"n:{func.id}"
    if isinstance(func, ast.Attribute):
        dotted = ctx.dotted(func)
        if dotted is not None:
            head = dotted.split(".", 1)[0]
            if head in ctx.module_aliases:
                return f"d:{ctx.canonical_call(call)}"
            if head == "self":
                comps = dotted.split(".")
                if len(comps) == 2:
                    return f"m:self.{comps[1]}"
                return f"m:?.{func.attr}"
            return f"m:?.{func.attr}"
        inner = func.value
        if (isinstance(inner, ast.Call) and isinstance(inner.func, ast.Name)
                and inner.func.id == "super"):
            return f"m:super.{func.attr}"
        return f"m:?.{func.attr}"
    return None


def _unwrap(node: ast.AST) -> ast.AST:
    return node.value if isinstance(node, (ast.YieldFrom, ast.Await)) \
        else node


class _FunctionExtractor:
    """Facts + call references for one function body (own nodes only)."""

    def __init__(self, ctx: FileContext, func: ast.FunctionDef,
                 det_allowed: Dict[int, Set[str]]):
        self.ctx = ctx
        self.func = func
        self.det_allowed = det_allowed
        self.facts = 0
        self.calls: List[list] = []    # [ref, line, col, in_lock, nb]
        self.rets: List[str] = []      # refs whose value is returned
        self.mat: List[list] = []      # [display, line, col]
        self.det: List[list] = []      # [display, line, col, kind]
        self.block: List[list] = []    # [tail, line, col]
        self._names: Dict[str, tuple] = {}   # name -> ("v", src)|("r", ref)
        self._locked_ids: Set[int] = set()
        self._locked_all = func.name.endswith("_locked")

    # -- helpers -------------------------------------------------------
    def _suppressed(self, line: int, rule: str) -> bool:
        return rule in self.det_allowed.get(line, ())

    def _display(self, call: ast.Call) -> str:
        return (self.ctx.dotted(call.func)
                or getattr(call.func, "attr", None)
                or type(call.func).__name__)

    def _record_call(self, call: ast.Call) -> None:
        dotted = self.ctx.dotted(call.func)
        tail = dotted.rsplit(".", 1)[-1] if dotted else (
            call.func.attr if isinstance(call.func, ast.Attribute) else "")
        canon = self.ctx.canonical_call(call)
        line, col = call.lineno, call.col_offset + 1
        if tail == "serialize_stripe":
            self.facts |= ACQUIRES_LOCK
        if (tail in BLOCKING_CALL_TAILS
                and not self._suppressed(line, "lock-yield-while-locked")):
            # Compositional suppression: a blocking site accepted with a
            # reasoned allow() (PARIX original-ship) must not also flag
            # every transitive caller through the summary.
            self.facts |= BLOCKING
            self.block.append([tail, line, col])
        if canon is not None:
            if (canon in WALLCLOCK_CALLS
                    and not self._suppressed(line, "det-wallclock")):
                self.facts |= WALLCLOCK
                self.det.append([canon, line, col, "wallclock"])
            elif (is_entropy_call(canon, bool(call.args or call.keywords))
                    and not self._suppressed(line, "det-entropy")):
                self.facts |= ENTROPY
                self.det.append([canon, line, col, "entropy"])
        if (canon in MATERIALIZE_CALLS
                or tail in MATERIALIZE_ATTR_TAILS):
            self.facts |= MATERIALIZES
            self.mat.append([self._display(call), line, col])
        if tail in PLANE_DISPATCH_TAILS:
            self.facts |= GHOST_DISPATCH
        ref = _classify_ref(self.ctx, call)
        if ref is not None:
            in_lock = 1 if (self._locked_all
                            or id(call) in self._locked_ids) else 0
            # A call edge on a `lock-yield-while-locked`-suppressed line
            # is part of the audited exception: the callee's MAY_BLOCK
            # must not re-enter through it (the lexical fact above is
            # already stripped; the edge has to be too, or the summary
            # re-flags every transitive caller the suppression excused).
            nb = 1 if self._suppressed(line, "lock-yield-while-locked") else 0
            self.calls.append([ref, line, col, in_lock, nb])

    def _ret_value(self, value: ast.AST) -> None:
        value = _unwrap(value)
        if isinstance(value, ast.Tuple):
            for elt in value.elts:
                self._ret_value(elt)
            return
        if isinstance(value, ast.Call):
            if _view_call(value) is not None:
                self.facts |= RETURNS_VIEW
                return
            ref = _classify_ref(self.ctx, value)
            if ref is not None:
                self.rets.append(ref)
            return
        if isinstance(value, ast.Name):
            bound = self._names.get(value.id)
            if bound is None:
                return
            if bound[0] == "v":
                self.facts |= RETURNS_VIEW
            else:
                self.rets.append(bound[1])

    def _assign(self, targets: Sequence[ast.AST], value: ast.AST) -> None:
        value = _unwrap(value)
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Call):
                if _view_call(value) is not None:
                    self._names[target.id] = ("v", self._display(value))
                    continue
                ref = _classify_ref(self.ctx, value)
                if ref is not None:
                    self._names[target.id] = ("r", ref)
                    continue
            self._names.pop(target.id, None)

    # -- traversal -----------------------------------------------------
    def run(self) -> dict:
        # Two passes: serialize_stripe argument subtrees must be known
        # before any call inside them is flagged in-lock, and textual
        # order of the walk must not matter for that flag.
        for node in self._own_nodes():
            if (isinstance(node, ast.Call) and isinstance(
                    node.func, (ast.Name, ast.Attribute))):
                dotted = self.ctx.dotted(node.func)
                tail = dotted.rsplit(".", 1)[-1] if dotted else ""
                if tail == "serialize_stripe":
                    for arg in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        self._locked_ids.update(
                            id(n) for n in ast.walk(arg))
        for stmt in self.func.body:
            self._visit(stmt)
        entry = {
            "line": self.func.lineno,
            "facts": self.facts,
            "calls": self.calls,
        }
        # Optional keys are omitted when empty: smaller cache files and a
        # stable serialization for hashing.
        if self.rets:
            entry["rets"] = sorted(set(self.rets))
        if self.mat:
            entry["mat"] = self.mat
        if self.det:
            entry["det"] = self.det
        if self.block:
            entry["block"] = self.block
        return entry

    def _own_nodes(self) -> Iterator[ast.AST]:
        stack: List[ast.AST] = list(self.func.body)
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.Lambda)):
                    continue
                stack.append(child)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            self.facts |= YIELDS
        if isinstance(node, ast.Name) and node.id == "GhostExtent":
            # Referencing the ghost type (construction, `type(x) is
            # GhostExtent`) means the function is plane-aware by
            # construction — a dispatch point for reachability.
            self.facts |= GHOST_DISPATCH
        if isinstance(node, ast.Call):
            self._record_call(node)
        if isinstance(node, ast.Assign):
            for child in ast.iter_child_nodes(node):
                self._visit(child)
            self._assign(node.targets, node.value)
            return
        if isinstance(node, ast.Return) and node.value is not None:
            for child in ast.iter_child_nodes(node):
                self._visit(child)
            self._ret_value(node.value)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child)


# Rules whose per-site suppressions also strip the fact from the
# summary, so one audited exception does not flag N transitive callers.
_COMPOSITIONAL = ("det-wallclock", "det-entropy", "lock-yield-while-locked")


def _det_allow_map(
    suppressions: Sequence[Suppression],
) -> Dict[int, Set[str]]:
    """target line -> compositionally-suppressed rules at that line.

    A site suppressed for ``det-wallclock``/``det-entropy``/
    ``lock-yield-while-locked`` is an *audited exception* — it must not
    also poison every transitive caller's summary, or one suppression
    would need N more at every level of the call chain.
    """
    out: Dict[int, Set[str]] = {}
    for sup in suppressions:
        for rule in sup.rules:
            if rule in _COMPOSITIONAL:
                out.setdefault(sup.target_line, set()).add(rule)
    return out


def extract_model(ctx: FileContext,
                  suppressions: Sequence[Suppression]) -> dict:
    """The cacheable whole-program summary of one parsed file."""
    det_allowed = _det_allow_map(suppressions)
    functions: Dict[str, dict] = {}
    classes: Dict[str, dict] = {}
    reg: List[list] = []
    sent: List[list] = []
    dyn: List[list] = []

    def walk_body(body: Sequence[ast.stmt], prefix: str,
                  cls: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                entry = _FunctionExtractor(ctx, stmt, det_allowed).run()
                if cls is not None:
                    entry["cls"] = cls
                functions[qual] = entry
                walk_body(stmt.body, f"{qual}.", cls=None)
            elif isinstance(stmt, ast.ClassDef) and not prefix:
                bases = []
                for base in stmt.bases:
                    dotted = ctx.dotted(base)
                    if dotted is None:
                        continue
                    head, _, rest = dotted.partition(".")
                    origin = ctx.module_aliases.get(head)
                    if origin is not None:
                        dotted = f"{origin}.{rest}" if rest else origin
                    bases.append(dotted)
                serializes = None
                methods = []
                for sub in stmt.body:
                    if (isinstance(sub, ast.Assign)
                            and any(isinstance(t, ast.Name)
                                    and t.id == "serializes_stripes"
                                    for t in sub.targets)
                            and isinstance(sub.value, ast.Constant)
                            and isinstance(sub.value.value, bool)):
                        serializes = sub.value.value
                    elif isinstance(sub, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                        methods.append(sub.name)
                classes[stmt.name] = {"bases": bases, "methods": methods}
                if serializes is not None:
                    classes[stmt.name]["serializes"] = serializes
                walk_body(stmt.body, f"{stmt.name}.", cls=stmt.name)

    walk_body(ctx.tree.body, "", None)

    # RPC protocol surface: kinds registered vs kinds sent.  The kind
    # argument is positional arg 0 for register(kind, handler) and arg 1
    # for rpc/rpc_delivered/rpc_with_retry/send(dst, kind, ...); a
    # non-constant kind
    # (outside the transport layer) is a dynamic send.
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        tail = None
        if isinstance(node.func, ast.Attribute):
            tail = node.func.attr
        elif isinstance(node.func, ast.Name):
            tail = node.func.id
        if tail == "register" and node.args:
            kind = node.args[0]
            if isinstance(kind, ast.Constant) and isinstance(kind.value, str):
                reg.append([kind.value, node.lineno, node.col_offset + 1])
        elif tail in ("rpc", "rpc_delivered", "rpc_with_retry", "send"):
            kind = None
            if len(node.args) >= 2:
                kind = node.args[1]
            else:
                for kw in node.keywords:
                    if kw.arg == "kind":
                        kind = kw.value
            if kind is None:
                continue  # generator .send(value) etc. — not a protocol op
            if isinstance(kind, ast.Constant) and isinstance(kind.value, str):
                sent.append([kind.value, node.lineno, node.col_offset + 1])
            else:
                dyn.append([node.lineno, node.col_offset + 1])

    model = {
        "version": MODEL_VERSION,
        "module": module_name(ctx.posix_path),
        "functions": functions,
        "classes": classes,
    }
    if reg or sent or dyn:
        model["rpc"] = {"reg": reg, "sent": sent, "dyn": dyn}
    return model


# ----------------------------------------------------------------------
# project assembly + resolution
# ----------------------------------------------------------------------
@dataclass
class FunctionInfo:
    key: str                 # "<module>:<qualpath>"
    path: str
    module: str
    qual: str
    line: int
    facts: int
    calls: List[list]
    rets: List[str]
    mat: List[list]
    det: List[list]
    block: List[list]
    cls: Optional[str]
    transparent: bool        # lock-transparent module
    callees: List[str] = field(default_factory=list)       # resolved, sorted
    ret_callees: List[str] = field(default_factory=list)
    block_callees: List[str] = field(default_factory=list)  # minus nb edges


class Project:
    """The resolved whole-program model the ipd/rpc rules check."""

    def __init__(self, models: Dict[str, dict], config: LintConfig):
        self.config = config
        self.models = models
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, dict] = {}          # "<module>:<Class>"
        self._mod_of: Dict[str, str] = {}           # module -> rep. path
        self._mod_index: Dict[str, Optional[str]] = {}
        self._methods_by_name: Dict[str, List[str]] = {}
        self._build()

    # -- construction --------------------------------------------------
    def _build(self) -> None:
        for path in sorted(self.models):
            model = self.models[path]
            mod = model["module"]
            if mod not in self._mod_of:
                self._mod_of[mod] = path
            self._index_module(mod)
            posix = path.replace("\\", "/")
            transparent = any(part in posix for part in
                              self.config.lock_transparent_parts)
            for cname in sorted(model.get("classes", ())):
                self.classes[f"{mod}:{cname}"] = model["classes"][cname]
            for qual in sorted(model.get("functions", ())):
                entry = model["functions"][qual]
                key = f"{mod}:{qual}"
                self.functions[key] = FunctionInfo(
                    key=key, path=path, module=mod, qual=qual,
                    line=entry["line"], facts=entry["facts"],
                    calls=entry.get("calls", []),
                    rets=entry.get("rets", []),
                    mat=entry.get("mat", []),
                    det=entry.get("det", []),
                    block=entry.get("block", []),
                    cls=entry.get("cls"),
                    transparent=transparent,
                )
        for key, info in self.functions.items():
            if info.cls is not None:
                self._methods_by_name.setdefault(
                    info.qual.rsplit(".", 1)[-1], []).append(key)
        for lst in self._methods_by_name.values():
            lst.sort()
        for info in self.functions.values():
            callees: Set[str] = set()
            block: Set[str] = set()
            for ref, _line, _col, _lock, nb in info.calls:
                targets = self.resolve_ref(info, ref)
                callees.update(targets)
                if not nb:
                    block.update(targets)
            info.callees = sorted(callees)
            info.block_callees = sorted(block)
            rets: Set[str] = set()
            for ref in info.rets:
                rets.update(self.resolve_ref(info, ref))
            info.ret_callees = sorted(rets)

    def _index_module(self, mod: str) -> None:
        """Register every component-suffix of ``mod`` for lookup.

        ``repro.fs.osd`` answers to ``repro.fs.osd``, ``fs.osd`` and
        ``osd``; a suffix claimed by two different modules becomes
        ambiguous and resolves to nothing (conservative for *naming*,
        which only ever narrows the callee join).
        """
        parts = mod.split(".")
        for i in range(len(parts)):
            suffix = ".".join(parts[i:])
            if suffix not in self._mod_index:
                self._mod_index[suffix] = mod
            elif self._mod_index[suffix] != mod:
                self._mod_index[suffix] = None

    # -- symbol resolution ---------------------------------------------
    def _lookup_module(self, name: str) -> Optional[str]:
        return self._mod_index.get(name)

    def _class_key(self, dotted: str, home: str) -> Optional[str]:
        """Resolve a (possibly dotted) class name to a project class key."""
        if "." not in dotted:
            key = f"{home}:{dotted}"
            return key if key in self.classes else None
        modpart, _, cname = dotted.rpartition(".")
        mod = self._lookup_module(modpart)
        if mod is not None and f"{mod}:{cname}" in self.classes:
            return f"{mod}:{cname}"
        return None

    def _mro(self, class_key: str) -> List[str]:
        """Depth-first base-class chain (self first); cycle-safe."""
        out: List[str] = []
        seen: Set[str] = set()
        stack = [class_key]
        while stack:
            key = stack.pop(0)
            if key in seen or key not in self.classes:
                continue
            seen.add(key)
            out.append(key)
            home = key.split(":", 1)[0]
            bases = [self._class_key(b, home)
                     for b in self.classes[key].get("bases", ())]
            stack = [b for b in bases if b is not None] + stack
        return out

    def resolve_method(self, class_key: str, name: str,
                       skip_own: bool = False) -> Optional[str]:
        for key in self._mro(class_key)[1 if skip_own else 0:]:
            if name in self.classes[key].get("methods", ()):  # defined here
                fkey = f"{key}.{name}"
                if fkey in self.functions:
                    return fkey
        return None

    def serializes(self, class_key: str) -> bool:
        """Nearest ``serializes_stripes`` literal in the base chain."""
        for key in self._mro(class_key):
            val = self.classes[key].get("serializes")
            if val is not None:
                return val
        return False

    def resolve_ref(self, info: FunctionInfo, ref: str) -> List[str]:
        """Project function keys a call reference may reach (sorted)."""
        kind, _, name = ref.partition(":")
        if kind == "d":
            parts = name.split(".")
            if len(parts) >= 2:
                mod = self._lookup_module(".".join(parts[:-1]))
                if mod is not None:
                    key = f"{mod}:{parts[-1]}"
                    if key in self.functions:
                        return [key]
            if len(parts) >= 3:
                mod = self._lookup_module(".".join(parts[:-2]))
                if mod is not None:
                    ckey = f"{mod}:{parts[-2]}"
                    if ckey in self.classes:
                        found = self.resolve_method(ckey, parts[-1])
                        return [found] if found else []
            return []
        if kind == "n":
            # Enclosing-function nesting first, then module level.
            qual_parts = info.qual.split(".")
            for depth in range(len(qual_parts), 0, -1):
                key = f"{info.module}:{'.'.join(qual_parts[:depth])}.{name}"
                if key in self.functions:
                    return [key]
            key = f"{info.module}:{name}"
            return [key] if key in self.functions else []
        # method calls
        recv, _, mname = name.partition(".")
        if recv in ("self", "super") and info.cls is not None:
            found = self.resolve_method(f"{info.module}:{info.cls}", mname,
                                        skip_own=(recv == "super"))
            return [found] if found else []
        if recv in ("self", "super"):
            return []
        # Unknown receiver: resolve only when exactly one project class
        # defines a method of this name.  A full join over all definers
        # is the textbook conservative answer, but generic names
        # (``read``, ``write``) are defined by clients, stores and device
        # models alike, and joining them manufactures call chains that do
        # not exist — for a lint, a dropped ambiguous edge is a missed
        # finding, a fabricated edge is a false positive in CI.
        definers = self._methods_by_name.get(mname, ())
        return list(definers) if len(definers) == 1 else []

    # -- derived queries ----------------------------------------------
    def witness_path(self, start: str, bit: int,
                     avoid_transparent: bool = False,
                     block_edges: bool = False) -> List[str]:
        """Shortest sorted-order call path from ``start`` to a function
        carrying ``bit`` directly (inclusive); [] when unreachable.

        With ``block_edges`` the walk follows only edges that propagate
        MAY_BLOCK (suppressed call sites excluded), so a blocking witness
        never runs through an audited exception.
        """
        seen = {start}
        queue: List[Tuple[str, Tuple[str, ...]]] = [(start, (start,))]
        while queue:
            key, path = queue.pop(0)
            info = self.functions[key]
            if info.facts & bit:
                return list(path)
            edges = info.block_callees if block_edges else info.callees
            for callee in edges:
                nxt = self.functions.get(callee)
                if nxt is None or callee in seen:
                    continue
                if avoid_transparent and nxt.transparent:
                    continue
                seen.add(callee)
                queue.append((callee, path + (callee,)))
        return []


# ----------------------------------------------------------------------
# fixpoint: transitive facts over Tarjan SCCs
# ----------------------------------------------------------------------
def _tarjan_sccs(keys: List[str],
                 succs: Dict[str, List[str]]) -> List[List[str]]:
    """SCCs in reverse topological order (callees before callers).

    Iterative Tarjan over a deterministic (sorted) node and edge order:
    the emission order — and therefore everything the fixpoint derives —
    is identical on every run.
    """
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in keys:
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, i = work.pop()
            if i == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = succs.get(node, ())
            for j in range(i, len(children)):
                child = children[j]
                if child not in index:
                    work.append((node, j + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if recurse:
                continue
            if low[node] == index[node]:
                scc = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    scc.append(top)
                    if top == node:
                        break
                sccs.append(sorted(scc))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def solve(project: Project) -> None:
    """Propagate MAY_BLOCK / TAINTED / RETURNS_VIEW bottom-up in place."""
    funcs = project.functions
    keys = sorted(funcs)
    succs = {k: [c for c in funcs[k].callees if c in funcs] for k in keys}
    block_succs = {k: [c for c in funcs[k].block_callees if c in funcs]
                   for k in keys}
    ret_succs = {k: [c for c in funcs[k].ret_callees if c in funcs]
                 for k in keys}
    for k in keys:
        info = funcs[k]
        if info.facts & BLOCKING and not info.transparent:
            info.facts |= MAY_BLOCK
        if info.facts & (WALLCLOCK | ENTROPY):
            info.facts |= TAINTED

    def transfer(key: str) -> bool:
        info = funcs[key]
        before = info.facts
        for callee in block_succs[key]:
            if funcs[callee].facts & MAY_BLOCK and not info.transparent:
                info.facts |= MAY_BLOCK
        for callee in succs[key]:
            if funcs[callee].facts & TAINTED:
                info.facts |= TAINTED
        for callee in ret_succs[key]:
            if funcs[callee].facts & RETURNS_VIEW:
                info.facts |= RETURNS_VIEW
        return info.facts != before

    # Edges for SCC structure: call edges + return-value edges.
    all_succs = {k: sorted(set(succs[k]) | set(ret_succs[k])) for k in keys}
    for scc in _tarjan_sccs(keys, all_succs):
        changed = True
        while changed:
            changed = False
            for key in scc:
                if transfer(key):
                    changed = True


def build_project(models: Dict[str, dict], config: LintConfig) -> Project:
    """Assemble + solve: the one entry point the driver calls."""
    project = Project(models, config)
    solve(project)
    return project


# ----------------------------------------------------------------------
# graph dump (debugging artifact; uploaded by CI on lint failure)
# ----------------------------------------------------------------------
def graph_dump(project: Project) -> dict:
    functions = {}
    for key in sorted(project.functions):
        info = project.functions[key]
        functions[key] = {
            "path": info.path,
            "line": info.line,
            "facts": fact_names(info.facts),
            "callees": info.callees,
        }
        if info.ret_callees:
            functions[key]["returns-from"] = info.ret_callees
    classes = {}
    for key in sorted(project.classes):
        cls = dict(project.classes[key])
        cls["serializes-resolved"] = project.serializes(key)
        classes[key] = cls
    return {"version": MODEL_VERSION, "functions": functions,
            "classes": classes}
