"""Determinism rules.

The invariant: every simulated-output row in ``BENCH_scenarios.json`` is a
pure function of ``(code, seed)`` — ``repro bench --check-baseline`` diffs
them bit-for-bit across hosts and runs.  Anything that injects wall-clock
time, ambient entropy, or hash/readdir ordering into a code path that
feeds the event heap, an RNG cursor, or a result row silently breaks that
gate in a way that only shows up *after* a full bench run.  These rules
reject the constructs at review time instead.

Measurement code (the machine-local ``perf`` section, excluded from every
determinism gate by design) legitimately reads clocks — those sites carry
explicit suppressions whose reasons say exactly that.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import FileContext, Finding, Rule
from repro.analysis.vocab import (
    ENTROPY_CALLS as _ENTROPY_CALLS,
    FS_ORDER_CALLS as _FS_ORDER_CALLS,
    SEEDABLE_CALLS as _SEEDABLE,
    WALLCLOCK_CALLS as _WALLCLOCK_CALLS,
)


class WallClockRule(Rule):
    id = "det-wallclock"
    family = "determinism"
    description = ("wall-clock reads (time.*, datetime.now) in simulation "
                   "code break bit-identical bench rows")
    fixit = ("use virtual time (`sim.now`) inside the simulation; if this "
             "is machine-local measurement for the perf section, suppress "
             "with a reason saying so")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.canonical_call(node)
            if name in _WALLCLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"wall-clock call `{name}()` — nondeterministic across "
                    "runs/hosts, must not feed simulated outputs",
                )


class EntropyRule(Rule):
    id = "det-entropy"
    family = "determinism"
    description = ("ambient entropy (random module, os.urandom, uuid4, "
                   "unseeded generators) breaks seed-reproducibility")
    fixit = ("draw from the seeded per-purpose stream "
             "(`cluster.rng.get(name)` / `DrawCursor`); never the global "
             "`random` module or an unseeded constructor")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.canonical_call(node)
            if name is None:
                continue
            if name in _ENTROPY_CALLS or name.startswith("secrets."):
                yield self.finding(
                    ctx, node,
                    f"entropy source `{name}()` — unreproducible under a "
                    "fixed seed",
                )
            elif name in _SEEDABLE:
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        f"`{name}()` called without a seed — seeds from "
                        "ambient OS entropy",
                        fixit="pass an explicit seed / SeedSequence derived "
                              "from the experiment seed",
                    )
            elif (name.startswith("random.")
                  or name.startswith("numpy.random.")):
                # Module-level convenience functions share hidden global
                # state seeded from the environment.
                yield self.finding(
                    ctx, node,
                    f"global-state RNG call `{name}()` — shared hidden "
                    "stream, not derived from the experiment seed",
                )


def _is_unordered_expr(ctx: FileContext, node: ast.AST) -> Optional[str]:
    """A human description if ``node`` evaluates in nondeterministic order."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        name = ctx.canonical_call(node)
        if name in ("set", "frozenset"):
            return f"`{name}(...)`"
        if name in _FS_ORDER_CALLS:
            return f"`{name}(...)` (readdir order)"
        return None
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        # Set algebra: flag when either side is itself set-ish.
        if (_is_unordered_expr(ctx, node.left)
                or _is_unordered_expr(ctx, node.right)):
            return "a set-algebra expression"
    return None


class UnorderedIterationRule(Rule):
    id = "det-set-order"
    family = "determinism"
    description = ("iterating a set (or readdir listing) visits elements in "
                   "hash/OS order — differs across processes and hosts")
    fixit = "wrap the iterable in `sorted(...)` to pin a total order"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                # Materialising an unordered collection into a sequence
                # bakes the nondeterministic order into data.
                name = ctx.canonical_call(node)
                if name in ("list", "tuple", "enumerate") and node.args:
                    iters.append(node.args[0])
            for it in iters:
                what = _is_unordered_expr(ctx, it)
                if what:
                    yield self.finding(
                        ctx, it,
                        f"iteration over {what} — element order is "
                        "hash/OS-dependent, not reproducible",
                    )
