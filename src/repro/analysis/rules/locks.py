"""Lock-discipline rules for the per-stripe update serialization contract.

The invariant (PR 2): in every ``UpdateStrategy`` whose class declares
``serializes_stripes = True``, the data-block read-modify-write — and for
PARIX, the whole speculative protocol — must run under
``serialize_stripe``, exactly once.  The contract has three static
failure modes:

* an RMW primitive called *outside* any ``serialize_stripe`` wrapper
  races pipelined same-stripe updates (the parity-inconsistency bug the
  locks were introduced to close);
* a *nested* ``serialize_stripe`` on the same stripe self-deadlocks —
  today that only trips ``KeyedLock``'s runtime reentrancy check after a
  full scenario run; here it is rejected at review time;
* a blocking yield point (RPC, sleep, combinator wait) *inside* the
  critical section stretches the lock across simulated time other
  updates could have used — legal only when the protocol genuinely
  requires it (PARIX's original-ship), which is what suppression reasons
  are for.

Lexical conventions the rules understand: the generator passed to
``serialize_stripe(...)`` is a locked region, and so is any method whose
name ends in ``_locked`` (the PARIX convention for bodies that run under
the wrapper).  Drain/recycle methods (``drain``, ``_recycle*``) are
exempt from the unserialized-RMW rule: they run behind the harness's
post-workload barrier or their strategy's own exclusion lock.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.core import FileContext, Finding, Rule
from repro.analysis.vocab import BLOCKING_CALL_TAILS as _BLOCKING_CALLS

# Stripe-state mutation primitives that must be lock-wrapped.
_RMW_CALLS = ("rmw_delta", "write_range")


def _call_tail(ctx: FileContext, call: ast.Call) -> str:
    """Last component of the called dotted name ('' when unresolvable)."""
    name = ctx.dotted(call.func)
    return name.rsplit(".", 1)[-1] if name else ""


def _serializing_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    """Classes that declare ``serializes_stripes = True`` in their body."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if (isinstance(stmt, ast.Assign)
                    and any(isinstance(t, ast.Name)
                            and t.id == "serializes_stripes"
                            for t in stmt.targets)
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is True):
                yield node
                break


def _serialize_calls(root: ast.AST, ctx: FileContext) -> List[ast.Call]:
    return [
        n for n in ast.walk(root)
        if isinstance(n, ast.Call) and _call_tail(ctx, n) == "serialize_stripe"
    ]


def _locked_subtrees(
    func: ast.FunctionDef, ctx: FileContext
) -> List[Tuple[ast.AST, str]]:
    """(root, description) for every locked lexical region in ``func``."""
    regions: List[Tuple[ast.AST, str]] = []
    if func.name.endswith("_locked"):
        regions.append((func, f"method `{func.name}` (runs under the "
                              "stripe lock by naming convention)"))
        return regions
    for call in _serialize_calls(func, ctx):
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            regions.append((arg, "the body passed to `serialize_stripe`"))
    return regions


def _methods(cls: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


class UnserializedRMWRule(Rule):
    id = "lock-rmw-unserialized"
    family = "locks"
    description = ("stripe-state RMW outside serialize_stripe in a "
                   "serializes_stripes strategy races pipelined updates")
    fixit = ("route the call through `self.serialize_stripe(key, body)`, "
             "or move it into a `*_locked` helper invoked under the "
             "wrapper")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in _serializing_classes(ctx.tree):
            for func in _methods(cls):
                if (func.name.endswith("_locked") or func.name == "drain"
                        or func.name.startswith("_recycle")):
                    continue
                wrapped: Set[int] = set()
                for call in _serialize_calls(func, ctx):
                    for arg in list(call.args) + [
                        kw.value for kw in call.keywords
                    ]:
                        wrapped.update(id(n) for n in ast.walk(arg))
                for node in ast.walk(func):
                    if (isinstance(node, ast.Call)
                            and _call_tail(ctx, node) in _RMW_CALLS
                            and id(node) not in wrapped):
                        yield self.finding(
                            ctx, node,
                            f"`{ctx.dotted(node.func)}` in "
                            f"`{cls.name}.{func.name}` mutates stripe state "
                            "outside any serialize_stripe wrapper",
                        )


class NestedSerializeRule(Rule):
    id = "lock-nested-serialize"
    family = "locks"
    description = ("nested serialize_stripe double-acquires the per-stripe "
                   "lock — a guaranteed self-deadlock (runtime reentrancy "
                   "check fires only after a full run)")
    fixit = ("unnest: the outer wrapper already holds the stripe lock for "
             "the whole body; pass the inner generator directly")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.endswith("_locked"):
                    for call in _serialize_calls(node, ctx):
                        yield self.finding(
                            ctx, call,
                            f"serialize_stripe inside `{node.name}`, which "
                            "already runs under the stripe lock",
                        )
            if not isinstance(node, ast.Call):
                continue
            if _call_tail(ctx, node) != "serialize_stripe":
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for inner in _serialize_calls(arg, ctx):
                    yield self.finding(
                        ctx, inner,
                        "serialize_stripe nested inside another "
                        "serialize_stripe's body",
                    )


class YieldWhileLockedRule(Rule):
    id = "lock-yield-while-locked"
    family = "locks"
    description = ("a blocking yield point (RPC, sleep, combinator wait) "
                   "inside a serialize_stripe critical section holds the "
                   "stripe lock across simulated time")
    fixit = ("move the blocking operation after the critical section "
             "(compute under the lock, communicate outside it); if the "
             "protocol requires it — e.g. PARIX's original-ship-before-ack "
             "— suppress with that reason")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in _serializing_classes(ctx.tree):
            for func in _methods(cls):
                for root, where in _locked_subtrees(func, ctx):
                    for node in ast.walk(root):
                        if not isinstance(node, ast.Call):
                            continue
                        tail = _call_tail(ctx, node)
                        if tail in _BLOCKING_CALLS:
                            yield self.finding(
                                ctx, node,
                                f"blocking `{tail}` inside {where} of "
                                f"`{cls.name}.{func.name}` — stripe lock "
                                "held across the wait",
                            )
