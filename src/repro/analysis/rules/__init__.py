"""Rule registry: every shipped rule, grouped by family.

Adding a rule = subclass :class:`repro.analysis.core.Rule`, give it a
unique kebab-case ``id`` and a ``family``, and list it here.  The CLI,
the reporters and the fixture tests all discover rules through
:func:`all_rules`, so registration is the single point of truth.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.core import Rule
from repro.analysis.rules.aliasing import ViewAcrossYieldRule, ViewEscapeRule
from repro.analysis.rules.baseline import DeadImportRule, UnreachableCodeRule
from repro.analysis.rules.determinism import (
    EntropyRule,
    UnorderedIterationRule,
    WallClockRule,
)
from repro.analysis.rules.hotpath import (
    HotPathAllocRule,
    HotPathClosureRule,
    HotPathFStringRule,
)
from repro.analysis.rules.locks import (
    NestedSerializeRule,
    UnserializedRMWRule,
    YieldWhileLockedRule,
)
from repro.analysis.rules.plane import PlaneBranchRule


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule (rules are stateless)."""
    return [
        # determinism — bit-identical bench rows depend on these
        WallClockRule(),
        EntropyRule(),
        UnorderedIterationRule(),
        # lock discipline — per-stripe serialization contract
        UnserializedRMWRule(),
        NestedSerializeRule(),
        YieldWhileLockedRule(),
        # zero-copy aliasing — view lifetime across yields
        ViewAcrossYieldRule(),
        ViewEscapeRule(),
        # payload-plane discipline — generators stay plane-blind
        PlaneBranchRule(),
        # hot-path hygiene — the hand-optimised kernel files
        HotPathFStringRule(),
        HotPathClosureRule(),
        HotPathAllocRule(),
        # baseline hygiene — pyflakes-style floor
        DeadImportRule(),
        UnreachableCodeRule(),
    ]


def rules_by_id(ids: Optional[Sequence[str]] = None) -> Dict[str, Rule]:
    """Registered rules keyed by id, optionally restricted to ``ids``."""
    table = {rule.id: rule for rule in all_rules()}
    if ids is None:
        return table
    unknown = sorted(set(ids) - set(table))
    if unknown:
        known = ", ".join(sorted(table))
        raise ValueError(f"unknown rule id(s) {unknown}; known: {known}")
    return {rid: table[rid] for rid in ids}
