"""Rule registry: every shipped rule, grouped by family.

Adding a per-file rule = subclass :class:`repro.analysis.core.Rule`,
give it a unique kebab-case ``id`` and a ``family``, and list it in
:func:`all_rules`; whole-program rules subclass
:class:`~repro.analysis.core.ProjectRule` and go in
:func:`project_rules`.  The CLI, the reporters and the fixture tests
all discover rules through these two functions, so registration is the
single point of truth.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.core import ProjectRule, Rule
from repro.analysis.rules.aliasing import ViewAcrossYieldRule, ViewEscapeRule
from repro.analysis.rules.baseline import DeadImportRule, UnreachableCodeRule
from repro.analysis.rules.determinism import (
    EntropyRule,
    UnorderedIterationRule,
    WallClockRule,
)
from repro.analysis.rules.hotpath import (
    HotPathAllocRule,
    HotPathClosureRule,
    HotPathFStringRule,
)
from repro.analysis.rules.locks import (
    NestedSerializeRule,
    UnserializedRMWRule,
    YieldWhileLockedRule,
)
from repro.analysis.rules.ipd import (
    DetTaintIpdRule,
    GhostMaterializeIpdRule,
    ViewAcrossYieldIpdRule,
    YieldUnderLockIpdRule,
)
from repro.analysis.rules.plane import PlaneBranchRule
from repro.analysis.rules.rpc import DeadHandlerRule, UnhandledMessageRule


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule (rules are stateless)."""
    return [
        # determinism — bit-identical bench rows depend on these
        WallClockRule(),
        EntropyRule(),
        UnorderedIterationRule(),
        # lock discipline — per-stripe serialization contract
        UnserializedRMWRule(),
        NestedSerializeRule(),
        YieldWhileLockedRule(),
        # zero-copy aliasing — view lifetime across yields
        ViewAcrossYieldRule(),
        ViewEscapeRule(),
        # payload-plane discipline — generators stay plane-blind
        PlaneBranchRule(),
        # hot-path hygiene — the hand-optimised kernel files
        HotPathFStringRule(),
        HotPathClosureRule(),
        HotPathAllocRule(),
        # baseline hygiene — pyflakes-style floor
        DeadImportRule(),
        UnreachableCodeRule(),
    ]


def project_rules() -> List[ProjectRule]:
    """Fresh instances of every whole-program (ipd/rpc) rule."""
    return [
        # ipd — transitive closures of the per-file families
        YieldUnderLockIpdRule(),
        ViewAcrossYieldIpdRule(),
        GhostMaterializeIpdRule(),
        DetTaintIpdRule(),
        # rpc — protocol surface: kinds sent vs handlers registered
        UnhandledMessageRule(),
        DeadHandlerRule(),
    ]


def rules_by_id(
    ids: Optional[Sequence[str]] = None,
) -> Dict[str, Union[Rule, ProjectRule]]:
    """Registered rules keyed by id, optionally restricted to ``ids``."""
    table: Dict[str, Union[Rule, ProjectRule]] = {
        rule.id: rule for rule in all_rules()
    }
    for prule in project_rules():
        table[prule.id] = prule
    if ids is None:
        return table
    unknown = sorted(set(ids) - set(table))
    if unknown:
        known = ", ".join(sorted(table))
        raise ValueError(f"unknown rule id(s) {unknown}; known: {known}")
    return {rid: table[rid] for rid in ids}
