"""Zero-copy aliasing rules.

The invariant (PR 4's zero-copy data plane): ``read_range`` / ``peek`` /
log-index ``lookup*`` return **read-only views of live buffers**, valid
only until the next write to the underlying block — in practice, until
the next ``yield``, because any other process may run then and overwrite
the bytes.  Code must either consume a view synchronously (compute the
delta before yielding) or take an explicit snapshot (``.copy()`` /
``bytes(...)``) before parking.  Violations are silent use-after-
overwrite: the scenario completes, the parity is wrong, and only the
drain-consistency gate catches it — a full bench run later.

Two rules:

* ``alias-view-across-yield`` — a local variable bound to a view is read
  after a later yield point without an intervening snapshot;
* ``alias-view-escape`` — a view is stored onto an object attribute
  (``self.x = ...read_range(...)``), escaping the statement scope where
  its validity can be reasoned about at all.

The first rule is a linear, source-order scan (loops are treated
textually); that is the usual lint trade-off, and suppressions with
reasons cover the rare intentional case.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterator, List, Optional

from repro.analysis.core import FileContext, Finding, Rule
from repro.analysis.vocab import view_call as _view_call


def _direct_view_source(node: ast.AST) -> Optional[str]:
    """Source description when ``node`` is a direct view-returning call."""
    call = _view_call(node)
    return call.func.attr if call is not None else None


class _Taint:
    __slots__ = ("epoch", "source", "line")

    def __init__(self, epoch: int, source: str, line: int):
        self.epoch = epoch
        self.source = source
        self.line = line


class _FunctionScan:
    """Source-order event scan of one function body.

    ``view_source`` classifies an expression: it returns a human-readable
    source description when the expression produces a zero-copy view, or
    None.  The per-file rules use the lexical ``read_range``/``peek``
    tables; the interprocedural ``ipd-view-across-yield`` rule plugs in a
    summary-based predicate (helper calls whose transitive return value
    is a view) and reuses the exact same lifetime scan, so the two rule
    generations can never disagree about what "used across a yield"
    means.
    """

    def __init__(self, rule: Rule, ctx: FileContext, func: ast.FunctionDef,
                 view_source: Callable[[ast.AST], Optional[str]]
                 = _direct_view_source):
        self.rule = rule
        self.ctx = ctx
        self.func = func
        self.view_source = view_source
        self.epoch = 0
        self.taints: Dict[str, _Taint] = {}
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        for stmt in self.func.body:
            self._visit(stmt)
        return self.findings

    # ------------------------------------------------------------------
    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # nested scopes have their own scan / own variables
        if isinstance(node, ast.Assign):
            self._visit(node.value)
            self._assign(node.targets, node.value)
            return
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            self._visit(node.value)
            self._assign([node.target], node.value)
            return
        if isinstance(node, ast.AugAssign):
            self._visit(node.value)
            self._use_names(node.target)
            return
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self._visit(node.value)
            self.epoch += 1
            return
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            self._use(node)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _assign(self, targets: List[ast.AST], value: ast.AST) -> None:
        source = self.view_source(value)
        for target in targets:
            if isinstance(target, ast.Name):
                if source is not None:
                    self.taints[target.id] = _Taint(
                        self.epoch, source, target.lineno
                    )
                else:
                    # Any other reassignment (including an explicit
                    # snapshot `x = x.copy()`) detaches the name.
                    self.taints.pop(target.id, None)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        self.taints.pop(elt.id, None)

    def _use_names(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                self._use(sub)

    def _use(self, node: ast.Name) -> None:
        taint = self.taints.get(node.id)
        if taint is None or taint.epoch == self.epoch:
            return
        self.findings.append(self.rule.finding(
            self.ctx, node,
            f"`{node.id}` holds a zero-copy view from `{taint.source}` "
            f"(line {taint.line}) and is read after a yield point — the "
            "underlying buffer may have been overwritten",
        ))
        del self.taints[node.id]  # one report per tainted binding


class ViewAcrossYieldRule(Rule):
    id = "alias-view-across-yield"
    family = "aliasing"
    description = ("a read_range/peek/lookup view used after a later yield "
                   "point without an explicit snapshot is use-after-"
                   "overwrite")
    fixit = ("snapshot before parking: `x = x.copy()` (ndarray) or "
             "`x = bytes(x)`; or consume the view synchronously before "
             "the yield")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from _FunctionScan(self, ctx, node).run()


class ViewEscapeRule(Rule):
    id = "alias-view-escape"
    family = "aliasing"
    description = ("storing a zero-copy view on an attribute lets it "
                   "outlive every lifetime bound the contract gives it")
    fixit = ("store a snapshot instead: `self.x = (...).copy()` — or keep "
             "the view local and consume it synchronously")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if value is None:
                continue
            call = _view_call(value)
            if call is None:
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    yield self.finding(
                        ctx, target,
                        f"zero-copy view from `{call.func.attr}` stored "
                        "into a non-local target — it can be read after "
                        "arbitrary later writes to the source buffer",
                    )
