"""RPC protocol rules: message kinds sent vs handlers registered.

The transport (``fs/messages.py``) drops a message whose kind has no
registered handler into a reply-timeout — a hang that surfaces as a
scenario deadlock long after the typo that caused it.  The inverse —
a handler registered for a kind nothing ever sends — is dead protocol
surface that rots silently.  Both are whole-program properties: senders
and handlers live in different modules by design (client/MDS/OSD/
strategies), so no per-file rule can check them.

Kinds are collected from constant-string arguments to ``register(kind,
handler)`` and ``rpc/rpc_delivered/rpc_with_retry/send(dst, kind, ...)``.
A variable
kind outside the transport layer (which forwards caller-supplied kinds
by design) is a *dynamic send*: it may exercise any handler, so the
dead-handler rule disarms project-wide rather than guess.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.core import Finding, ProjectRule
from repro.analysis.graph import Project


def _protocol(project: Project) -> Tuple[
    Dict[str, List[Tuple[str, int, int]]],
    Dict[str, List[Tuple[str, int, int]]],
    List[Tuple[str, int, int]],
]:
    """(registered, sent, dynamic-sends) over every analyzed file."""
    reg: Dict[str, List[Tuple[str, int, int]]] = {}
    sent: Dict[str, List[Tuple[str, int, int]]] = {}
    dyn: List[Tuple[str, int, int]] = []
    for path in sorted(project.models):
        rpc = project.models[path].get("rpc")
        if not rpc:
            continue
        posix = path.replace("\\", "/")
        transport = any(part in posix for part in
                        project.config.rpc_transport_parts)
        for kind, line, col in rpc.get("reg", ()):
            reg.setdefault(kind, []).append((path, line, col))
        for kind, line, col in rpc.get("sent", ()):
            if not transport:
                sent.setdefault(kind, []).append((path, line, col))
        if not transport:
            for line, col in rpc.get("dyn", ()):
                dyn.append((path, line, col))
    return reg, sent, dyn


class UnhandledMessageRule(ProjectRule):
    id = "rpc-unhandled-message"
    family = "rpc"
    description = ("a message kind is sent but no host ever registers a "
                   "handler for it — the send times out as a scenario "
                   "deadlock at runtime")
    fixit = ("register a handler for the kind (or fix the kind-string "
             "typo at the send site)")

    def check(self, project: Project) -> Iterator[Finding]:
        reg, sent, _dyn = _protocol(project)
        for kind in sorted(sent):
            if kind in reg:
                continue
            for path, line, col in sent[kind]:
                yield self.finding(
                    path, line, col,
                    f"message kind `{kind}` is sent here but never "
                    "registered by any handler",
                )


class DeadHandlerRule(ProjectRule):
    id = "rpc-dead-handler"
    family = "rpc"
    description = ("a handler is registered for a message kind nothing "
                   "ever sends — dead protocol surface")
    fixit = ("delete the registration (or the handler's sender was "
             "renamed: fix the kind string); if kinds are sent "
             "dynamically on purpose, that module belongs in "
             "rpc_transport_parts")

    def check(self, project: Project) -> Iterator[Finding]:
        reg, sent, dyn = _protocol(project)
        if dyn:
            # A dynamic send may exercise any handler; guessing which
            # would make this rule's output depend on unknowable data
            # flow.  Disarm rather than emit unfalsifiable findings.
            return
        sent_kinds: Set[str] = set(sent)
        for kind in sorted(reg):
            if kind in sent_kinds:
                continue
            for path, line, col in reg[kind]:
                yield self.finding(
                    path, line, col,
                    f"handler registered for kind `{kind}` but nothing "
                    "in the project sends it",
                )
