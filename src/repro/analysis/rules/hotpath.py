"""Hot-path hygiene rules for the hand-optimised kernel modules.

The invariant (PR 4): ``sim/core.py`` and ``sim/events.py`` are the inner
loop of every experiment — millions of kernel transitions per bench row —
and were hand-tuned to make each transition attribute stores and integer
compares only.  The single biggest historical regression source was
incidental allocation creeping back in: an f-string debug name in an
event constructor once dominated ``Timeout`` construction cost.  These
rules freeze that discipline: no f-strings / ``str.format`` / ``%``
formatting, no closures, no comprehensions inside the hot modules'
functions.

Cold subtrees are exempt by construction rather than by suppression:
anything inside a ``raise`` statement, inside the arguments of a
``fail(...)`` / ``_crash(...)`` call (both mark a process/simulation
dying), or inside ``__repr__`` (debug aid) never runs on the steady-state
path.  Everything else needs a written suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.analysis.core import FileContext, Finding, Rule

_COLD_CALL_TAILS = ("fail", "_crash")


def _hot_functions(ctx: FileContext) -> Iterator[ast.FunctionDef]:
    """Top-level and method function defs in a hot module."""
    if not ctx.path_endswith(ctx.config.hot_module_suffixes):
        return
    stack: List[ast.AST] = [ctx.tree]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if child.name != "__repr__":
                    yield child
                # Do not descend: nested defs are reported as closures by
                # HotPathClosureRule, not re-scanned as hot roots.
            elif isinstance(child, (ast.ClassDef, ast.If, ast.Try)):
                stack.append(child)


def _walk_hot(func: ast.FunctionDef) -> Iterator[Tuple[ast.AST, bool]]:
    """(node, is_cold) over ``func``'s body, cold once inside an exempt
    subtree (raise statements, fail/_crash call arguments)."""

    def visit(node: ast.AST, cold: bool) -> Iterator[Tuple[ast.AST, bool]]:
        for child in ast.iter_child_nodes(node):
            child_cold = cold or isinstance(child, ast.Raise)
            if (not child_cold and isinstance(child, ast.Call)):
                name = child.func
                tail = name.attr if isinstance(name, ast.Attribute) else (
                    name.id if isinstance(name, ast.Name) else ""
                )
                if tail in _COLD_CALL_TAILS:
                    # The callee reference itself stays hot; its arguments
                    # (the exception being built) are the cold part.
                    yield child, child_cold
                    for arg in list(child.args) + [
                        kw.value for kw in child.keywords
                    ]:
                        yield arg, True
                        yield from visit(arg, True)
                    continue
            yield child, child_cold
            yield from visit(child, child_cold)

    yield from visit(func, False)


class HotPathFStringRule(Rule):
    id = "hot-fstring"
    family = "hotpath"
    description = ("string formatting in a kernel hot function allocates "
                   "per transition (the historical Timeout-name regression)")
    fixit = ("drop the formatted string from the hot path (static str or "
             "no name at all); error paths may build messages inside "
             "`raise`/`fail(...)` where this rule does not look")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _hot_functions(ctx):
            for node, cold in _walk_hot(func):
                if cold:
                    continue
                if isinstance(node, ast.JoinedStr):
                    yield self.finding(
                        ctx, node,
                        f"f-string in hot function `{func.name}`",
                    )
                elif (isinstance(node, ast.Call)
                      and isinstance(node.func, ast.Attribute)
                      and node.func.attr == "format"
                      and isinstance(node.func.value, ast.Constant)
                      and isinstance(node.func.value.value, str)):
                    yield self.finding(
                        ctx, node,
                        f"str.format() in hot function `{func.name}`",
                    )
                elif (isinstance(node, ast.BinOp)
                      and isinstance(node.op, ast.Mod)
                      and isinstance(node.left, ast.Constant)
                      and isinstance(node.left.value, str)):
                    yield self.finding(
                        ctx, node,
                        f"%-formatting in hot function `{func.name}`",
                    )


class HotPathClosureRule(Rule):
    id = "hot-closure"
    family = "hotpath"
    description = ("a lambda/nested def in a kernel hot function allocates "
                   "a closure per call and defeats the slotted-record "
                   "design (_Wake/_SleepWake replaced exactly these)")
    fixit = ("hoist to a module-level function or a slotted record class "
             "with a bound-method callback")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _hot_functions(ctx):
            for node, cold in _walk_hot(func):
                if cold:
                    continue
                if isinstance(node, (ast.Lambda, ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    kind = "lambda" if isinstance(node, ast.Lambda) else "def"
                    yield self.finding(
                        ctx, node,
                        f"closure ({kind}) in hot function `{func.name}`",
                    )


class HotPathAllocRule(Rule):
    id = "hot-alloc"
    family = "hotpath"
    description = ("a comprehension/generator expression in a kernel hot "
                   "function allocates a fresh frame and container per "
                   "transition")
    fixit = ("replace with an explicit loop over a preallocated structure, "
             "or suppress with a reason if the function provably runs "
             "once per completion rather than per transition")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _hot_functions(ctx):
            for node, cold in _walk_hot(func):
                if cold:
                    continue
                if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                     ast.GeneratorExp)):
                    yield self.finding(
                        ctx, node,
                        f"comprehension in hot function `{func.name}`",
                    )
