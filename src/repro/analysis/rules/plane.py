"""Payload-plane discipline rules.

The invariant (the ghost data plane's safety contract, see
``docs/dataplane.md``): plane selection happens **once, at construction
time**, by binding method pointers or wrapping payloads — never by
branching on a plane flag inside simulation processes.  A
``if self.ghost: ...`` inside a generator function is a per-event
decision point: the two planes can diverge in event counts, RNG draws,
or time charging, and the divergence only surfaces as baseline drift
after a full bench run.  Keeping generators plane-blind is what makes
the ghost↔byte equivalence suite a meaningful gate.

One rule:

* ``plane-branch`` — an ``if`` / ``while`` / conditional expression
  inside a generator function whose test mentions a plane flag (any
  name or attribute whose last dotted component contains a configured
  marker, ``ghost`` by default).

Non-generator helpers (payload constructors, materialization points,
``__init__`` wiring) may branch on the flag freely — that is exactly
where the discipline says the decision belongs.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from repro.analysis.core import FileContext, Finding, Rule

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)
_Scope = _FuncDef + (ast.Lambda, ast.ClassDef)


def _own_nodes(func: Union[ast.FunctionDef, ast.AsyncFunctionDef]):
    """Walk a function body without descending into nested scopes."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, _Scope):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> bool:
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom))
        for node in _own_nodes(func)
    )


def _plane_names(ctx: FileContext, test: ast.AST, markers) -> List[str]:
    """Plane-flag names mentioned in a branch test, in source order.

    A name matches when the *last* dotted component contains a marker:
    ``self._ghost``, ``cfg.ghost_dataplane`` and ``ghost_mode`` all
    match ``ghost``; ``ghostwriter.page`` does not (the flag is the
    attribute ``page``).
    """
    hits: List[str] = []

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.Name, ast.Attribute)):
            last = node.attr if isinstance(node, ast.Attribute) else node.id
            if any(marker in last.lower() for marker in markers):
                hits.append(ctx.dotted(node) or last)
            # Do not descend into an attribute chain's value: only the
            # *last* component names the flag (`ghostwriter.page` is not
            # a plane flag, `cfg.ghost_dataplane` is).
            if isinstance(node, ast.Attribute) and isinstance(
                node.value, (ast.Name, ast.Attribute)
            ):
                return
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(test)
    return hits


class PlaneBranchRule(Rule):
    id = "plane-branch"
    family = "plane"
    description = ("branching on a payload-plane flag (ghost_dataplane) "
                   "inside a generator function makes plane selection a "
                   "per-event decision — planes can silently diverge")
    fixit = ("bind the plane once at __init__ (method pointers, or wrap "
             "the payload before the process starts) so generator bodies "
             "stay plane-blind; payload-type dispatch belongs in "
             "non-generator helpers like repro.dataplane.as_payload")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        markers = tuple(
            m.lower() for m in ctx.config.plane_flag_markers
        )
        if not markers:
            return
        for func in ast.walk(ctx.tree):
            if not isinstance(func, _FuncDef) or not _is_generator(func):
                continue
            for node in _own_nodes(func):
                if isinstance(node, (ast.If, ast.IfExp, ast.While)):
                    names = _plane_names(ctx, node.test, markers)
                    if names:
                        yield self.finding(
                            ctx, node,
                            f"generator `{func.name}` branches on plane "
                            f"flag(s) {', '.join(f'`{n}`' for n in names)} "
                            "— plane selection must be bound before the "
                            "process starts, not decided per event",
                        )
