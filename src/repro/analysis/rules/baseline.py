"""Baseline hygiene rules: the pyflakes-style floor.

Not engine invariants — just the minimum static cleanliness the rest of
the pass builds on: imports that bind names nothing reads, and statements
that can never execute.  Dead imports matter more here than in most
trees: module import cost is on the ``repro bench --jobs`` worker-spawn
path, and an unused heavyweight import (numpy pulled into a leaf module)
is pure fork latency.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.core import FileContext, Finding, Rule

_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


def _type_checking_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """Line spans of ``if TYPE_CHECKING:`` bodies (imports there are for
    annotations, often only referenced from string-typed hints)."""
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, ast.If):
            test = node.test
            name = None
            if isinstance(test, ast.Name):
                name = test.id
            elif isinstance(test, ast.Attribute):
                name = test.attr
            if name == "TYPE_CHECKING":
                end = max(
                    (n.end_lineno or n.lineno)
                    for n in ast.walk(node)
                    if hasattr(n, "lineno")
                )
                spans.append((node.lineno, end))
    return spans


class DeadImportRule(Rule):
    id = "dead-import"
    family = "baseline"
    description = "an import that binds a name no code in the file reads"
    fixit = "delete the import (or the whole statement if fully unused)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if (ctx.config.dead_import_skip_init
                and ctx.posix_path.endswith("__init__.py")):
            return  # __init__.py imports are re-exports by convention
        tc_spans = _type_checking_spans(ctx.tree)
        imports: List[Tuple[str, ast.AST, str]] = []  # (bound, node, shown)
        import_nodes: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                import_nodes.add(id(node))
                for a in node.names:
                    bound = a.asname or a.name.split(".")[0]
                    imports.append((bound, node, a.name))
            elif isinstance(node, ast.ImportFrom):
                import_nodes.add(id(node))
                if node.module == "__future__":
                    continue
                for a in node.names:
                    if a.name == "*":
                        continue
                    bound = a.asname or a.name
                    shown = f"{node.module or '.'}.{a.name}"
                    imports.append((bound, node, shown))

        used: Set[str] = set()
        exported: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif (isinstance(node, ast.Assign)
                  and any(isinstance(t, ast.Name) and t.id == "__all__"
                          for t in node.targets)):
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Constant) and isinstance(
                        sub.value, str
                    ):
                        exported.add(sub.value)

        for bound, node, shown in imports:
            if bound in used or bound in exported:
                continue
            if any(a <= node.lineno <= b for a, b in tc_spans):
                continue  # type-checking-only import, used in string hints
            yield self.finding(
                ctx, node,
                f"`{shown}` is imported as `{bound}` but never used",
            )


class UnreachableCodeRule(Rule):
    id = "unreachable-code"
    family = "baseline"
    description = ("statements after an unconditional return/raise/break/"
                   "continue can never execute")
    fixit = ("delete the dead statements (a bare `yield` after `raise` — "
             "the make-this-a-generator idiom — is exempt)")

    def _block(self, ctx: FileContext, body: List[ast.stmt]) -> Iterator[Finding]:
        terminated = False
        for stmt in body:
            if terminated:
                # Exemptions: the generator-marking `yield` idiom, and
                # anything explicitly pragma'd off coverage.
                is_bare_yield = (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, (ast.Yield, ast.YieldFrom))
                )
                line = ctx.lines[stmt.lineno - 1] if (
                    0 < stmt.lineno <= len(ctx.lines)
                ) else ""
                if not is_bare_yield and "pragma: no cover" not in line:
                    yield self.finding(
                        ctx, stmt,
                        "unreachable: follows an unconditional "
                        "return/raise/break/continue in the same block",
                    )
                break  # one finding per block is enough
            if isinstance(stmt, _TERMINATORS):
                terminated = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            for field in ("body", "orelse", "finalbody"):
                body = getattr(node, field, None)
                if isinstance(body, list) and body and isinstance(
                    body[0], ast.stmt
                ):
                    yield from self._block(ctx, body)
