"""Interprocedural rules: the transitive closures of the per-file gates.

Each rule here generalizes one intraprocedural family across call
boundaries using the solved summaries from :mod:`repro.analysis.graph`,
and deliberately excludes the sites its per-file counterpart already
reports — a violation is flagged exactly once, by the most precise rule
that can see it:

* ``ipd-yield-under-lock`` — a call inside a ``serialize_stripe``
  critical section (or a ``*_locked`` method) whose callee *transitively*
  blocks.  Direct blocking tails are ``lock-yield-while-locked``'s
  domain and are skipped.
* ``ipd-view-across-yield`` — a zero-copy view obtained *through a
  helper return* and read after a yield.  Direct ``read_range``/``peek``
  bindings are ``alias-view-across-yield``'s domain.  This rule re-runs
  the exact same lifetime scan with a summary-based view predicate, so
  the two generations cannot disagree about lifetimes.
* ``ipd-ghost-materialize`` — a byte-materializing call (``bytes()``,
  ``np.asarray``, ``.tobytes()``) reachable from a ghost-plane entry
  point (``on_update`` / OSD ingest handlers) with no plane dispatch
  (``is_ghost`` / ``GhostExtent`` type test) on the path.  On the ghost
  plane those sites either fabricate data or raise
  ``GhostMaterializationError`` mid-scenario.
* ``ipd-det-taint`` — wall-clock/entropy taint reaching a bench-row
  producer (``to_dict``) through any call chain.  Direct det calls in
  the producer itself are the ``det-*`` rules' domain.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.core import FileContext, Finding, ProjectRule, Rule
from repro.analysis.graph import (
    BLOCKING,
    ENTROPY,
    GHOST_DISPATCH,
    MAY_BLOCK,
    RETURNS_VIEW,
    TAINTED,
    WALLCLOCK,
    Project,
    _classify_ref,
    _unwrap,
    module_name,
)
from repro.analysis.rules.aliasing import _FunctionScan
from repro.analysis.vocab import BLOCKING_CALL_TAILS, VIEW_SOURCE_ATTRS


def _ref_tail(ref: str) -> str:
    return ref.rsplit(".", 1)[-1].partition(":")[2] or ref.rsplit(".", 1)[-1]


def _path_display(project: Project, keys: List[str]) -> str:
    return " -> ".join(project.functions[k].qual for k in keys)


def _first_site(sites: List[list]) -> list:
    return min(sites, key=lambda s: (s[1], s[2]))


class YieldUnderLockIpdRule(ProjectRule):
    id = "ipd-yield-under-lock"
    family = "ipd"
    description = ("a helper called inside a serialize_stripe critical "
                   "section transitively blocks — the stripe lock is held "
                   "across simulated time the per-file rule cannot see")
    fixit = ("hoist the blocking operation out of the critical section, or "
             "— if the protocol requires it — suppress the *direct* "
             "blocking site with `lock-yield-while-locked` and a reason "
             "(summaries honor those suppressions)")

    def check(self, project: Project) -> Iterator[Finding]:
        for key in sorted(project.functions):
            info = project.functions[key]
            if info.cls is None:
                continue
            if not project.serializes(f"{info.module}:{info.cls}"):
                continue
            for ref, line, col, in_lock, nb in info.calls:
                if not in_lock or nb:
                    # nb: the site itself carries an audited
                    # lock-yield-while-locked suppression.
                    continue
                tail = _ref_tail(ref)
                if tail in BLOCKING_CALL_TAILS or tail == "serialize_stripe":
                    continue  # per-file lock rules' domain
                blocked = sorted(
                    k for k in project.resolve_ref(info, ref)
                    if project.functions[k].facts & MAY_BLOCK
                )
                if not blocked:
                    continue
                witness = project.witness_path(
                    blocked[0], BLOCKING, avoid_transparent=True,
                    block_edges=True)
                via = _path_display(project, witness) or \
                    project.functions[blocked[0]].qual
                term = project.functions[witness[-1]] if witness else None
                what = (f"`{_first_site(term.block)[0]}`"
                        if term and term.block else "a blocking call")
                yield self.finding(
                    info.path, line, col,
                    f"`{info.qual}` holds the stripe lock here while the "
                    f"callee blocks: {via} reaches {what}",
                )


class ViewAcrossYieldIpdRule(ProjectRule):
    id = "ipd-view-across-yield"
    family = "ipd"
    description = ("a zero-copy view returned by a helper is read after a "
                   "later yield point — same use-after-overwrite as "
                   "alias-view-across-yield, hidden behind a call")
    fixit = ("snapshot before parking (`x = x.copy()` / `bytes(x)`), "
             "consume the view before the yield, or make the helper "
             "return a copy")
    # The driver runs this rule per file over the AST (cacheable against
    # the file hash + its view-dependency summaries), not via check().
    needs_ast = True

    def check(self, project: Project) -> Iterator[Finding]:
        return iter(())

    def scan_file(self, ctx: FileContext, project: Project) -> List[Finding]:
        mod = module_name(ctx.posix_path)
        shim = Rule()
        shim.id = self.id
        shim.fixit = self.fixit
        findings: List[Finding] = []

        def scan(func: ast.FunctionDef, qual: str) -> None:
            info = project.functions.get(f"{mod}:{qual}")
            if info is None:
                return

            def view_source(node: ast.AST) -> Optional[str]:
                call = _unwrap(node)
                if not isinstance(call, ast.Call):
                    return None
                tail = (ctx.dotted(call.func) or "").rsplit(".", 1)[-1] or \
                    getattr(call.func, "attr", "")
                if tail in VIEW_SOURCE_ATTRS:
                    return None  # alias-view-across-yield's domain
                ref = _classify_ref(ctx, call)
                if ref is None:
                    return None
                for k in project.resolve_ref(info, ref):
                    if project.functions[k].facts & RETURNS_VIEW:
                        display = ctx.dotted(call.func) or tail
                        return (f"{display}() [returns a view via "
                                f"{project.functions[k].qual}]")
                return None

            findings.extend(
                _FunctionScan(shim, ctx, func, view_source).run())

        def walk(body, prefix: str) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scan(stmt, f"{prefix}{stmt.name}")
                    walk(stmt.body, f"{prefix}{stmt.name}.")
                elif isinstance(stmt, ast.ClassDef) and not prefix:
                    walk(stmt.body, f"{stmt.name}.")

        walk(ctx.tree.body, "")
        return findings


class GhostMaterializeIpdRule(ProjectRule):
    id = "ipd-ghost-materialize"
    family = "ipd"
    description = ("a byte-materializing call is reachable from a "
                   "ghost-plane entry point with no plane dispatch on the "
                   "path — it fabricates data or raises "
                   "GhostMaterializationError mid-scenario")
    fixit = ("dispatch on the plane first (branch on `is_ghost(...)` / the "
             "payload type) or route through the plane-neutral helpers in "
             "repro.dataplane (as_payload, concat_payloads)")

    def check(self, project: Project) -> Iterator[Finding]:
        # A plain function building a list, not a generator: `plane-branch`
        # (correctly) dislikes generators branching on ghost-plane names,
        # and this body branches on the GHOST_DISPATCH summary bit.
        out: List[Finding] = []
        entry_names = set(project.config.ghost_entry_names)
        entries = sorted(
            key for key, info in project.functions.items()
            if info.qual.rsplit(".", 1)[-1] in entry_names
        )
        # BFS over call edges; a plane-dispatching function handles both
        # planes by contract, so reachability stops there (and its own
        # materialize sites are exempt).
        parent: dict = {}
        queue: List[str] = []
        for key in entries:
            if key not in parent:
                parent[key] = None
                queue.append(key)
        order: List[str] = []
        while queue:
            key = queue.pop(0)
            info = project.functions[key]
            if info.facts & GHOST_DISPATCH:
                continue
            order.append(key)
            for callee in info.callees:
                if callee in parent or callee not in project.functions:
                    continue
                parent[callee] = key
                queue.append(callee)
        for key in sorted(order):
            info = project.functions[key]
            if not info.mat:
                continue
            chain: List[str] = []
            cur: Optional[str] = key
            while cur is not None:
                chain.append(cur)
                cur = parent[cur]
            via = _path_display(project, list(reversed(chain)))
            for display, line, col in sorted(
                    info.mat, key=lambda s: (s[1], s[2])):
                out.append(self.finding(
                    info.path, line, col,
                    f"`{display}` materializes payload bytes on a "
                    f"ghost-reachable path ({via}) with no plane dispatch",
                ))
        return iter(out)


class DetTaintIpdRule(ProjectRule):
    id = "ipd-det-taint"
    family = "ipd"
    description = ("wall-clock/entropy taint reaches a bench-row producer "
                   "through a call chain — rows stop being a pure function "
                   "of (code, seed)")
    fixit = ("derive the value from virtual time / the seeded stream, or "
             "keep machine-local measurement out of row producers; "
             "legitimate perf-section reads carry det-* suppressions, "
             "which also clear the taint summary")

    def check(self, project: Project) -> Iterator[Finding]:
        for key in sorted(project.functions):
            info = project.functions[key]
            fname = info.qual.rsplit(".", 1)[-1]
            if fname not in project.config.row_producer_names:
                continue
            for ref, line, col, *_flags in info.calls:
                tainted = sorted(
                    k for k in project.resolve_ref(info, ref)
                    if project.functions[k].facts & TAINTED
                )
                if not tainted:
                    continue
                witness = project.witness_path(
                    tainted[0], WALLCLOCK | ENTROPY)
                via = _path_display(project, witness) or \
                    project.functions[tainted[0]].qual
                term = project.functions[witness[-1]] if witness else None
                what = (f"`{_first_site(term.det)[0]}`"
                        if term and term.det else "a nondeterministic call")
                yield self.finding(
                    info.path, line, col,
                    f"bench-row producer `{info.qual}` depends on {via}, "
                    f"which reaches {what}",
                )
