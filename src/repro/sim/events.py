"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot future living on a simulator's virtual
timeline.  Processes wait on events by ``yield``-ing them; the kernel resumes
the process when the event fires.  Events may carry a value (delivered as the
result of the ``yield``) or an exception (raised inside the waiting process).

Hot-path discipline (this module is the innermost loop of every experiment):

* event lifecycle states are small ints compared by identity, not strings;
* the callback list is allocated lazily — the great majority of events carry
  exactly one callback or none, and most are created and fired within a few
  microseconds of wall time;
* constructors never build debug-name strings (``repr`` falls back to the
  object id), so the per-event cost is attribute stores only.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.core import Simulator

# Lifecycle states.  Ints, not strings: these are compared on every kernel
# transition.  The historical names remain importable.
PENDING = 0
SCHEDULED = 1
FIRED = 2


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    ``cause`` carries an arbitrary payload describing why (e.g. a node
    failure notice during recovery experiments).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the virtual timeline.

    Lifecycle: *pending* -> *scheduled* (``succeed``/``fail`` called, queued
    on the heap) -> *fired* (callbacks executed).  Callbacks receive the
    event itself.
    """

    __slots__ = ("sim", "callbacks", "_state", "_value", "_exc", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        # Lazily allocated: None until the first callback is added.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = None
        self._state = PENDING
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self.name = name

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._state != PENDING

    @property
    def fired(self) -> bool:
        """True once callbacks have run and the value is observable."""
        return self._state == FIRED

    @property
    def ok(self) -> bool:
        """True if the event carries a value rather than an exception."""
        return self._state == FIRED and self._exc is None

    @property
    def value(self) -> Any:
        if self._exc is not None:
            raise self._exc
        return self._value

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire with ``value`` after ``delay``."""
        if self._state != PENDING:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self._state = SCHEDULED
        self._value = value
        # Inlined Simulator._schedule — succeed() is the hottest scheduling
        # entry point.
        sim = self.sim
        sim._seq += 1
        if delay == 0.0:
            sim._imm.append((sim._seq, self))
        else:
            _heappush(sim._heap, (sim.now + delay, sim._seq, self))
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire by raising ``exc`` in its waiters."""
        if self._state != PENDING:
            raise RuntimeError(f"event {self.name!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._state = SCHEDULED
        self._exc = exc
        self.sim._schedule(self, delay)
        return self

    # ------------------------------------------------------------------
    # kernel hook
    # ------------------------------------------------------------------
    def _fire(self) -> None:
        self._state = FIRED
        callbacks = self.callbacks
        if callbacks is not None:
            self.callbacks = None
            for cb in callbacks:
                cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Run ``cb(event)`` when the event fires (immediately if fired)."""
        if self._state == FIRED:
            cb(self)
        elif self.callbacks is None:
            self.callbacks = [cb]
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = ("pending", "scheduled", "fired")[self._state]
        return f"<Event {self.name or hex(id(self))} {state}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        # Inlined Event.__init__ + succeed(): timeouts are the most common
        # event kind, and the f-string debug name alone used to dominate
        # their construction cost.
        self.sim = sim
        self.callbacks = None
        self._state = SCHEDULED
        self._value = value
        self._exc = None
        self.name = "timeout"
        self.delay = delay
        sim._seq += 1
        if delay == 0.0:
            sim._imm.append((sim._seq, self))
        else:
            _heappush(sim._heap, (sim.now + delay, sim._seq, self))


class _Condition(Event):
    """Base for AllOf/AnyOf combinators over a fixed set of events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name=name)
        self.events: List[Event] = list(events)
        self._n_fired = 0
        if not self.events:
            # Vacuously satisfied.
            self.succeed(self._collect())
        else:
            for ev in self.events:
                ev.add_callback(self._on_child)

    def _collect(self) -> List[Any]:
        # repro-lint: allow(hot-alloc) -- runs once per combinator completion, not per kernel transition
        return [ev._value for ev in self.events if ev.fired and ev._exc is None]

    def _on_child(self, ev: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* child events have fired.

    Value is the list of child values in construction order.  If any child
    fails, this condition fails with the first failure.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="all_of")

    def _on_child(self, ev: Event) -> None:
        if self._state != PENDING:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            # repro-lint: allow(hot-alloc) -- built once, when the last child fires
            self.succeed([e._value for e in self.events])


class AnyOf(_Condition):
    """Fires when the *first* child event fires; value is ``(index, value)``."""

    __slots__ = ("_index_of",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        # Precomputed id -> index map: ``events.index(ev)`` was an O(n) scan
        # per child fire, and identity (not equality) is the right lookup —
        # with a duplicated event object the scan's first-occurrence answer
        # is preserved by setdefault.  Built before super().__init__ because
        # an already-fired child fires ``_on_child`` synchronously from the
        # constructor's add_callback.
        events = list(events)
        self._index_of = {}
        for i, ev in enumerate(events):
            self._index_of.setdefault(id(ev), i)
        super().__init__(sim, events, name="any_of")

    def _on_child(self, ev: Event) -> None:
        if self._state != PENDING:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
            return
        self.succeed((self._index_of[id(ev)], ev._value))
