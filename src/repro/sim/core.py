"""The simulation kernel: clock, event heap and generator processes.

Fast-path architecture (the engine is the wall-clock bottleneck of every
experiment, so its inner loop is deliberately hand-tuned):

* **Immediate queue.** Zero-delay schedulings (process boots, resource
  grants, store puts, reply completions) vastly outnumber real timeouts.
  They go to a FIFO deque instead of the heap; the main loop interleaves
  deque and heap strictly by ``(time, seq)``, so the *firing order of
  scheduled entries* is exactly the pure-heap kernel's, at O(1) instead
  of O(log n) per event.  (Bit-identity of whole-run results is a
  property of each call-site change, gated empirically by
  ``repro bench --check-baseline``: fast paths that *elide* transitions
  shift same-instant tie-breaking, which is observable only in
  tie-dense regimes — see benchmarks/results/perf_fastpath.md.)

* **Float sleeps.** A process may ``yield`` a plain ``float`` (seconds)
  instead of a :class:`Timeout` event.  The kernel schedules a two-word
  wake record directly, skipping event construction entirely.  This is
  the costed-delay fast path used by devices, NICs and fabric transfers.
  Only exact ``float``s are recognised — yielding an ``int`` remains a
  type error, which keeps accidental ``yield 5`` bugs loud.

* **Wake records.** Process boot and interrupt delivery use two-slot
  ``_Wake`` records rather than full events with lambda callbacks.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.events import FIRED, PENDING, Event, Interrupt, Timeout

ProcessGen = Generator[Event, Any, Any]

_heappush = heapq.heappush
_heappop = heapq.heappop


class _Wake:
    """A heap/deque entry that resumes a process (boot or interrupt).

    Quacks just enough like an event for the kernel loop (``_fire``); the
    resume goes through the ``event=None`` path, exactly as the historical
    boot/interrupt callback events did.
    """

    __slots__ = ("proc", "exc")

    def __init__(self, proc: "Process", exc: Optional[BaseException]):
        self.proc = proc
        self.exc = exc

    def _fire(self) -> None:
        self.proc._resume(None, self.exc)


class At:
    """An absolute-virtual-time sleep token: ``yield At(t)``.

    Wakes the process at exactly ``t`` — the same float, no re-derivation
    through ``now + (t - now)`` (which can be off by one ulp).  This is what
    lets the projected-completion data plane hand a process its precomputed
    completion instant and stay bit-identical with the event-per-hop path.
    """

    __slots__ = ("t",)

    def __init__(self, t: float):
        self.t = t


class _SleepWake:
    """The wake record behind a ``yield <float>`` sleep.

    Carries no value and no exception; ``_value``/``_exc`` are class
    attributes so :meth:`Process._resume`'s event path (and its staleness
    check against ``_waiting_on``) works unchanged.
    """

    __slots__ = ("proc",)

    _value = None
    _exc = None

    def __init__(self, proc: "Process"):
        self.proc = proc

    def _fire(self) -> None:
        self.proc._resume(self, None)


class Simulator:
    """Owns the virtual clock and the pending-event queues.

    Heap entries are ``(time, seq, event)``; ``seq`` is a monotone counter so
    simultaneous events fire in scheduling order, which makes every run
    deterministic for a fixed seed.  Zero-delay entries live in a FIFO deque
    as ``(seq, event)`` — the loop merges both sources in ``(time, seq)``
    order, so the split is invisible to simulated code.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Any]] = []
        self._imm: deque = deque()  # (seq, event) at the current instant
        self._seq: int = 0
        self._active: int = 0  # live processes, for run-to-exhaustion checks
        self._crashed: Optional[BaseException] = None
        self._current: Optional["Process"] = None
        # Monotone count of fired kernel transitions (events + wakes), the
        # numerator of the ``events/sec`` perf metric.
        self.events_fired: int = 0

    @property
    def active_process(self) -> Optional["Process"]:
        """The process whose generator is being stepped right now.

        ``None`` between steps or when code runs outside any process.  Lets
        library code identify the acquiring activity without threading a
        token through every generator (e.g. KeyedLock holders).
        """
        return self._current

    # ------------------------------------------------------------------
    # event construction helpers
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """A fresh pending event bound to this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` virtual seconds from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> float:
        """A costless sleep token: ``yield sim.sleep(dt)``.

        Returns the delay as a float for the kernel's event-free sleep
        path — no :class:`Timeout` object is built.  This is the public,
        eagerly-validating spelling of the protocol (it coerces ints and
        raises on negative delays at the call site); the engine's own hot
        paths yield pre-validated bare floats directly to skip the method
        call.
        """
        delay = float(delay)
        if delay < 0:
            raise ValueError(f"negative sleep delay {delay!r}")
        return delay

    def process(self, gen: ProcessGen, name: str = "") -> "Process":
        """Register a generator as a concurrently-running process."""
        return Process(self, gen, name=name)

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` at absolute virtual time ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(f"call_at past time {when} < now {self.now}")
        ev = self.event(name="call_at")
        # repro-lint: allow(hot-closure) -- call_at is a setup/test convenience, never on the per-transition kernel path
        ev.add_callback(lambda _ev: fn())
        ev.succeed(delay=when - self.now)
        return ev

    # ------------------------------------------------------------------
    # scheduling / main loop
    # ------------------------------------------------------------------
    def _schedule(self, event: Any, delay: float = 0.0) -> None:
        self._seq += 1
        if delay == 0.0:
            self._imm.append((self._seq, event))
        else:
            _heappush(self._heap, (self.now + delay, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event (+inf when idle)."""
        if self._imm:
            return self.now
        return self._heap[0][0] if self._heap else float("inf")

    def _next(self) -> Any:
        """Pop the next entry in strict ``(time, seq)`` order (or None).

        Immediate entries all carry the current timestamp, so the only
        possible interleave is a heap entry at exactly ``now`` with a
        smaller seq (scheduled earlier at this instant with an explicit
        nonzero-then-zero mix); the guard keeps that ordering exact.
        """
        imm = self._imm
        heap = self._heap
        if imm:
            if heap and heap[0][0] <= self.now and heap[0][1] < imm[0][0]:
                entry = _heappop(heap)
                self.now = entry[0]
                return entry[2]
            return imm.popleft()[1]
        if heap:
            entry = _heappop(heap)
            self.now = entry[0]
            return entry[2]
        return None

    def step(self) -> None:
        """Fire the single next event.

        Raises :class:`RuntimeError` when nothing is scheduled — callers
        driving the loop by hand should check :meth:`peek` first.
        """
        event = self._next()
        if event is None:
            raise RuntimeError("no scheduled events")
        self.events_fired += 1
        event._fire()
        if self._crashed is not None:
            exc, self._crashed = self._crashed, None
            raise exc

    def _crash(self, exc: BaseException) -> None:
        """Record an exception from a process nobody was joining.

        Raised out of :meth:`run` / :meth:`step` so bugs inside detached
        background processes surface instead of vanishing.
        """
        if self._crashed is None:
            self._crashed = exc

    def run(self, until: Optional[float] = None) -> None:
        """Advance the clock, firing events until the queues drain.

        With ``until`` set, stops once the next event would fire after that
        time and fast-forwards the clock exactly to ``until``.
        """
        if until is not None and until < self.now:
            raise ValueError(f"until {until} < now {self.now}")
        imm = self._imm
        heap = self._heap
        fired = 0
        try:
            while True:
                if imm:
                    if heap and heap[0][0] <= self.now and heap[0][1] < imm[0][0]:
                        entry = _heappop(heap)
                        self.now = entry[0]
                        event = entry[2]
                    else:
                        event = imm.popleft()[1]
                elif heap:
                    if until is not None and heap[0][0] > until:
                        self.now = until
                        return
                    entry = _heappop(heap)
                    self.now = entry[0]
                    event = entry[2]
                else:
                    break
                fired += 1
                event._fire()
                if self._crashed is not None:
                    exc, self._crashed = self._crashed, None
                    raise exc
        finally:
            self.events_fired += fired
        if until is not None:
            self.now = until

    def run_until_fired(self, event: Event) -> bool:
        """Fire events until ``event`` fires; False if the queues drained.

        The tight driver loop behind ``drive_to_completion``: identical
        semantics to ``while not event.fired and sim.peek() != inf:
        sim.step()`` with the per-event Python call overhead removed.
        """
        imm = self._imm
        heap = self._heap
        fired = 0
        try:
            while event._state != FIRED:
                if imm:
                    if heap and heap[0][0] <= self.now and heap[0][1] < imm[0][0]:
                        entry = _heappop(heap)
                        self.now = entry[0]
                        ev = entry[2]
                    else:
                        ev = imm.popleft()[1]
                elif heap:
                    entry = _heappop(heap)
                    self.now = entry[0]
                    ev = entry[2]
                else:
                    return False
                fired += 1
                ev._fire()
                if self._crashed is not None:
                    exc, self._crashed = self._crashed, None
                    raise exc
            return True
        finally:
            self.events_fired += fired


class Process(Event):
    """A generator coroutine driven by the kernel.

    The process itself is an event: it fires when the generator returns, and
    its value is the generator's return value, so processes can ``yield``
    other processes to join them.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: Simulator, gen: ProcessGen, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Optional[Any] = None
        sim._active += 1
        # Kick off at the current instant via the immediate queue, preserving
        # ordering with respect to already-scheduled events.
        sim._seq += 1
        sim._imm.append((sim._seq, _Wake(self, None)))

    @property
    def is_alive(self) -> bool:
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self._state != PENDING:
            return
        # Delivered via the queue, not synchronously: the victim resumes at
        # this instant but after already-scheduled same-instant events, and
        # whatever it was waiting on becomes a stale no-op wakeup.
        self.sim._schedule(_Wake(self, Interrupt(cause)))

    # ------------------------------------------------------------------
    def _resume(self, event: Optional[Any], exc: Optional[BaseException]) -> None:
        if self._state != PENDING:
            return
        if event is not None and event is not self._waiting_on:
            return  # stale wakeup after an interrupt re-routed the process
        self._waiting_on = None
        sim = self.sim
        gen = self._gen
        prev = sim._current
        sim._current = self
        try:
            if exc is not None:
                target = gen.throw(exc)
            elif event is not None:
                if event._exc is not None:
                    target = gen.throw(event._exc)
                else:
                    target = gen.send(event._value)
            else:
                target = next(gen)
        except StopIteration as stop:
            sim._active -= 1
            self.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: treat as clean exit.
            sim._active -= 1
            self.succeed(None)
            return
        except BaseException as err:
            sim._active -= 1
            self.fail(err)
            return
        finally:
            sim._current = prev
        tt = type(target)
        if tt is float:
            # The event-free sleep path: schedule a two-slot wake record
            # (inlined _schedule).
            if target < 0.0:
                sim._active -= 1
                self.fail(ValueError(f"process {self.name!r} yielded a negative sleep {target!r}"))
                return
            wake = _SleepWake(self)
            self._waiting_on = wake
            sim._seq += 1
            if target == 0.0:
                sim._imm.append((sim._seq, wake))
            else:
                _heappush(sim._heap, (sim.now + target, sim._seq, wake))
            return
        if tt is At:
            when = target.t
            if when < sim.now:
                sim._active -= 1
                self.fail(ValueError(
                    f"process {self.name!r} yielded At({when!r}) in the past "
                    f"(now {sim.now!r})"
                ))
                return
            wake = _SleepWake(self)
            self._waiting_on = wake
            sim._seq += 1
            _heappush(sim._heap, (when, sim._seq, wake))
            return
        if not isinstance(target, Event):
            sim._active -= 1
            self.fail(TypeError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            ))
            return
        self._waiting_on = target
        target.add_callback(self._on_wait_done)

    def _on_wait_done(self, event: Event) -> None:
        self._resume(event, None)

    def _fire(self) -> None:
        had_waiters = self.callbacks is not None
        super()._fire()
        if self._exc is not None and not had_waiters and self.callbacks is None:
            self.sim._crash(self._exc)
