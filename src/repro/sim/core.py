"""The simulation kernel: clock, event heap and generator processes."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.events import Event, Interrupt, Timeout

ProcessGen = Generator[Event, Any, Any]


class Simulator:
    """Owns the virtual clock and the pending-event heap.

    Heap entries are ``(time, seq, event)``; ``seq`` is a monotone counter so
    simultaneous events fire in scheduling order, which makes every run
    deterministic for a fixed seed.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq: int = 0
        self._active: int = 0  # live processes, for run-to-exhaustion checks
        self._crashed: Optional[BaseException] = None
        self._current: Optional["Process"] = None

    @property
    def active_process(self) -> Optional["Process"]:
        """The process whose generator is being stepped right now.

        ``None`` between steps or when code runs outside any process.  Lets
        library code identify the acquiring activity without threading a
        token through every generator (e.g. KeyedLock holders).
        """
        return self._current

    # ------------------------------------------------------------------
    # event construction helpers
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """A fresh pending event bound to this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` virtual seconds from now."""
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGen, name: str = "") -> "Process":
        """Register a generator as a concurrently-running process."""
        return Process(self, gen, name=name)

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` at absolute virtual time ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(f"call_at past time {when} < now {self.now}")
        ev = self.event(name="call_at")
        ev.add_callback(lambda _ev: fn())
        ev.succeed(delay=when - self.now)
        return ev

    # ------------------------------------------------------------------
    # scheduling / main loop
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event (+inf when idle)."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Fire the single next event.

        Raises :class:`RuntimeError` when nothing is scheduled — callers
        driving the loop by hand should check :meth:`peek` first.
        """
        if not self._heap:
            raise RuntimeError("no scheduled events")
        when, _seq, event = heapq.heappop(self._heap)
        self.now = when
        event._fire()
        if self._crashed is not None:
            exc, self._crashed = self._crashed, None
            raise exc

    def _crash(self, exc: BaseException) -> None:
        """Record an exception from a process nobody was joining.

        Raised out of :meth:`run` / :meth:`step` so bugs inside detached
        background processes surface instead of vanishing.
        """
        if self._crashed is None:
            self._crashed = exc

    def run(self, until: Optional[float] = None) -> None:
        """Advance the clock, firing events until the heap drains.

        With ``until`` set, stops once the next event would fire after that
        time and fast-forwards the clock exactly to ``until``.
        """
        if until is not None and until < self.now:
            raise ValueError(f"until {until} < now {self.now}")
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = until


class Process(Event):
    """A generator coroutine driven by the kernel.

    The process itself is an event: it fires when the generator returns, and
    its value is the generator's return value, so processes can ``yield``
    other processes to join them.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: Simulator, gen: ProcessGen, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        sim._active += 1
        # Kick off at the current instant via the heap, preserving ordering
        # with respect to already-scheduled events.
        boot = sim.event(name=f"boot:{self.name}")
        boot.add_callback(lambda _ev: self._resume(None, None))
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self.triggered:
            return
        # Detach from whatever the process was waiting on: the stale event's
        # callback must become a no-op.
        ev = self.sim.event(name=f"interrupt:{self.name}")
        ev.add_callback(lambda _ev: self._resume(None, Interrupt(cause)))
        ev.succeed()

    # ------------------------------------------------------------------
    def _resume(self, event: Optional[Event], exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        if event is not None and event is not self._waiting_on:
            return  # stale wakeup after an interrupt re-routed the process
        self._waiting_on = None
        prev = self.sim._current
        self.sim._current = self
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            elif event is not None:
                if event._exc is not None:
                    target = self._gen.throw(event._exc)
                else:
                    target = self._gen.send(event._value)
            else:
                target = next(self._gen)
        except StopIteration as stop:
            self.sim._active -= 1
            self.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: treat as clean exit.
            self.sim._active -= 1
            self.succeed(None)
            return
        except BaseException as err:
            self.sim._active -= 1
            self.fail(err)
            return
        finally:
            self.sim._current = prev
        if not isinstance(target, Event):
            self.sim._active -= 1
            bad = TypeError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
            self.fail(bad)
            return
        self._waiting_on = target
        target.add_callback(self._on_wait_done)

    def _on_wait_done(self, event: Event) -> None:
        self._resume(event, None)

    def _fire(self) -> None:
        had_waiters = bool(self.callbacks)
        super()._fire()
        if self._exc is not None and not had_waiters and not self.callbacks:
            self.sim._crash(self._exc)
