"""Exact, faster replay of a numpy ``Generator``'s scalar draw sequence.

Workload generation is dominated by *scalar* numpy RNG calls — a tenant
pick, a read/update coin flip, a payload block, a trace offset — issued in
a strict interleaved order that every baseline row's bit-identity depends
on.  numpy's per-call dispatch makes each of those draws cost ~1-2 us (and
``Generator.choice`` ~16 us); the values themselves are cheap.

:class:`DrawCursor` re-implements the *exact* PCG64 consumption of the
scalar call sequence on top of bulk ``BitGenerator.random_raw`` pulls:

* ``random()``       == ``float(gen.random())``            (one raw64)
* ``integers(n)``    == ``int(gen.integers(0, n))``        (Lemire's
  algorithm over the *buffered 32-bit stream* for ranges that fit in 32
  bits — including the persistent low/high half-buffer PCG64 keeps across
  calls — and over raw64 draws above that)
* ``payload(n)``     == ``gen.integers(0, 256, n, dtype=np.uint8)``
  (``ceil(n/4)`` buffered 32-bit pulls, assembled little-endian), served
  as one bulk ``random_raw`` + memcpy instead of a per-byte C loop
* ``weighted_index(cdf)`` == ``gen.choice(len(cdf), p=p)`` for
  ``cdf = choice_cdf(p)`` (``choice`` draws exactly one uniform and
  searches the same cumulative table)

Draws that only consume whole raw64s through numpy itself — notably the
ziggurat ``exponential`` the arrival processes use — can keep running on
the wrapped generator *between* cursor draws in direct mode: they ignore
and preserve the 32-bit half-buffer, and a direct-mode cursor holds no
lookahead, so the bit generator always sits at the exact stream position.

Two modes:

* **direct** (``chunk=0``): every draw pulls exactly the raws it consumes.
  Interleaving with generator-side calls is legal (see above).
* **chunked** (``chunk=N``): raws are pre-drawn in vectorised blocks and
  replayed from Python lists — the fast mode for tight generation loops
  (synthetic traces) where *no* generator-side draws interleave.
  :meth:`sync` rewinds the over-drawn lookahead so the generator lands on
  the exact consumption point, half-buffer included.

Every equivalence above is enforced against live numpy by the property
tests in ``tests/test_drawcursor.py``; if a numpy upgrade ever changes its
bounded-integer or buffering algorithm, those tests fail loudly rather
than letting baselines drift.
"""

from __future__ import annotations

import sys

import numpy as np

_INV_2_53 = 1.0 / 9007199254740992.0  # 2**-53, the next_double scale
_LITTLE = sys.byteorder == "little"


def choice_cdf(p) -> np.ndarray:
    """The cumulative table ``Generator.choice(..., p=p)`` searches.

    Built with the same operations choice uses (``cumsum`` then normalise
    by the last element), so ``cdf.searchsorted(u, side="right")`` lands on
    bit-identical indices.
    """
    p = np.asarray(p, dtype=np.float64)
    cdf = p.cumsum()
    cdf /= cdf[-1]
    return cdf


class DrawCursor:
    """Exact replay of scalar numpy draws over bulk ``random_raw`` pulls."""

    __slots__ = (
        "_gen",
        "_bg",
        "_chunk",
        "_raws",
        "_raw_ints",
        "_doubles",
        "_i",
        "_n",
        "_has32",
        "_stored32",
        "_restore",
    )

    def __init__(self, gen: np.random.Generator, chunk: int = 0):
        self._gen = gen
        self._bg = gen.bit_generator
        self._chunk = int(chunk)
        self._raws = None  # ndarray view of the current chunk
        self._raw_ints = None  # the same raws as Python ints
        self._doubles = None  # the same raws as next_double values
        self._i = 0
        self._n = 0
        # Adopt the generator's buffered 32-bit half (PCG64 keeps the high
        # half of a raw64 across bounded-int/uint8 calls).
        s = self._bg.state
        self._has32 = bool(s["has_uint32"])
        self._stored32 = int(s["uinteger"]) if self._has32 else 0
        self._restore = None

    # ------------------------------------------------------------------
    # raw supply
    # ------------------------------------------------------------------
    def _refill(self) -> None:
        self._restore = self._bg.state
        raws = self._bg.random_raw(self._chunk)
        self._raws = raws
        self._raw_ints = raws.tolist()
        # (raw >> 11) * 2^-53 is numpy's next_double, exactly: the 53-bit
        # integer converts to float64 losslessly and the scale is a power
        # of two.
        self._doubles = ((raws >> 11) * _INV_2_53).tolist()
        self._i = 0
        self._n = self._chunk

    def _raw(self) -> int:
        if self._chunk:
            if self._i >= self._n:
                self._refill()
            r = self._raw_ints[self._i]
            self._i += 1
            return r
        return int(self._bg.random_raw())

    def _next32(self) -> int:
        # PCG64's next32: serve the buffered high half if present, else
        # split a fresh raw64 (low half first, high half buffered).
        if self._has32:
            self._has32 = False
            return self._stored32
        r = self._raw()
        self._stored32 = r >> 32
        self._has32 = True
        return r & 0xFFFFFFFF

    # ------------------------------------------------------------------
    # draws
    # ------------------------------------------------------------------
    def random(self) -> float:
        """``float(gen.random())``: one raw64 through next_double."""
        if self._chunk:
            if self._i >= self._n:
                self._refill()
            d = self._doubles[self._i]
            self._i += 1
            return d
        return float(self._gen.random())

    def integers(self, n: int) -> int:
        """``int(gen.integers(0, n))`` — Lemire bounded rejection.

        numpy serves ranges that fit in 32 bits from the buffered 32-bit
        stream (two values per raw64) and wider ranges from raw64s; both
        reject by re-drawing, so consumption is data-dependent but exactly
        reproduced here.
        """
        rng = n - 1
        if rng <= 0:
            return 0  # numpy consumes nothing for a single-value range
        rng_excl = rng + 1
        if rng <= 0xFFFFFFFF:
            m = self._next32() * rng_excl
            leftover = m & 0xFFFFFFFF
            if leftover < rng_excl:
                threshold = (0x100000000 - rng_excl) % rng_excl
                while leftover < threshold:
                    m = self._next32() * rng_excl
                    leftover = m & 0xFFFFFFFF
            return m >> 32
        m = self._raw() * rng_excl
        leftover = m & 0xFFFFFFFFFFFFFFFF
        if leftover < rng_excl:
            threshold = ((1 << 64) - rng_excl) % rng_excl
            while leftover < threshold:
                m = self._raw() * rng_excl
                leftover = m & 0xFFFFFFFFFFFFFFFF
        return m >> 64

    def weighted_index(self, cdf: np.ndarray) -> int:
        """``int(gen.choice(len(cdf), p=p))`` for ``cdf = choice_cdf(p)``."""
        return int(cdf.searchsorted(self.random(), "right"))

    def payload(self, n: int) -> np.ndarray:
        """``gen.integers(0, 256, n, dtype=np.uint8)`` as one bulk pull.

        Returns a fresh writable array: callers hand payloads to log
        indexes that take ownership and may fold updates into them.
        """
        if n <= 0:
            return np.empty(0, dtype=np.uint8)
        k32 = (n + 3) >> 2
        out = np.empty(n, dtype=np.uint8)
        pos = 0
        if self._has32:
            first = self._stored32.to_bytes(4, "little")
            pos = 4 if n >= 4 else n
            out[:pos] = np.frombuffer(first[:pos], dtype=np.uint8)
            self._has32 = False
            k32 -= 1
            if k32 == 0:
                return out
        n64 = (k32 + 1) >> 1
        raws = self._raw_block(n64)
        rb = raws.view(np.uint8) if _LITTLE else np.frombuffer(
            raws.astype("<u8").tobytes(), dtype=np.uint8
        )
        out[pos:] = rb[: n - pos]
        if k32 & 1:
            self._stored32 = int(raws[-1] >> 32)
            self._has32 = True
        return out

    def _raw_block(self, n64: int) -> np.ndarray:
        """``n64`` consecutive raw64s as a contiguous uint64 array."""
        if not self._chunk:
            return self._bg.random_raw(n64)
        avail = self._n - self._i
        if avail >= n64:
            raws = self._raws[self._i : self._i + n64]
            self._i += n64
            return raws
        # Stitch the unconsumed tail of this chunk to fresh chunk heads —
        # the stream has no gaps, so the tail must be consumed first.
        parts = []
        if avail > 0:
            parts.append(self._raws[self._i : self._n])
            self._i = self._n
        need = n64 - avail
        while need > 0:
            self._refill()
            take = need if need < self._n else self._n
            parts.append(self._raws[:take])
            self._i = take
            need -= take
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    # ------------------------------------------------------------------
    def sync(self) -> np.random.Generator:
        """Land the wrapped generator on the exact consumption point.

        Chunked mode rewinds the unconsumed lookahead (restore the state
        captured at the last refill, re-draw exactly the consumed count);
        both modes then write the emulated 32-bit half-buffer back, so a
        caller that resumes scalar numpy draws afterwards continues the
        stream bit-exactly.  The cursor stays usable after a sync.
        """
        if self._chunk and self._raws is not None:
            self._bg.state = self._restore
            if self._i:
                self._bg.random_raw(self._i)
            self._raws = None
            self._raw_ints = None
            self._doubles = None
            self._i = 0
            self._n = 0
        s = self._bg.state
        s["has_uint32"] = int(self._has32)
        s["uinteger"] = int(self._stored32) if self._has32 else 0
        self._bg.state = s
        return self._gen
