"""Deterministic discrete-event simulation kernel.

This package provides the virtual-time substrate every other subsystem runs
on.  It is a small, dependency-free engine in the style of SimPy:

* :class:`~repro.sim.core.Simulator` owns the event heap and the clock.
* Processes are plain Python generators that ``yield`` events
  (:class:`~repro.sim.events.Timeout`, resource requests, other processes,
  :class:`~repro.sim.events.AllOf` / :class:`~repro.sim.events.AnyOf`
  combinators).
* :class:`~repro.sim.resources.Resource` models a FIFO server with finite
  capacity (disks, NIC directions, CPU recycle threads).
* :class:`~repro.sim.resources.KeyedLock` is a per-key FIFO mutex family
  (per-stripe update serialization on the OSDs).
* :class:`~repro.sim.resources.Store` is an unbounded FIFO message queue
  used for RPC channels between cluster nodes.

Determinism: ties in the event heap break on a monotone sequence number, and
all randomness flows through :class:`~repro.sim.rng.RngStreams`, so a run is
a pure function of its seed.
"""

from repro.sim.core import Process, Simulator
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.resources import KeyedLock, Resource, Store
from repro.sim.rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "KeyedLock",
    "Process",
    "Resource",
    "RngStreams",
    "Simulator",
    "Store",
    "Timeout",
]
