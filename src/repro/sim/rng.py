"""Named deterministic random streams.

Every stochastic choice in a run (trace generation, placement jitter, device
latency noise) draws from a named stream derived from the experiment seed, so
two runs with the same seed are bit-identical regardless of module import
order or process interleaving.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngStreams:
    """A factory of independent, reproducible ``numpy`` generators.

    ``streams.get("trace")`` always returns the same generator object for a
    given name; distinct names get statistically independent streams seeded
    by ``(seed, crc32(name))``.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        gen = self._streams.get(name)
        if gen is None:
            child = np.random.SeedSequence([self.seed, zlib.crc32(name.encode())])
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngStreams":
        """A child factory with its own namespace (e.g. per node)."""
        return RngStreams(seed=zlib.crc32(name.encode(), self.seed))
