"""FIFO resources and message stores for the simulation kernel.

:class:`Resource` models a server with finite capacity — a disk channel, one
direction of a NIC, a recycle worker pool.  :class:`Store` is the unbounded
FIFO queue used as an RPC mailbox between nodes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.core import Simulator
from repro.sim.events import Event


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, sim: Simulator, resource: "Resource"):
        super().__init__(sim, name=f"req:{resource.name}")
        self.resource = resource


class Resource:
    """A FIFO multi-server resource.

    ``request()`` returns an event that fires once a slot is free; the holder
    must call ``release()`` exactly once.  Grants happen strictly in request
    order, which models a single device queue.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def request(self) -> Request:
        req = Request(self.sim, self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed()
        else:
            self._queue.append(req)
        return req

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        if self._queue:
            nxt = self._queue.popleft()
            nxt.succeed()
        else:
            self._in_use -= 1

    def use(self, duration: float):
        """A generator: acquire, hold for ``duration``, release.

        Intended for ``yield from resource.use(dt)`` inside processes.
        """
        yield self.request()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks (mailbox semantics); ``get`` returns an event that
    fires with the next item, in arrival order, waking getters FIFO.
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim, name=f"get:{self.name}")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking pop; ``None`` when empty."""
        if self._items:
            return self._items.popleft()
        return None
