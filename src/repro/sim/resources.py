"""FIFO resources and message stores for the simulation kernel.

:class:`Resource` models a server with finite capacity — a disk channel, one
direction of a NIC, a recycle worker pool.  :class:`KeyedLock` is a manager
of per-key FIFO mutual-exclusion locks (per-stripe update serialization).
:class:`Store` is the unbounded FIFO queue used as an RPC mailbox between
nodes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Hashable, List, Optional, Tuple

from repro.sim.core import Simulator
from repro.sim.events import Event


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, sim: Simulator, resource: "Resource"):
        super().__init__(sim, name="request")
        self.resource = resource


class Resource:
    """A FIFO multi-server resource.

    ``request()`` returns an event that fires once a slot is free; the holder
    must call ``release()`` exactly once.  Grants happen strictly in request
    order, which models a single device queue.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def request(self) -> Request:
        req = Request(self.sim, self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed()
        else:
            self._queue.append(req)
        return req

    def try_acquire(self) -> bool:
        """Synchronous uncontended acquire: True iff a slot was taken now.

        The event-free counterpart of :meth:`request` for callers that can
        continue immediately on a free slot (``if not r.try_acquire():
        yield r.request()``); the holder still owes one :meth:`release`.
        """
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        if self._queue:
            nxt = self._queue.popleft()
            nxt.succeed()
        else:
            self._in_use -= 1

    def use(self, duration: float):
        """A generator: acquire, hold for ``duration``, release.

        Intended for ``yield from resource.use(dt)`` inside processes.

        Uncontended fast path: when a channel is free (and therefore no
        waiter is queued — grants are strictly FIFO, so a non-empty queue
        implies a full resource), the acquire is a plain counter increment
        and the hold is a single event-free float sleep, instead of the
        request-event/grant round trip.  Contended acquires take the exact
        historical path, so FIFO order and queue accounting are unchanged.
        """
        if self._in_use < self.capacity:
            self._in_use += 1
        else:
            req = Request(self.sim, self)
            self._queue.append(req)
            yield req
        try:
            yield float(duration)
        finally:
            self.release()


class KeyedLock:
    """A family of FIFO mutual-exclusion locks, one per key, under one roof.

    A single :class:`KeyedLock` serves any number of keys (e.g. every
    ``(inode, stripe)`` pair an OSD hosts).  Per-key state exists only while
    the key is held or waited on, so an idle lock costs nothing no matter
    how many stripes the node stores.

    ``acquire(key, holder)`` returns an event that fires once ``holder``
    owns the key's lock; grants are strictly FIFO per key, so waiters cannot
    starve and same-key critical sections run in request order.  ``holder``
    is any token identifying the acquiring activity (compared by identity).
    The locks are *not* re-entrant: a holder acquiring a key it already
    holds or already waits on would sleep on itself forever, so that call
    raises immediately instead of deadlocking the simulation.

    Accounting (feeds the scenario lock-wait metrics): ``acquisitions``
    counts every grant, ``contended`` the acquires that had to queue, and
    ``wait_times`` records per-grant queueing delay in virtual seconds
    (0.0 for uncontended grants).
    """

    def __init__(self, sim: Simulator, name: str = "keyedlock"):
        self.sim = sim
        self.name = name
        self._holders: Dict[Hashable, Any] = {}
        self._queues: Dict[Hashable, Deque[Tuple[Event, Any, float]]] = {}
        self.acquisitions = 0
        self.contended = 0
        self.wait_times: List[float] = []

    def held(self, key: Hashable) -> bool:
        return key in self._holders

    def holder(self, key: Hashable) -> Optional[Any]:
        return self._holders.get(key)

    def queue_len(self, key: Hashable) -> int:
        return len(self._queues.get(key, ()))

    @property
    def keys_held(self) -> int:
        return len(self._holders)

    def try_acquire(self, key: Hashable, holder: Any) -> bool:
        """Synchronous uncontended acquire: True iff ``holder`` now owns
        ``key`` (no event, no queue hop).  Accounting is identical to an
        uncontended :meth:`acquire`; on False the caller falls back to
        ``yield acquire(key, holder)``.
        """
        if key not in self._holders:
            self._holders[key] = holder
            self.acquisitions += 1
            self.wait_times.append(0.0)
            return True
        if self._holders[key] is holder:
            raise RuntimeError(
                f"{self.name}: holder already owns key {key!r} (not re-entrant)"
            )
        return False

    def acquire(self, key: Hashable, holder: Any) -> Event:
        """An event firing once ``holder`` owns ``key``'s lock (FIFO)."""
        if self._holders.get(key) is holder:
            raise RuntimeError(
                f"{self.name}: holder already owns key {key!r} (not re-entrant)"
            )
        if any(h is holder for _, h, _ in self._queues.get(key, ())):
            raise RuntimeError(
                f"{self.name}: holder already waiting on key {key!r}"
            )
        ev = Event(self.sim, name="lock")
        if key not in self._holders:
            self._holders[key] = holder
            self.acquisitions += 1
            self.wait_times.append(0.0)
            ev.succeed()
        else:
            self.contended += 1
            self._queues.setdefault(key, deque()).append((ev, holder, self.sim.now))
        return ev

    def release(self, key: Hashable, holder: Any) -> None:
        """Release ``key``; the next queued waiter (if any) is granted."""
        if self._holders.get(key) is not holder:
            raise RuntimeError(
                f"{self.name}: release of key {key!r} by a non-holder"
            )
        queue = self._queues.get(key)
        if queue:
            ev, nxt, t_requested = queue.popleft()
            if not queue:
                del self._queues[key]
            self._holders[key] = nxt
            self.acquisitions += 1
            self.wait_times.append(self.sim.now - t_requested)
            ev.succeed()
        else:
            del self._holders[key]

    def force_reset(self, error: Optional[BaseException] = None) -> None:
        """Abandon every held key and queued waiter (host crash recovery).

        A crashed OSD's aborted handler processes normally release their
        keys through ``finally`` blocks as the interrupt unwinds them, but a
        grant can race the interrupt: a dying holder's release hands the key
        to a waiter that is itself about to die, and the key would then be
        held by a corpse forever — wedging every later same-key acquirer.
        ``force_reset`` clears all holder/queue state; still-pending waiter
        events are failed with ``error`` so any live waiter gets a clean
        exception instead of sleeping forever.
        """
        error = error or RuntimeError(f"{self.name}: lock manager reset")
        for queue in self._queues.values():
            for ev, _holder, _t in queue:
                if not ev.triggered:
                    ev.fail(error)
        self._queues.clear()
        self._holders.clear()


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks (mailbox semantics); ``get`` returns an event that
    fires with the next item, in arrival order, waking getters FIFO.
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim, name="get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking pop; ``None`` when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def pop_all(self) -> List[Any]:
        """Drain every queued item at once (crash cleanup)."""
        items = list(self._items)
        self._items.clear()
        return items

    def cancel_getters(self) -> None:
        """Drop pending ``get`` events without firing them.

        A stopped dispatcher leaves its last ``get`` queued; if the host
        later restarts, that stale getter would silently eat the first
        ``put`` meant for the new dispatcher.  The abandoned events are
        never fired — their waiters are dead processes whose callbacks
        no-op anyway.
        """
        self._getters.clear()
