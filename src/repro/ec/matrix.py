"""GF(2^8) matrix algebra and erasure-code matrix constructions.

Both constructions the paper names (Eq. 1) are provided:

* **Vandermonde** — rows ``alpha_i^j``; made systematic by right-multiplying
  with the inverse of the top k x k square (the classic Jerasure transform),
  which keeps the code MDS while making the first k rows the identity.
* **Cauchy** — ``1 / (x_i + y_j)`` over disjoint element sets, systematic by
  construction when stacked under the identity.
"""

from __future__ import annotations

import numpy as np

from repro.gf.arithmetic import _EXP, _LOG, _MUL_TABLE, gf_inv

# Reusable gather scratch for gf_matmul (see comment at the use site).
_MATMUL_SCRATCH = [np.empty(0, dtype=np.uint8)]


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(256).

    Works for 2-D x 2-D and 2-D x (2-D of payload columns); payload matmul
    (coding_matrix @ data_blocks) is the hot path, so the inner loop runs one
    vectorised table-gather + XOR reduction per (row, k) pair.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("gf_matmul expects 2-D operands")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    # One reusable gather buffer: np.take(..., out=) instead of fancy
    # indexing removes the temporary allocation per (row, k) term — this
    # runs once per stripe in every consistency gate and scrub.  The
    # buffer is module-global (monotonically grown, views serve smaller
    # calls): the simulation is single-threaded and the scratch never
    # escapes the call, so one process-wide buffer removes the remaining
    # allocation per matmul.
    tmp = _MATMUL_SCRATCH[0]
    if tmp.size < b.shape[1]:
        tmp = _MATMUL_SCRATCH[0] = np.empty(b.shape[1], dtype=np.uint8)
    tmp = tmp[: b.shape[1]]
    for i in range(a.shape[0]):
        acc = out[i]
        row = a[i]
        for k in range(a.shape[1]):
            coeff = row[k]
            if coeff == 0:
                continue
            np.take(_MUL_TABLE[coeff], b[k], out=tmp)
            np.bitwise_xor(acc, tmp, out=acc)
    return out


def gf_matinv(m: np.ndarray) -> np.ndarray:
    """Inverse of a square GF(256) matrix by Gauss-Jordan elimination.

    Raises ``np.linalg.LinAlgError`` on singular input.
    """
    m = np.asarray(m, dtype=np.uint8)
    n = m.shape[0]
    if m.ndim != 2 or m.shape[1] != n:
        raise ValueError(f"gf_matinv expects a square matrix, got {m.shape}")
    aug = np.concatenate([m.copy(), np.eye(n, dtype=np.uint8)], axis=1)
    for col in range(n):
        pivot = -1
        for r in range(col, n):
            if aug[r, col] != 0:
                pivot = r
                break
        if pivot < 0:
            raise np.linalg.LinAlgError("singular matrix over GF(256)")
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        inv_p = gf_inv(int(aug[col, col]))
        aug[col] = _MUL_TABLE[inv_p][aug[col]]
        for r in range(n):
            if r != col and aug[r, col] != 0:
                factor = int(aug[r, col])
                np.bitwise_xor(aug[r], _MUL_TABLE[factor][aug[col]], out=aug[r])
    return aug[:, n:].copy()


def vandermonde_matrix(rows: int, cols: int) -> np.ndarray:
    """``rows x cols`` Vandermonde matrix with evaluation points 0..rows-1.

    Entry (i, j) = i^j in GF(256) with the convention 0^0 = 1.
    """
    if rows > 256:
        raise ValueError("at most 256 distinct evaluation points in GF(256)")
    out = np.zeros((rows, cols), dtype=np.uint8)
    out[:, 0] = 1
    for i in range(rows):
        if i == 0:
            continue
        li = int(_LOG[i])
        for j in range(1, cols):
            out[i, j] = _EXP[(li * j) % 255]
    return out


def systematic_vandermonde(k: int, m: int) -> np.ndarray:
    """Systematic (k+m) x k generator: identity on top, MDS parity below."""
    _check_km(k, m)
    v = vandermonde_matrix(k + m, k)
    top_inv = gf_matinv(v[:k])
    g = gf_matmul(v, top_inv)
    # Defensive: the transform must leave an exact identity on top.
    if not np.array_equal(g[:k], np.eye(k, dtype=np.uint8)):
        raise AssertionError("systematic transform failed to produce identity")
    return g


def cauchy_matrix(k: int, m: int) -> np.ndarray:
    """``m x k`` Cauchy parity matrix with x_i = i, y_j = m + j."""
    _check_km(k, m)
    out = np.zeros((m, k), dtype=np.uint8)
    for i in range(m):
        for j in range(k):
            out[i, j] = gf_inv(i ^ (m + j))
    return out


def systematic_cauchy(k: int, m: int) -> np.ndarray:
    """Systematic (k+m) x k generator using a Cauchy parity block."""
    _check_km(k, m)
    return np.concatenate([np.eye(k, dtype=np.uint8), cauchy_matrix(k, m)], axis=0)


def _check_km(k: int, m: int) -> None:
    if k < 1 or m < 1:
        raise ValueError(f"k and m must be positive, got k={k} m={m}")
    if k + m > 256:
        raise ValueError(f"RS over GF(256) requires k+m <= 256, got {k + m}")
