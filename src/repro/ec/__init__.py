"""Reed-Solomon erasure coding over GF(2^8).

Implements the math the paper relies on:

* systematic encoding matrices built from Vandermonde or Cauchy
  constructions (:mod:`repro.ec.matrix`);
* full encode / any-k decode (:class:`repro.ec.rs.RSCodec`);
* the incremental-update identities of Eqs. (2)-(5): parity deltas from data
  deltas, same-offset delta merging, and cross-block delta combining
  (:mod:`repro.ec.rs`);
* stripe geometry — mapping a byte range of a file onto (stripe, block,
  offset) triples (:mod:`repro.ec.stripe`).
"""

from repro.ec.matrix import (
    cauchy_matrix,
    gf_matmul,
    gf_matinv,
    systematic_cauchy,
    systematic_vandermonde,
    vandermonde_matrix,
)
from repro.ec.rs import RSCodec, combine_deltas, merge_delta, parity_delta
from repro.ec.stripe import BlockAddr, Stripe, StripeMap

__all__ = [
    "BlockAddr",
    "RSCodec",
    "Stripe",
    "StripeMap",
    "cauchy_matrix",
    "combine_deltas",
    "gf_matinv",
    "gf_matmul",
    "merge_delta",
    "parity_delta",
    "systematic_cauchy",
    "systematic_vandermonde",
    "vandermonde_matrix",
]
