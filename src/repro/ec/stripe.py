"""Stripe geometry: mapping file byte ranges onto (stripe, block, offset).

A file is striped RAID-0 style across stripes of k data blocks; each stripe
additionally stores m parity blocks.  ``StripeMap`` is pure geometry (no
bytes); the file system layers placement and storage on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class BlockAddr:
    """Identifies one block of one stripe of one file.

    ``block_index`` is global within the stripe: 0..k-1 are data blocks,
    k..k+m-1 are parity blocks.
    """

    inode: int
    stripe: int
    block_index: int

    def is_parity(self, k: int) -> bool:
        return self.block_index >= k

    def key(self) -> Tuple[int, int, int]:
        return (self.inode, self.stripe, self.block_index)


@dataclass(frozen=True)
class Extent:
    """A contiguous range inside one data block, in block-local bytes."""

    addr: BlockAddr
    offset: int
    length: int
    file_offset: int  # where this extent starts in the file


@dataclass(frozen=True)
class Stripe:
    """Static geometry of one stripe."""

    inode: int
    index: int
    k: int
    m: int
    block_size: int

    @property
    def data_span(self) -> int:
        return self.k * self.block_size

    def blocks(self) -> Iterator[BlockAddr]:
        for b in range(self.k + self.m):
            yield BlockAddr(self.inode, self.index, b)

    def data_blocks(self) -> Iterator[BlockAddr]:
        for b in range(self.k):
            yield BlockAddr(self.inode, self.index, b)

    def parity_blocks(self) -> Iterator[BlockAddr]:
        for b in range(self.k, self.k + self.m):
            yield BlockAddr(self.inode, self.index, b)


class StripeMap:
    """Translates file byte ranges to per-block extents for an RS(k,m) file."""

    def __init__(self, k: int, m: int, block_size: int):
        if block_size < 1:
            raise ValueError("block_size must be positive")
        if k < 1 or m < 0:
            raise ValueError(f"invalid geometry k={k} m={m}")
        self.k = k
        self.m = m
        self.block_size = block_size
        self.stripe_span = k * block_size

    def stripe_of(self, file_offset: int) -> int:
        return file_offset // self.stripe_span

    def locate(self, file_offset: int) -> Tuple[int, int, int]:
        """(stripe, data_block_index, block_offset) of one file byte."""
        if file_offset < 0:
            raise ValueError("negative file offset")
        stripe, within = divmod(file_offset, self.stripe_span)
        block, off = divmod(within, self.block_size)
        return stripe, block, off

    def extents(self, inode: int, file_offset: int, length: int) -> List[Extent]:
        """Split ``[file_offset, file_offset+length)`` into block extents.

        Extents are returned in file order and never cross a block boundary.
        """
        if length < 0:
            raise ValueError("negative length")
        out: List[Extent] = []
        pos = file_offset
        remaining = length
        while remaining > 0:
            stripe, block, off = self.locate(pos)
            take = min(remaining, self.block_size - off)
            out.append(
                Extent(
                    addr=BlockAddr(inode, stripe, block),
                    offset=off,
                    length=take,
                    file_offset=pos,
                )
            )
            pos += take
            remaining -= take
        return out

    def stripe(self, inode: int, index: int) -> Stripe:
        return Stripe(inode, index, self.k, self.m, self.block_size)

    def stripes_touched(self, file_offset: int, length: int) -> List[int]:
        if length <= 0:
            return []
        first = self.stripe_of(file_offset)
        last = self.stripe_of(file_offset + length - 1)
        return list(range(first, last + 1))
