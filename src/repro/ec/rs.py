"""Systematic Reed-Solomon codec and the incremental-update identities.

:class:`RSCodec` is the functional core used by both the simulated file
system and the unit tests: blocks are real ``uint8`` buffers and parity is
really computed, so every experiment doubles as a correctness check.

The delta helpers implement the equations the paper optimises around:

* Eq. (2)  ``parity_delta(j, p, d_new - d_old)`` — one update's parity patch;
* Eq. (3)  ``merge_delta`` — same-location deltas across time XOR into one;
* Eq. (5)  ``combine_deltas`` — same-offset deltas from *different* data
  blocks of one stripe collapse into a single combined parity delta per
  parity block.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.dataplane import GhostExtent, GhostMaterializationError, as_payload, is_ghost
from repro.ec.matrix import (
    gf_matinv,
    gf_matmul,
    systematic_cauchy,
    systematic_vandermonde,
)
from repro.gf.arithmetic import _MUL_BYTES, _MUL_TABLE


class RSCodec:
    """A systematic RS(k, m) code over GF(2^8).

    Parameters
    ----------
    k, m:
        Data and parity block counts; any k of the k+m blocks reconstruct.
    construction:
        ``"vandermonde"`` (default, matches Eq. 1's description) or
        ``"cauchy"``.
    """

    def __init__(self, k: int, m: int, construction: str = "vandermonde"):
        if construction == "vandermonde":
            self.generator = systematic_vandermonde(k, m)
        elif construction == "cauchy":
            self.generator = systematic_cauchy(k, m)
        else:
            raise ValueError(f"unknown construction {construction!r}")
        self.k = k
        self.m = m
        self.construction = construction
        # m x k parity-coefficient block (the ∂ of Eqs. 2-5).
        self.parity_matrix = self.generator[k:].copy()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RSCodec(k={self.k}, m={self.m}, {self.construction})"

    # ------------------------------------------------------------------
    # encode / decode
    # ------------------------------------------------------------------
    def encode(self, data_blocks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Compute the m parity blocks for k equal-length data blocks.

        Ghost plane: a GF matrix product of metadata-only extents is pure
        size bookkeeping — validate the geometry exactly as ``_stack``
        would, then return one fresh ghost extent per parity block.
        """
        if any(is_ghost(b) for b in data_blocks):
            if len(data_blocks) != self.k:
                raise ValueError(
                    f"expected {self.k} blocks, got {len(data_blocks)}"
                )
            sizes = {int(b.size) for b in data_blocks}
            if len(sizes) != 1:
                raise ValueError(
                    f"blocks must be equal-length, got sizes {sorted(sizes)}"
                )
            n = sizes.pop()
            return [GhostExtent(n, tag="parity") for _ in range(self.m)]
        stacked = self._stack(data_blocks, self.k)
        parity = gf_matmul(self.parity_matrix, stacked)
        # Rows of the freshly computed product — views, not per-row copies.
        # The rows are disjoint and the 2-D base is exclusively theirs.
        return list(parity)

    def coefficient(self, parity_index: int, data_index: int) -> int:
        """∂_{p,j}: the coefficient tying data block j to parity block p."""
        return int(self.parity_matrix[parity_index, data_index])

    def decode(
        self, shards: Mapping[int, np.ndarray], block_size: Optional[int] = None
    ) -> List[np.ndarray]:
        """Recover all k data blocks from any k surviving shards.

        ``shards`` maps global block index (0..k+m-1; parity starts at k) to
        its payload.  Raises ``ValueError`` with fewer than k shards.
        """
        if len(shards) < self.k:
            raise ValueError(
                f"need at least k={self.k} shards to decode, got {len(shards)}"
            )
        if any(is_ghost(s) for s in shards.values()):
            raise GhostMaterializationError(
                "RS decode needs real payload bytes; ghost-plane scenarios "
                "cannot reconstruct — run fault/rebuild workloads on the "
                "byte plane"
            )
        idx = sorted(shards)[: self.k]
        sub = self.generator[idx]
        inv = gf_matinv(sub)
        stacked = self._stack([shards[i] for i in idx], self.k, block_size)
        data = gf_matmul(inv, stacked)
        # Rows of a fresh product; see encode().
        return list(data)

    def reconstruct(
        self, shards: Mapping[int, np.ndarray], missing: Iterable[int]
    ) -> Dict[int, np.ndarray]:
        """Rebuild the requested missing block indices (data or parity)."""
        missing = list(missing)
        data = self.decode(shards)
        out: Dict[int, np.ndarray] = {}
        parity_cache: Optional[List[np.ndarray]] = None
        for b in missing:
            if b < 0 or b >= self.k + self.m:
                raise ValueError(f"block index {b} out of range")
            if b < self.k:
                out[b] = data[b]
            else:
                if parity_cache is None:
                    parity_cache = self.encode(data)
                out[b] = parity_cache[b - self.k]
        return out

    # ------------------------------------------------------------------
    # incremental-update identities
    # ------------------------------------------------------------------
    def parity_delta(
        self, data_index: int, parity_index: int, data_delta: np.ndarray
    ) -> np.ndarray:
        """Eq. (2): the patch for one parity block from one data delta."""
        coeff = int(self.parity_matrix[parity_index, data_index])
        return parity_delta(coeff, data_delta)

    def apply_update(
        self,
        old_parity: np.ndarray,
        data_index: int,
        parity_index: int,
        data_delta: np.ndarray,
        offset: int = 0,
    ) -> np.ndarray:
        """Patch ``old_parity`` in place-semantics (returns a new array)."""
        out = as_payload(old_parity).copy()
        delta = self.parity_delta(data_index, parity_index, data_delta)
        if offset + delta.size > out.size:
            raise ValueError("delta overruns parity block")
        out[offset : offset + delta.size] ^= delta
        return out

    def combine_deltas(
        self, parity_index: int, deltas: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Eq. (5): same-offset deltas of several data blocks -> one patch.

        ``deltas`` maps data-block index -> data delta (equal lengths).
        """
        return combine_deltas(self.parity_matrix, parity_index, deltas)

    # ------------------------------------------------------------------
    @staticmethod
    def _stack(
        blocks: Sequence[np.ndarray], expect: int, block_size: Optional[int] = None
    ) -> np.ndarray:
        if len(blocks) != expect:
            raise ValueError(f"expected {expect} blocks, got {len(blocks)}")
        arrs = [np.asarray(b, dtype=np.uint8) for b in blocks]
        sizes = {a.size for a in arrs}
        if len(sizes) != 1:
            raise ValueError(f"blocks must be equal-length, got sizes {sorted(sizes)}")
        if block_size is not None and sizes.pop() != block_size:
            raise ValueError("block size mismatch")
        return np.stack(arrs, axis=0)


def parity_delta(coeff: int, data_delta: np.ndarray) -> np.ndarray:
    """Eq. (2) helper for a raw coefficient.

    Returns a fresh, writable array (callers hand the patch to log indexes
    that take ownership).  ``bytes.translate`` against a cached 256-byte
    row replaces numpy fancy indexing — same values, no index-dtype
    conversion, ~3-5x faster on update-sized buffers; coefficient 1 (the
    XOR parity row of every systematic construction) degenerates to one
    memcpy and 0 to a calloc.

    Ghost plane: the GF(2^8) scalar multiply of a metadata-only extent is
    a same-length extent — return a fresh ghost (the byte plane returns a
    fresh buffer for every coefficient too, so ownership matches).
    """
    if type(data_delta) is GhostExtent:
        return data_delta.copy()
    if type(data_delta) is not np.ndarray or data_delta.dtype != np.uint8:
        data_delta = np.asarray(data_delta, dtype=np.uint8)
    if coeff == 1:
        return data_delta.copy()
    if coeff == 0:
        return np.zeros_like(data_delta)
    out = np.frombuffer(
        bytearray(data_delta.tobytes().translate(_MUL_BYTES[coeff])),
        dtype=np.uint8,
    )
    return out if data_delta.ndim == 1 else out.reshape(data_delta.shape)


def merge_delta(older: np.ndarray, newer: np.ndarray) -> np.ndarray:
    """Eq. (3): two deltas for the same location collapse by XOR."""
    if is_ghost(older) or is_ghost(newer):
        if int(older.size) != int(newer.size):
            raise ValueError("merge_delta requires equal-shape deltas")
        return GhostExtent(int(older.size))
    older = np.asarray(older, dtype=np.uint8)
    newer = np.asarray(newer, dtype=np.uint8)
    if older.shape != newer.shape:
        raise ValueError("merge_delta requires equal-shape deltas")
    return np.bitwise_xor(older, newer)


# Reusable scratch for the table-gather temporary inside combine_deltas.
# The simulation is single-threaded and the scratch never escapes the
# call, so one process-wide buffer is safe; it removes the one numpy
# allocation per folded delta.  A single monotonically-grown buffer (views
# serve smaller sizes) keeps the footprint bounded by the largest delta
# ever combined, instead of one retained buffer per distinct size.
_SCRATCH: List[np.ndarray] = [np.empty(0, dtype=np.uint8)]


def _scratch(n: int) -> np.ndarray:
    buf = _SCRATCH[0]
    if buf.size < n:
        buf = _SCRATCH[0] = np.empty(n, dtype=np.uint8)
    return buf[:n]


def combine_deltas(
    parity_matrix: np.ndarray, parity_index: int, deltas: Mapping[int, np.ndarray]
) -> np.ndarray:
    """Eq. (5): fold same-offset deltas of several data blocks into one patch."""
    if not deltas:
        raise ValueError("no deltas to combine")
    if len(deltas) == 1:
        # Fused single-extent fast path — the overwhelmingly common case
        # (one small update touches one data block): Eq. (5) degenerates to
        # Eq. (2), one translate/copy kernel with no zero-fill or XOR pass.
        ((data_index, delta),) = deltas.items()
        return parity_delta(
            int(parity_matrix[parity_index, data_index]), delta
        )
    items = sorted(deltas.items())
    size = {int(d.size) if is_ghost(d) else np.asarray(d).size for _, d in items}
    if len(size) != 1:
        raise ValueError("combine_deltas requires equal-length deltas")
    n = size.pop()
    if any(is_ghost(d) for _, d in items):
        # Eq. (5) over ghosts: the folded patch is length bookkeeping.
        return GhostExtent(int(n))
    out = np.zeros(n, dtype=np.uint8)
    tmp = _scratch(n)
    for data_index, delta in items:
        coeff = int(parity_matrix[parity_index, data_index])
        if coeff:
            np.take(_MUL_TABLE[coeff], np.asarray(delta, dtype=np.uint8), out=tmp)
            np.bitwise_xor(out, tmp, out=out)
    return out
