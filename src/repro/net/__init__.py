"""Cluster network model.

A :class:`~repro.net.fabric.Fabric` connects named endpoints through
full-duplex :class:`~repro.net.nic.NIC` ports and a non-blocking switch
(the paper's testbeds use 25 Gb/s Ethernet / 40 Gb/s InfiniBand with far
more backplane than edge bandwidth, so only the NICs queue).

A transfer costs: sender serialisation (tx port held for size/bandwidth),
wire+stack latency, receiver deserialisation (rx port).  Every *completed*
transfer is counted toward Table 1's NETWORK column.

Per-endpoint links can be degraded live (:meth:`Fabric.degrade_link`):
scaled bandwidth, added latency, and deterministic egress loss
(:class:`~repro.net.fabric.LinkLossError`) for the fault plane.
"""

from repro.net.fabric import (
    Fabric,
    LinkLossError,
    LinkState,
    NetworkProfile,
    NET_25GBE,
    NET_40GIB,
)
from repro.net.nic import NIC

__all__ = [
    "Fabric",
    "LinkLossError",
    "LinkState",
    "NIC",
    "NET_25GBE",
    "NET_40GIB",
    "NetworkProfile",
]
