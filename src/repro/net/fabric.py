"""The switch fabric: endpoint registry and transfer costing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.metrics.counters import NetCounters
from repro.net.nic import NIC
from repro.sim.core import Simulator

GBIT = 1e9 / 8


@dataclass(frozen=True)
class NetworkProfile:
    """Edge bandwidth and per-message base latency of a fabric."""

    name: str
    bandwidth: float  # bytes/second per NIC direction
    base_latency: float  # switch + stack latency per message, seconds
    header_bytes: int = 128  # protocol framing charged per message


# The SSD testbed: 25 Gb/s Ethernet.
NET_25GBE = NetworkProfile(name="25gbe", bandwidth=25 * GBIT, base_latency=30e-6)
# The HDD testbed: 40 Gb/s InfiniBand (lower stack latency).
NET_40GIB = NetworkProfile(name="40gib", bandwidth=40 * GBIT, base_latency=8e-6)


class Fabric:
    """A non-blocking switch connecting named NIC endpoints."""

    def __init__(self, sim: Simulator, profile: NetworkProfile = NET_25GBE):
        self.sim = sim
        self.profile = profile
        self.nics: Dict[str, NIC] = {}
        self.counters = NetCounters()

    def attach(self, endpoint: str) -> NIC:
        """Register an endpoint; idempotent per name."""
        nic = self.nics.get(endpoint)
        if nic is None:
            nic = NIC(self.sim, self.profile.bandwidth, name=endpoint)
            self.nics[endpoint] = nic
        return nic

    def transfer(self, src: str, dst: str, nbytes: int, kind: str = ""):
        """Move ``nbytes`` from ``src`` to ``dst`` (generator; yields events).

        Local transfers (src == dst) cost nothing and are not counted —
        the paper's network-traffic numbers are inter-node bytes.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if src == dst:
            return
        try:
            src_nic = self.nics[src]
            dst_nic = self.nics[dst]
        except KeyError as missing:
            raise KeyError(f"endpoint {missing.args[0]!r} not attached") from None
        wire = nbytes + self.profile.header_bytes
        self.counters.record(nbytes, kind)
        src_nic.counters.record(nbytes, kind)
        yield from src_nic.tx.use(src_nic.wire_time(wire))
        yield self.sim.timeout(self.profile.base_latency)
        yield from dst_nic.rx.use(dst_nic.wire_time(wire))
