"""The switch fabric: endpoint registry and transfer costing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.metrics.counters import NetCounters
from repro.net.nic import NIC
from repro.sim.core import At, Simulator

GBIT = 1e9 / 8


class LinkLossError(RuntimeError):
    """A message was dropped on a lossy degraded link.

    Raised by :meth:`Fabric.transfer` after the serialisation leg, before
    delivery — the receiver never sees the message.  Callers treat it like
    a transient transport fault (``rpc_with_retry`` retries; the client
    data path retries the whole attempt).
    """

    def __init__(self, endpoint: str, kind: str):
        super().__init__(f"message {kind or 'raw'!r} dropped on lossy link {endpoint!r}")
        self.endpoint = endpoint
        self.kind = kind


@dataclass
class LinkState:
    """Degradation overrides for one endpoint (see ``Fabric.degrade_link``)."""

    bw_factor: float = 1.0      # effective bandwidth = profile bw * factor
    extra_latency: float = 0.0  # added to base_latency per message
    loss_every: int = 0         # drop every Nth *egress* message (0 = none)
    loss_scope: str = "requests"  # "requests" exempts .reply/.err frames;
                                  # "all" drops any egress frame
    messages: int = 0           # egress messages considered for loss
    dropped_requests: int = 0   # request frames dropped
    dropped_replies: int = 0    # .reply/.err frames dropped (scope "all")

    @property
    def dropped(self) -> int:
        """Total egress messages dropped on this link, both directions."""
        return self.dropped_requests + self.dropped_replies


@dataclass(frozen=True)
class NetworkProfile:
    """Edge bandwidth and per-message base latency of a fabric."""

    name: str
    bandwidth: float  # bytes/second per NIC direction
    base_latency: float  # switch + stack latency per message, seconds
    header_bytes: int = 128  # protocol framing charged per message


# The SSD testbed: 25 Gb/s Ethernet.
NET_25GBE = NetworkProfile(name="25gbe", bandwidth=25 * GBIT, base_latency=30e-6)
# The HDD testbed: 40 Gb/s InfiniBand (lower stack latency).
NET_40GIB = NetworkProfile(name="40gib", bandwidth=40 * GBIT, base_latency=8e-6)


class Fabric:
    """A non-blocking switch connecting named NIC endpoints.

    ``fast_plane`` (off by default; enabled by the scenario runner for
    fault-free runs) switches :meth:`transfer` to projected-completion
    mode: the whole tx -> switch -> rx pipeline becomes a single
    absolute-time sleep computed from the NICs' busy-until clocks, instead
    of three kernel timers.  The float arithmetic follows the event path's
    operation order step for step, so completion instants are bit-identical.
    It must stay off when hosts can crash mid-transfer: the event path
    frees a NIC direction early when its holder is interrupted, which the
    projected clocks cannot model.  The same contract applies to link
    degradation: a degraded or lossy link only exists in fault scenarios,
    which already run the event plane (the scenario runner forces
    ``fast_dataplane`` off whenever a fault schedule is present).

    Per-endpoint degradation (``degrade_link``) scales that endpoint's
    serialisation bandwidth and adds per-message latency; lossy mode drops
    every Nth message *sent* by the endpoint.  The loss scope selects the
    frames at risk: ``"requests"`` exempts ``.reply``/``.err`` frames (a
    drop then always precedes any handler state change, so whole-op
    retries are trivially safe), while ``"all"`` may drop any egress
    frame — safe only because the RPC plane dedups retransmitted request
    ids and replays cached replies (at-most-once delivery,
    ``repro.fs.messages``).
    """

    def __init__(self, sim: Simulator, profile: NetworkProfile = NET_25GBE):
        self.sim = sim
        self.profile = profile
        self.nics: Dict[str, NIC] = {}
        self.counters = NetCounters()
        self.fast_plane = False
        # endpoint name -> LinkState; absent == healthy.  Drops survive
        # heal_link(): the live link's per-direction counters are folded
        # into the fabric totals before the state is popped, so scenario
        # metrics can read them after the schedule heals everything.
        self._links: Dict[str, LinkState] = {}
        self._dropped_requests = 0
        self._dropped_replies = 0

    @property
    def dropped_requests(self) -> int:
        """Request frames dropped, healed links folded in."""
        return self._dropped_requests + sum(
            link.dropped_requests for link in self._links.values()
        )

    @property
    def dropped_replies(self) -> int:
        """``.reply``/``.err`` frames dropped, healed links folded in."""
        return self._dropped_replies + sum(
            link.dropped_replies for link in self._links.values()
        )

    @property
    def dropped_total(self) -> int:
        return self.dropped_requests + self.dropped_replies

    # ------------------------------------------------------------------
    # link degradation plane
    # ------------------------------------------------------------------
    def degrade_link(
        self,
        endpoint: str,
        bw_factor: float = 1.0,
        extra_latency: float = 0.0,
        loss_every: int = 0,
        loss_scope: str = "requests",
    ) -> None:
        """Degrade one endpoint's link; calling again replaces the state.

        ``loss_scope`` selects which egress frames the deterministic
        counter-based loss considers: ``"requests"`` (historical default)
        exempts ``.reply``/``.err`` frames entirely — they pass through
        without even advancing the loss counter — while ``"all"`` counts
        and may drop every egress frame.  Scope ``"all"`` is only safe
        because the RPC plane is at-most-once (request dedup + reply
        caching in ``repro.fs.messages``); see docs/faults.md.
        """
        if endpoint not in self.nics:
            raise KeyError(f"endpoint {endpoint!r} not attached")
        if bw_factor <= 0:
            raise ValueError(f"bw_factor must be > 0, got {bw_factor!r}")
        if extra_latency < 0:
            raise ValueError(f"extra_latency must be >= 0, got {extra_latency!r}")
        if loss_every < 0:
            raise ValueError(f"loss_every must be >= 0, got {loss_every!r}")
        if loss_scope not in ("requests", "all"):
            raise ValueError(
                f"loss_scope must be 'requests' or 'all', got {loss_scope!r}"
            )
        self._links[endpoint] = LinkState(
            bw_factor=float(bw_factor),
            extra_latency=float(extra_latency),
            loss_every=int(loss_every),
            loss_scope=loss_scope,
        )

    def heal_link(self, endpoint: str) -> None:
        """Return an endpoint's link to profile speed; idempotent.

        Drop counters are folded into the fabric totals so the metrics
        survive the heal.
        """
        link = self._links.pop(endpoint, None)
        if link is not None:
            self._dropped_requests += link.dropped_requests
            self._dropped_replies += link.dropped_replies

    def link_state(self, endpoint: str) -> "LinkState | None":
        return self._links.get(endpoint)

    def _egress_drop(self, link: LinkState, kind: str) -> bool:
        """Deterministic counter-based loss for one egress message."""
        if not link.loss_every:
            return False
        is_reply = kind.endswith(".reply") or kind.endswith(".err")
        if is_reply and link.loss_scope != "all":
            # Scope "requests": replies and shipped errors pass through
            # without advancing the loss counter — the historical counter
            # stream the committed bench rows encode.
            return False
        link.messages += 1
        if link.messages % link.loss_every == 0:
            if is_reply:
                link.dropped_replies += 1
            else:
                link.dropped_requests += 1
            return True
        return False

    def attach(self, endpoint: str) -> NIC:
        """Register an endpoint; idempotent per name."""
        nic = self.nics.get(endpoint)
        if nic is None:
            nic = NIC(self.sim, self.profile.bandwidth, name=endpoint)
            self.nics[endpoint] = nic
        return nic

    def transfer(self, src: str, dst: str, nbytes: int, kind: str = ""):
        """Move ``nbytes`` from ``src`` to ``dst`` (generator; yields events).

        Local transfers (src == dst) cost nothing and are not counted —
        the paper's network-traffic numbers are inter-node bytes.  Traffic
        counters are recorded at *completion*: a sender that crashes
        mid-transfer (or a lossy-link drop) contributes no bytes to the
        traffic rows.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if src == dst:
            return
        try:
            src_nic = self.nics[src]
            dst_nic = self.nics[dst]
        except KeyError as missing:
            raise KeyError(f"endpoint {missing.args[0]!r} not attached") from None
        wire = nbytes + self.profile.header_bytes
        # Leg costs: computed up front so link degradation can scale them.
        # With no degraded links these are the exact float expressions the
        # legs below used to evaluate inline — completion instants on the
        # healthy path are bit-identical.
        tx_time = wire / src_nic.bandwidth
        rx_time = wire / dst_nic.bandwidth
        latency = float(self.profile.base_latency)
        dropped = False
        if self._links:
            src_link = self._links.get(src)
            dst_link = self._links.get(dst)
            if src_link is not None:
                if src_link.bw_factor != 1.0:
                    tx_time /= src_link.bw_factor
                latency += src_link.extra_latency
                dropped = self._egress_drop(src_link, kind)
            if dst_link is not None:
                if dst_link.bw_factor != 1.0:
                    rx_time /= dst_link.bw_factor
                latency += dst_link.extra_latency
        if self.fast_plane:
            # Projected completions, two sleeps instead of three-plus-queue
            # events.  The tx direction is FIFO in *issue* order (only this
            # endpoint sends on it), so its grant and completion project at
            # issue time; the rx direction receives from many senders, so
            # its FIFO claim must happen at *arrival* time — claiming it
            # here would serve receivers in issue order, not arrival order.
            # Each float op mirrors the event path's exactly.
            now = self.sim.now
            start = src_nic.tx_busy
            if start < now:
                start = now
            tx_done = start + tx_time
            src_nic.tx_busy = tx_done
            yield At(tx_done + latency)
            if dropped:
                raise LinkLossError(src, kind)
            arrive = self.sim.now
            rx_start = dst_nic.rx_busy
            if rx_start < arrive:
                rx_start = arrive
            done = rx_start + rx_time
            dst_nic.rx_busy = done
            yield At(done)
            self.counters.record(nbytes, kind)
            src_nic.counters.record(nbytes, kind)
            return
        # Serialisation legs take the uncontended Resource fast path (a
        # free channel costs one float sleep, no sub-generator, no event);
        # a busy channel takes the FIFO queue via the normal helper.
        tx = src_nic.tx
        if tx.try_acquire():
            try:
                yield tx_time
            finally:
                tx.release()
        else:
            yield from tx.use(tx_time)
        yield latency
        if dropped:
            # The message left the wire but never arrives: the sender paid
            # serialisation + switch latency, the receiver sees nothing.
            raise LinkLossError(src, kind)
        rx = dst_nic.rx
        if rx.try_acquire():
            try:
                yield rx_time
            finally:
                rx.release()
        else:
            yield from rx.use(rx_time)
        self.counters.record(nbytes, kind)
        src_nic.counters.record(nbytes, kind)
