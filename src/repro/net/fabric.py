"""The switch fabric: endpoint registry and transfer costing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.metrics.counters import NetCounters
from repro.net.nic import NIC
from repro.sim.core import At, Simulator

GBIT = 1e9 / 8


@dataclass(frozen=True)
class NetworkProfile:
    """Edge bandwidth and per-message base latency of a fabric."""

    name: str
    bandwidth: float  # bytes/second per NIC direction
    base_latency: float  # switch + stack latency per message, seconds
    header_bytes: int = 128  # protocol framing charged per message


# The SSD testbed: 25 Gb/s Ethernet.
NET_25GBE = NetworkProfile(name="25gbe", bandwidth=25 * GBIT, base_latency=30e-6)
# The HDD testbed: 40 Gb/s InfiniBand (lower stack latency).
NET_40GIB = NetworkProfile(name="40gib", bandwidth=40 * GBIT, base_latency=8e-6)


class Fabric:
    """A non-blocking switch connecting named NIC endpoints.

    ``fast_plane`` (off by default; enabled by the scenario runner for
    fault-free runs) switches :meth:`transfer` to projected-completion
    mode: the whole tx -> switch -> rx pipeline becomes a single
    absolute-time sleep computed from the NICs' busy-until clocks, instead
    of three kernel timers.  The float arithmetic follows the event path's
    operation order step for step, so completion instants are bit-identical.
    It must stay off when hosts can crash mid-transfer: the event path
    frees a NIC direction early when its holder is interrupted, which the
    projected clocks cannot model.
    """

    def __init__(self, sim: Simulator, profile: NetworkProfile = NET_25GBE):
        self.sim = sim
        self.profile = profile
        self.nics: Dict[str, NIC] = {}
        self.counters = NetCounters()
        self.fast_plane = False

    def attach(self, endpoint: str) -> NIC:
        """Register an endpoint; idempotent per name."""
        nic = self.nics.get(endpoint)
        if nic is None:
            nic = NIC(self.sim, self.profile.bandwidth, name=endpoint)
            self.nics[endpoint] = nic
        return nic

    def transfer(self, src: str, dst: str, nbytes: int, kind: str = ""):
        """Move ``nbytes`` from ``src`` to ``dst`` (generator; yields events).

        Local transfers (src == dst) cost nothing and are not counted —
        the paper's network-traffic numbers are inter-node bytes.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if src == dst:
            return
        try:
            src_nic = self.nics[src]
            dst_nic = self.nics[dst]
        except KeyError as missing:
            raise KeyError(f"endpoint {missing.args[0]!r} not attached") from None
        wire = nbytes + self.profile.header_bytes
        self.counters.record(nbytes, kind)
        src_nic.counters.record(nbytes, kind)
        if self.fast_plane:
            # Projected completions, two sleeps instead of three-plus-queue
            # events.  The tx direction is FIFO in *issue* order (only this
            # endpoint sends on it), so its grant and completion project at
            # issue time; the rx direction receives from many senders, so
            # its FIFO claim must happen at *arrival* time — claiming it
            # here would serve receivers in issue order, not arrival order.
            # Each float op mirrors the event path's exactly.
            now = self.sim.now
            start = src_nic.tx_busy
            if start < now:
                start = now
            tx_done = start + wire / src_nic.bandwidth
            src_nic.tx_busy = tx_done
            yield At(tx_done + self.profile.base_latency)
            arrive = self.sim.now
            rx_start = dst_nic.rx_busy
            if rx_start < arrive:
                rx_start = arrive
            done = rx_start + wire / dst_nic.bandwidth
            dst_nic.rx_busy = done
            yield At(done)
            return
        # Serialisation legs take the uncontended Resource fast path (a
        # free channel costs one float sleep, no sub-generator, no event);
        # a busy channel takes the FIFO queue via the normal helper.
        tx = src_nic.tx
        if tx.try_acquire():
            try:
                yield wire / src_nic.bandwidth
            finally:
                tx.release()
        else:
            yield from tx.use(src_nic.wire_time(wire))
        yield float(self.profile.base_latency)
        rx = dst_nic.rx
        if rx.try_acquire():
            try:
                yield wire / dst_nic.bandwidth
            finally:
                rx.release()
        else:
            yield from rx.use(dst_nic.wire_time(wire))
