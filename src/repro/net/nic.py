"""A full-duplex network port."""

from __future__ import annotations

from repro.metrics.counters import NetCounters
from repro.sim.core import Simulator
from repro.sim.resources import Resource


class NIC:
    """One endpoint's network interface: independent tx and rx queues.

    ``bandwidth`` is bytes/second per direction.  Serialisation of one
    message holds the direction's resource for ``nbytes / bandwidth``; the
    per-message fixed cost lives in the fabric's latency term.
    """

    def __init__(self, sim: Simulator, bandwidth: float, name: str = "nic"):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth = bandwidth
        self.name = name
        self.tx = Resource(sim, capacity=1, name=f"{name}.tx")
        self.rx = Resource(sim, capacity=1, name=f"{name}.rx")
        self.counters = NetCounters()
        # Projected-completion bookkeeping for the fabric's fast plane
        # (fault-free runs): the virtual time each direction is busy until.
        # FIFO algebra over these floats reproduces the event-per-leg
        # Resource timings exactly.
        self.tx_busy = 0.0
        self.rx_busy = 0.0

    def wire_time(self, nbytes: int) -> float:
        return nbytes / self.bandwidth
