"""Operation, byte, network and wear counters.

These counters are the ground truth behind Table 1 ("Storage Workload and
Network Traffic") and the SSD-lifespan claims: every simulated device I/O and
every simulated network transfer increments exactly one of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

GB = 1 << 30


@dataclass
class OpCounters:
    """I/O accounting for one storage device.

    ``overwrite`` tracks in-place writes to already-written device ranges —
    the "write penalty" column of Table 1.  Overwrites are also counted in
    the plain write counters (an overwrite *is* a write), mirroring how the
    paper reports both columns independently.
    """

    read_ops_seq: int = 0
    read_ops_rand: int = 0
    read_bytes_seq: int = 0
    read_bytes_rand: int = 0
    write_ops_seq: int = 0
    write_ops_rand: int = 0
    write_bytes_seq: int = 0
    write_bytes_rand: int = 0
    overwrite_ops: int = 0
    overwrite_bytes: int = 0

    def record_read(self, nbytes: int, sequential: bool) -> None:
        if sequential:
            self.read_ops_seq += 1
            self.read_bytes_seq += nbytes
        else:
            self.read_ops_rand += 1
            self.read_bytes_rand += nbytes

    def record_write(self, nbytes: int, sequential: bool, overwrite: bool) -> None:
        if sequential:
            self.write_ops_seq += 1
            self.write_bytes_seq += nbytes
        else:
            self.write_ops_rand += 1
            self.write_bytes_rand += nbytes
        if overwrite:
            self.overwrite_ops += 1
            self.overwrite_bytes += nbytes

    # ------------------------------------------------------------------
    @property
    def read_ops(self) -> int:
        return self.read_ops_seq + self.read_ops_rand

    @property
    def write_ops(self) -> int:
        return self.write_ops_seq + self.write_ops_rand

    @property
    def rw_ops(self) -> int:
        """Total read+write operation count (Table 1 READ/WRITE Num.)."""
        return self.read_ops + self.write_ops

    @property
    def read_bytes(self) -> int:
        return self.read_bytes_seq + self.read_bytes_rand

    @property
    def write_bytes(self) -> int:
        return self.write_bytes_seq + self.write_bytes_rand

    @property
    def rw_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    def merge(self, other: "OpCounters") -> "OpCounters":
        """Elementwise sum, for cluster-wide aggregation."""
        out = OpCounters()
        for f in self.__dataclass_fields__:
            setattr(out, f, getattr(self, f) + getattr(other, f))
        return out

    @staticmethod
    def aggregate(counters) -> "OpCounters":
        out = OpCounters()
        for c in counters:
            out = out.merge(c)
        return out


@dataclass
class WearModel:
    """FTL-lite flash wear accounting.

    NAND pages are written whole; an in-place logical overwrite invalidates
    pages that garbage collection must later erase and rewrite.  We charge:

    * page writes: ``ceil(nbytes / page)`` per write, plus GC write
      amplification on overwrites;
    * erases: invalidated bytes divided by the erase-block size, scaled by a
      GC amplification factor that is higher for small random overwrites
      (blocks are mostly-valid when erased) than for sequential ones.

    This mirrors why the paper's overwrite counts translate into the 2.5-13x
    lifespan spread (§5.3.4): lifespan is inversely proportional to erases.
    """

    page_size: int = 4096
    erase_block: int = 256 * 1024
    gc_amplification_rand: float = 4.0
    gc_amplification_seq: float = 1.3
    page_writes: int = 0
    erase_ops: float = 0.0

    def record_write(self, nbytes: int, sequential: bool, overwrite: bool) -> None:
        pages = -(-nbytes // self.page_size)
        self.page_writes += pages
        if overwrite:
            amp = self.gc_amplification_seq if sequential else self.gc_amplification_rand
            self.erase_ops += amp * nbytes / self.erase_block
            # GC must rewrite the still-valid remainder of each erase block.
            self.page_writes += int((amp - 1.0) * pages)
        else:
            # Fresh appends are eventually erased once, with no relocation.
            self.erase_ops += nbytes / self.erase_block

    def merge(self, other: "WearModel") -> "WearModel":
        out = WearModel(
            page_size=self.page_size,
            erase_block=self.erase_block,
            gc_amplification_rand=self.gc_amplification_rand,
            gc_amplification_seq=self.gc_amplification_seq,
        )
        out.page_writes = self.page_writes + other.page_writes
        out.erase_ops = self.erase_ops + other.erase_ops
        return out


@dataclass
class NetCounters:
    """Network transfer accounting (messages and payload bytes)."""

    messages: int = 0
    bytes_sent: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, nbytes: int, kind: str = "") -> None:
        self.messages += 1
        self.bytes_sent += nbytes
        if kind:
            self.by_kind[kind] = self.by_kind.get(kind, 0) + nbytes

    @property
    def gigabytes(self) -> float:
        return self.bytes_sent / GB

    def merge(self, other: "NetCounters") -> "NetCounters":
        out = NetCounters(
            messages=self.messages + other.messages,
            bytes_sent=self.bytes_sent + other.bytes_sent,
        )
        out.by_kind = dict(self.by_kind)
        for k, v in other.by_kind.items():
            out.by_kind[k] = out.by_kind.get(k, 0) + v
        return out
