"""Plain-text rendering of result tables and series.

The benchmark harness prints the same rows/columns the paper's tables and
figures report; these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Union

Cell = Union[str, int, float]


def _fmt(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4g}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    srows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in srows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[Cell]], x: Sequence[Cell], x_name: str, title: str = ""
) -> str:
    """Render several named series against a shared x axis."""
    for name, vals in series.items():
        if len(vals) != len(x):
            raise ValueError(
                f"series {name!r} has {len(vals)} points for {len(x)} x values"
            )
    headers = [x_name] + list(series)
    rows = []
    for i, xv in enumerate(x):
        rows.append([xv] + [vals[i] for vals in series.values()])
    return format_table(headers, rows, title=title)
