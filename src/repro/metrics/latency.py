"""Latency, throughput-over-time, and residency measurement."""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

_CHUNK = 4096


class SampleBuffer:
    """Append-only float sample storage in fixed-size numpy chunks.

    A drop-in replacement for the plain Python list the recorders used to
    keep: supports ``append``/``extend``/``len``/iteration/truthiness and
    indexing.  At `scale_up` sizes the list of boxed floats dominated
    memory (~60 B per sample); chunked float64 storage is 8 B per sample,
    allocated 32 KiB at a time, with no per-sample objects retained.

    Exactness: samples are Python floats (IEEE doubles) and float64 cells
    hold them losslessly, so sums/sorts over the buffer reproduce the
    list-based results bit for bit (sequential summation preserved by
    :meth:`running_sum` walking elements in append order).
    """

    __slots__ = ("_chunks", "_tail", "_fill")

    def __init__(self) -> None:
        self._chunks: List[np.ndarray] = []
        self._tail: Optional[np.ndarray] = None
        self._fill = 0  # filled cells of the tail chunk

    def append(self, value: float) -> None:
        tail = self._tail
        if tail is None or self._fill == _CHUNK:
            tail = self._tail = np.empty(_CHUNK, dtype=np.float64)
            self._chunks.append(tail)
            self._fill = 0
        tail[self._fill] = value
        self._fill += 1

    def extend(self, values) -> None:
        if isinstance(values, SampleBuffer):
            # Bulk chunk copy (aggregation across recorders at scale).
            chunks = values._chunks
            for i, chunk in enumerate(chunks):
                n = values._fill if i == len(chunks) - 1 else _CHUNK
                self._extend_array(chunk[:n])
            return
        for v in values:
            self.append(v)

    def _extend_array(self, arr: np.ndarray) -> None:
        pos = 0
        n = len(arr)
        while pos < n:
            tail = self._tail
            if tail is None or self._fill == _CHUNK:
                tail = self._tail = np.empty(_CHUNK, dtype=np.float64)
                self._chunks.append(tail)
                self._fill = 0
            take = min(_CHUNK - self._fill, n - pos)
            tail[self._fill : self._fill + take] = arr[pos : pos + take]
            self._fill += take
            pos += take

    def __len__(self) -> int:
        if self._tail is None:
            return 0
        return (len(self._chunks) - 1) * _CHUNK + self._fill

    def __bool__(self) -> bool:
        return self._tail is not None and (len(self._chunks) > 1 or self._fill > 0)

    def __iter__(self) -> Iterator[float]:
        chunks = self._chunks
        for i, chunk in enumerate(chunks):
            n = self._fill if i == len(chunks) - 1 else _CHUNK
            for v in chunk[:n].tolist():
                yield v

    def __getitem__(self, i: int):
        n = len(self)
        if isinstance(i, slice):
            return self.to_array()[i]
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(i)
        return float(self._chunks[i // _CHUNK][i % _CHUNK])

    def to_array(self) -> np.ndarray:
        """All samples as one float64 array (copy; append order)."""
        if self._tail is None:
            return np.empty(0, dtype=np.float64)
        parts = self._chunks[:-1] + [self._tail[: self._fill]]
        return np.concatenate(parts) if len(parts) > 1 else parts[0].copy()

    def running_sum(self) -> float:
        """Sequential left-to-right sum — bit-identical to ``sum(list)``."""
        total = 0.0
        chunks = self._chunks
        for i, chunk in enumerate(chunks):
            n = self._fill if i == len(chunks) - 1 else _CHUNK
            for v in chunk[:n].tolist():
                total += v
        return total

    def max(self) -> float:
        if not self:
            raise ValueError("max of empty buffer")
        best = None
        chunks = self._chunks
        for i, chunk in enumerate(chunks):
            n = self._fill if i == len(chunks) - 1 else _CHUNK
            m = float(chunk[:n].max()) if n else None
            if m is not None and (best is None or m > best):
                best = m
        return best


class LatencyRecorder:
    """Collects (completion_time, latency) samples for one operation class.

    Backs both the aggregate IOPS numbers of Fig. 5 (completions / horizon)
    and the latency comparisons in Fig. 1's narrative.  Samples live in
    chunked numpy buffers (:class:`SampleBuffer`), not Python lists — at
    ``scale_up`` sizes the boxed-float lists dominated process memory.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.completion_times = SampleBuffer()
        self.latencies = SampleBuffer()

    def record(self, completion_time: float, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self.completion_times.append(completion_time)
        self.latencies.append(latency)

    def __len__(self) -> int:
        return len(self.latencies)

    @property
    def count(self) -> int:
        return len(self.latencies)

    def mean(self) -> float:
        n = len(self.latencies)
        # Sequential summation in append order: bit-identical to the
        # historical sum(list) / n.
        return self.latencies.running_sum() / n if n else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, q in [0, 100]."""
        return self.percentiles((q,))[0]

    def percentiles(self, qs: Sequence[float]) -> List[float]:
        """Nearest-rank percentiles for every q in ``qs``, one sort total.

        Standard nearest-rank definition: rank ``ceil(q/100 * n)`` (1-based,
        clamped to [1, n]).  ``ceil`` is deliberate — ``round`` would apply
        banker's rounding on exact .5 ranks and pick the lower neighbour
        for some sample counts but not others.
        """
        for q in qs:
            if not 0.0 <= q <= 100.0:
                raise ValueError(f"percentile {q} outside [0, 100]")
        n = len(self.latencies)
        if not n:
            return [0.0] * len(qs)
        data = np.sort(self.latencies.to_array())
        return [
            float(data[min(n - 1, max(0, math.ceil(q / 100.0 * n) - 1))])
            for q in qs
        ]

    def summary(self) -> Dict[str, float]:
        """The standard latency digest: count, mean and p50/p95/p99."""
        p50, p95, p99 = self.percentiles((50.0, 95.0, 99.0))
        return {
            "count": float(len(self.latencies)),
            "mean": self.mean(),
            "p50": p50,
            "p95": p95,
            "p99": p99,
        }

    def throughput(self, horizon: Optional[float] = None) -> float:
        """Completed operations per virtual second."""
        n = len(self.completion_times)
        if not n:
            return 0.0
        h = horizon if horizon is not None else self.completion_times.max()
        return n / h if h > 0 else 0.0

    def iops_series(self, bucket: float, horizon: float) -> "IntervalSeries":
        """Completions bucketed into fixed intervals (Fig. 6a time series)."""
        n = max(1, int(round(horizon / bucket)))
        counts = [0] * n
        for t in self.completion_times:
            i = min(n - 1, int(t / bucket))
            counts[i] += 1
        return IntervalSeries(
            times=[bucket * (i + 1) for i in range(n)],
            values=[c / bucket for c in counts],
            name=f"{self.name}.iops",
        )


def merge_windows(windows: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of possibly-overlapping [start, end] intervals, sorted.

    Failure scenarios use this to turn per-OSD outage windows into the
    disjoint downtime intervals their recovery metrics integrate over.
    """
    spans = sorted((a, b) for a, b in windows if b > a)
    out: List[Tuple[float, float]] = []
    for a, b in spans:
        if out and a <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], b))
        else:
            out.append((a, b))
    return out


def window_samples(
    recorder: "LatencyRecorder", windows: Sequence[Tuple[float, float]]
) -> List[float]:
    """Latency samples whose operation overlapped any of the windows.

    An op overlaps a window if its [start, completion] span intersects it —
    e.g. reads served while an OSD was down, whatever instant they
    completed at.
    """
    out: List[float] = []
    for t, lat in zip(recorder.completion_times, recorder.latencies):
        start = t - lat
        if any(start < b and t > a for a, b in windows):
            out.append(lat)
    return out


@dataclass
class IntervalSeries:
    """A named time series sampled at interval ends."""

    times: List[float]
    values: List[float]
    name: str = ""

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def value_at(self, t: float) -> float:
        i = bisect.bisect_left(self.times, t)
        i = min(i, len(self.values) - 1)
        return self.values[i]


@dataclass
class _Phase:
    total: float = 0.0
    n: int = 0

    def add(self, seconds: float) -> None:
        self.total += seconds
        self.n += 1

    def mean_us(self) -> float:
        return 1e6 * self.total / self.n if self.n else 0.0


class ResidencyTracker:
    """Per-log-layer residency accounting (Table 2).

    Each log layer reports three phases, recorded by different actors:

    * ``append`` — synchronous/forward append duration (front end);
    * ``buffer`` — wait between append and recycle start (recycler);
    * ``recycle`` — per-entry processing time inside the recycler.
    """

    LAYERS = ("data_log", "delta_log", "parity_log")
    PHASES = ("append", "buffer", "recycle")

    def __init__(self) -> None:
        self._acc: Dict[str, Dict[str, _Phase]] = {
            layer: {phase: _Phase() for phase in self.PHASES} for layer in self.LAYERS
        }

    def record_append(self, layer: str, seconds: float) -> None:
        self._acc[layer]["append"].add(seconds)

    def record_buffer(self, layer: str, seconds: float) -> None:
        self._acc[layer]["buffer"].add(seconds)

    def record_recycle(self, layer: str, seconds: float) -> None:
        self._acc[layer]["recycle"].add(seconds)

    def record(self, layer: str, append: float, buffer: float, recycle: float) -> None:
        """Record one sample of every phase at once (test convenience)."""
        self.record_append(layer, append)
        self.record_buffer(layer, buffer)
        self.record_recycle(layer, recycle)

    def mean_us(self, layer: str) -> Tuple[float, float, float]:
        """(append, buffer, recycle) mean residency in microseconds."""
        acc = self._acc[layer]
        return tuple(acc[phase].mean_us() for phase in self.PHASES)

    def total_time_us(self) -> float:
        """End-to-end mean residency across the three layers, in µs."""
        return sum(sum(self.mean_us(layer)) for layer in self.LAYERS)

    def samples(self, layer: str) -> int:
        return max(p.n for p in self._acc[layer].values())

    def merge(self, other: "ResidencyTracker") -> "ResidencyTracker":
        """Combine trackers from several OSD engines."""
        out = ResidencyTracker()
        for src in (self, other):
            for layer in self.LAYERS:
                for phase in self.PHASES:
                    p = src._acc[layer][phase]
                    out._acc[layer][phase].total += p.total
                    out._acc[layer][phase].n += p.n
        return out
