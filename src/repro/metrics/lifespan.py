"""SSD lifespan estimation from wear counters.

NAND endurance is a budget of erase cycles per block; with wear leveling the
device dies when cumulative erases exhaust ``blocks * cycles``.  Relative
lifespan between update methods under the same workload is therefore the
inverse ratio of their erase counts — exactly the quantity behind the
paper's "2.5x-13x longer" claim (§5.3.4).
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.metrics.counters import WearModel


def lifespan_ratios(wear_by_method: Mapping[str, WearModel]) -> Dict[str, float]:
    """Lifespan of each method normalised to the *worst* method (=1.0).

    A method that erases 10x less lives 10x longer.
    """
    erases = {
        name: max(w.erase_ops, 1e-12) for name, w in wear_by_method.items()
    }
    worst = max(erases.values())
    return {name: worst / e for name, e in erases.items()}


def endurance_years(
    wear: WearModel,
    device_bytes: int,
    cycles: int = 3000,
    workload_duration_s: float = 60.0,
) -> float:
    """Absolute lifespan estimate if the measured workload ran continuously.

    ``cycles`` is the per-block P/E rating (3k is typical for TLC NAND).
    """
    blocks = device_bytes / wear.erase_block
    budget = blocks * cycles
    if wear.erase_ops <= 0:
        return float("inf")
    seconds = budget / wear.erase_ops * workload_duration_s
    return seconds / (365.25 * 24 * 3600)
