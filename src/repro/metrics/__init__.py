"""Measurement infrastructure.

Everything the paper's evaluation section reports is derived from four
collectors:

* :class:`~repro.metrics.counters.OpCounters` — per-device I/O operation and
  byte counts, split by read/write, random/sequential, and overwrite
  (in-place write-penalty) accounting plus FTL erase estimates (Table 1,
  lifespan claims).
* :class:`~repro.metrics.counters.NetCounters` — per-node and global network
  traffic (Table 1 NETWORK column).
* :class:`~repro.metrics.latency.LatencyRecorder` — update latency samples
  and completion counts over time (Fig. 5, Fig. 6a throughput series).
* :class:`~repro.metrics.latency.ResidencyTracker` — append / buffer /
  recycle residency per log layer (Table 2).
"""

from repro.metrics.counters import NetCounters, OpCounters, WearModel
from repro.metrics.latency import IntervalSeries, LatencyRecorder, ResidencyTracker
from repro.metrics.lifespan import lifespan_ratios
from repro.metrics.report import format_series, format_table

__all__ = [
    "IntervalSeries",
    "LatencyRecorder",
    "NetCounters",
    "OpCounters",
    "ResidencyTracker",
    "WearModel",
    "format_series",
    "format_table",
    "lifespan_ratios",
]
