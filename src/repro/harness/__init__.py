"""The experiment harness.

:func:`~repro.harness.experiment.run_experiment` builds a cluster, preloads
files, replays traces through closed-loop clients, drains logs, verifies
consistency, and returns an :class:`~repro.harness.experiment.ExperimentResult`
with every quantity the paper's tables and figures report.

One module per paper artifact sits alongside (``fig5``, ``fig6``, ``fig7``,
``fig8``, ``table1``, ``table2``); each exposes a ``run(...)`` returning
printable rows plus the raw numbers, and the corresponding benchmark under
``benchmarks/`` is a thin wrapper that prints them.
"""

from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    build_cluster,
    drain_all,
    make_trace,
    run_experiment,
)
from repro.harness.fig5 import Fig5Panel, run_panel
from repro.harness.fig6 import run_fig6a, run_fig6b
from repro.harness.fig7 import run_fig7
from repro.harness.fig8 import run_fig8a, run_fig8b
from repro.harness.lifespan import run_lifespan
from repro.harness.table1 import run_table1
from repro.harness.table2 import run_table2

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "Fig5Panel",
    "build_cluster",
    "drain_all",
    "make_trace",
    "run_experiment",
    "run_fig5_panel",
    "run_fig6a",
    "run_fig6b",
    "run_fig7",
    "run_fig8a",
    "run_fig8b",
    "run_lifespan",
    "run_panel",
    "run_table1",
    "run_table2",
]

run_fig5_panel = run_panel
