"""Ablation benches beyond the paper's own breakdown (DESIGN.md §5).

* unit size 8 MB vs 16 MB residency claim (§5.3.5: halving the unit halves
  the buffer interval) — checked at bench scale with proportionally small
  units;
* DataLog replica count (2 on SSD vs 3, the HDD setting);
* two-level-index merging on/off at fixed pool structure (prices the merge
  machinery itself, beyond Fig. 7's O1/O2 ladder).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.metrics.report import format_series


def _tsue_cfg(seed: int, n_clients: int, updates: int, **flags) -> ExperimentConfig:
    params = dict(unit_bytes=512 * 1024, flush_age=0.05, flush_interval=0.02)
    params.update(flags)
    return ExperimentConfig(
        method="tsue",
        trace="ten",
        k=6,
        m=4,
        n_clients=n_clients,
        updates_per_client=updates,
        seed=seed,
        verify=False,
        strategy_params=params,
    )


@dataclass
class UnitSizeAblation:
    unit_bytes: List[int]
    buffer_us: List[float]
    iops: List[float]

    def render(self) -> str:
        return format_series(
            {"data-log buffer (us)": self.buffer_us, "IOPS": self.iops},
            [u // 1024 for u in self.unit_bytes],
            "unit KiB",
            title="Ablation: log-unit size vs residency (§5.3.5)",
        )


def run_unit_size_ablation(
    unit_sizes: Sequence[int] = (256 * 1024, 512 * 1024, 1024 * 1024),
    n_clients: int = 32,
    updates: int = 150,
    seed: int = 31,
) -> UnitSizeAblation:
    buf: List[float] = []
    iops: List[float] = []
    for u in unit_sizes:
        res = run_experiment(_tsue_cfg(seed, n_clients, updates, unit_bytes=u))
        assert res.residency is not None
        buf.append(res.residency.mean_us("data_log")[1])
        iops.append(res.agg_iops)
    return UnitSizeAblation(unit_bytes=list(unit_sizes), buffer_us=buf, iops=iops)


@dataclass
class ReplicaAblation:
    replicas: List[int]
    iops: List[float]
    latency_us: List[float]

    def render(self) -> str:
        return format_series(
            {"IOPS": self.iops, "latency (us)": self.latency_us},
            self.replicas,
            "DataLog copies",
            title="Ablation: DataLog replica count",
        )


def run_replica_ablation(
    replica_counts: Sequence[int] = (1, 2, 3),
    n_clients: int = 32,
    updates: int = 150,
    seed: int = 37,
) -> ReplicaAblation:
    iops: List[float] = []
    lat: List[float] = []
    for r in replica_counts:
        res = run_experiment(_tsue_cfg(seed, n_clients, updates, replicas=r))
        iops.append(res.agg_iops)
        lat.append(res.mean_latency * 1e6)
    return ReplicaAblation(replicas=list(replica_counts), iops=iops, latency_us=lat)


@dataclass
class IndexAblation:
    labels: List[str]
    iops: List[float]
    rw_ops: List[int]

    def render(self) -> str:
        return format_series(
            {"IOPS": self.iops, "device R/W ops": self.rw_ops},
            self.labels,
            "index merging",
            title="Ablation: two-level-index merging at fixed pool structure",
        )


def run_index_ablation(
    n_clients: int = 32, updates: int = 150, seed: int = 41
) -> IndexAblation:
    labels = ["off", "on"]
    iops: List[float] = []
    ops: List[int] = []
    for merging in (False, True):
        res = run_experiment(
            _tsue_cfg(
                seed,
                n_clients,
                updates,
                use_locality_data=merging,
                use_locality_parity=merging,
            )
        )
        iops.append(res.agg_iops)
        ops.append(res.rw_ops)
    return IndexAblation(labels=labels, iops=iops, rw_ops=ops)
