"""SSD lifespan comparison (§5.3.4 / §1 claim).

Derived from the same runs as Table 1: flash wear (erase operations) per
method, normalised to the worst method.  The paper claims SSDs under TSUE
endure 2.5x-13x longer than under the other update methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.metrics.report import format_table

METHODS = ("fo", "pl", "plr", "parix", "cord", "tsue")


@dataclass
class LifespanResult:
    erases: Dict[str, float]
    page_writes: Dict[str, int]

    def relative_lifespan(self) -> Dict[str, float]:
        worst = max(self.erases.values())
        return {m: worst / e for m, e in self.erases.items()}

    def tsue_advantage(self) -> Dict[str, float]:
        """TSUE's lifespan multiple over each other method."""
        t = self.erases["tsue"]
        return {m: e / t for m, e in self.erases.items() if m != "tsue"}

    def render(self) -> str:
        rel = self.relative_lifespan()
        rows = [
            [m.upper(), round(self.erases[m], 1), self.page_writes[m], round(rel[m], 2)]
            for m in self.erases
        ]
        return format_table(
            ["METHOD", "erase ops", "page writes", "rel. lifespan"],
            rows,
            title="SSD lifespan (erase-op accounting, Ten-Cloud RS(6,4))",
        )


def run_lifespan(
    n_clients: int = 32,
    updates_per_client: int = 150,
    seed: int = 17,
    methods: Sequence[str] = METHODS,
) -> LifespanResult:
    erases: Dict[str, float] = {}
    pages: Dict[str, int] = {}
    for method in methods:
        cfg = ExperimentConfig(
            method=method,
            trace="ten",
            k=6,
            m=4,
            n_clients=n_clients,
            updates_per_client=updates_per_client,
            seed=seed,
            verify=False,
        )
        if method == "tsue":
            cfg.strategy_params = dict(
                unit_bytes=512 * 1024, flush_age=0.02, flush_interval=0.01
            )
        res = run_experiment(cfg)
        erases[method] = res.erase_ops
        pages[method] = res.page_writes
    return LifespanResult(erases=erases, page_writes=pages)
