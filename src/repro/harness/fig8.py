"""Fig. 8 — the HDD cluster evaluation (§5.4).

* **Fig. 8a**: update throughput over seven MSR-Cambridge volumes for
  FO/PL/PLR/PARIX/TSUE under RS(6,4).  Per §5.4, TSUE on HDDs runs 3
  DataLog copies and no DeltaLog (the harness applies that automatically
  for ``device_kind="hdd"``).
* **Fig. 8b**: recovery bandwidth after a node failure following an update
  warm-up — deferred logs (PL/PLR/PARIX) must drain before reconstruction,
  cutting their effective bandwidth; TSUE sits near FO (no logs pending).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cluster import Cluster, ClusterConfig
from repro.harness.experiment import (
    ExperimentConfig,
    _strategy_factory,
    drive_to_completion,
    make_trace,
    run_experiment,
)
from repro.metrics.report import format_series
from repro.recovery import RecoveryResult, recover_node
from repro.sim import AllOf, Simulator
from repro.traces import TraceReplayer

HDD_METHODS = ("fo", "pl", "plr", "parix", "tsue")
MSR_VOLS = ("src10", "src22", "proj2", "prn1", "hm0", "usr0", "mds0")


@dataclass
class Fig8aResult:
    volumes: List[str]
    iops: Dict[str, List[float]]  # method -> per-volume IOPS

    def render(self) -> str:
        return format_series(
            self.iops, self.volumes, "volume",
            title="Fig.8a HDD update throughput, MSR volumes, RS(6,4)",
        )


def run_fig8a(
    volumes: Sequence[str] = MSR_VOLS,
    methods: Sequence[str] = HDD_METHODS,
    n_clients: int = 24,
    updates_per_client: int = 240,
    seed: int = 23,
) -> Fig8aResult:
    iops: Dict[str, List[float]] = {m: [] for m in methods}
    for vol in volumes:
        for method in methods:
            cfg = ExperimentConfig(
                method=method,
                trace=f"msr:{vol}",
                k=6,
                m=4,
                device_kind="hdd",
                n_clients=n_clients,
                updates_per_client=updates_per_client,
                seed=seed,
                verify=False,
            )
            iops[method].append(run_experiment(cfg).agg_iops)
    return Fig8aResult(volumes=list(volumes), iops=iops)


@dataclass
class Fig8bResult:
    volumes: List[str]
    bandwidth_mbps: Dict[str, List[float]]
    details: Dict[str, List[RecoveryResult]]

    def render(self) -> str:
        return format_series(
            self.bandwidth_mbps, self.volumes, "volume",
            title="Fig.8b HDD recovery bandwidth (MB/s) after update warm-up",
        )


def run_fig8b(
    volumes: Sequence[str] = ("src10", "hm0", "usr0"),
    methods: Sequence[str] = HDD_METHODS,
    n_clients: int = 8,
    updates_per_client: int = 240,
    seed: int = 29,
) -> Fig8bResult:
    bw: Dict[str, List[float]] = {m: [] for m in methods}
    details: Dict[str, List[RecoveryResult]] = {m: [] for m in methods}
    for vol in volumes:
        for method in methods:
            res = _recovery_run(vol, method, n_clients, updates_per_client, seed)
            bw[method].append(res.bandwidth_mbps)
            details[method].append(res)
    return Fig8bResult(volumes=list(volumes), bandwidth_mbps=bw, details=details)


def _recovery_run(
    vol: str, method: str, n_clients: int, updates_per_client: int, seed: int
) -> RecoveryResult:
    """Warm up with updates, then fail one OSD and recover it.

    Files are *materialised* (not sparse) so the failed OSD really hosts
    its full share of blocks: recovery bandwidth is then dominated by
    reconstruction volume, with the pre-recovery log drain showing up as
    the per-method difference — the paper's Fig. 8b setting, where a
    3-minute warm-up precedes recovering a whole node.
    """
    cfg = ExperimentConfig(
        method=method,
        trace=f"msr:{vol}",
        k=6,
        m=4,
        device_kind="hdd",
        n_clients=n_clients,
        updates_per_client=updates_per_client,
        stripes_per_file=24,
        seed=seed,
        verify=False,
    )
    if method == "tsue":
        # Real-time recycle at its tightest: at node scale the rebuild
        # dwarfs any residue, which a short bench run can only approximate
        # by keeping the residue minimal.
        cfg.strategy_params = dict(
            unit_bytes=128 * 1024, flush_age=0.01, flush_interval=0.005
        )
    sim = Simulator()
    cluster = Cluster(
        sim,
        ClusterConfig(
            n_osds=cfg.n_osds,
            k=cfg.k,
            m=cfg.m,
            block_size=cfg.block_size,
            device_kind="hdd",
            net_profile=cfg.resolved_net(),
            seed=cfg.seed,
        ),
        _strategy_factory(cfg),
    )
    replayers: List[TraceReplayer] = []
    load_rng = cluster.rng.get("load")
    for i in range(cfg.n_clients):
        inode = 1000 + i
        content = load_rng.integers(0, 256, cfg.file_size, dtype="uint8")
        cluster.instant_load_file(inode, content)
        client = cluster.add_client(f"client{i}")
        trace = make_trace(cfg, cluster.rng.get(f"trace{i}"))
        replayers.append(
            TraceReplayer(client, inode, trace, cluster.rng.get(f"payload{i}"))
        )
    cluster.start()
    procs = [sim.process(r.run()) for r in replayers]
    drive_to_completion(sim, AllOf(sim, procs), what="fig8 replay")
    # Fail the most-loaded OSD (deterministic choice: most blocks stored).
    victim = max(cluster.osds, key=lambda o: len(o.store.blocks)).name
    result = recover_node(cluster, victim, verify=True)
    cluster.stop()
    if not result.correct:
        raise AssertionError(f"recovery produced wrong bytes ({method}, {vol})")
    return result
