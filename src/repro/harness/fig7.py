"""Fig. 7 — contribution breakdown of TSUE's optimisations.

Cumulative variants, exactly the paper's O1..O5 ladder:

* Baseline — DataLog + ParityLog only, single exclusive unit per log, one
  pool per device, no locality merging;
* O1 — + spatio-temporal locality in the DataLog;
* O2 — + locality in the ParityLog;
* O3 — + the multi-unit FIFO log-pool structure;
* O4 — + 4 log pools per device;
* O5 — + the DeltaLog layer (Eq. 5 combining, network reduction).

Expected shape (§5.3.3): O3 the largest jump, O4 minimal, O5 ~ +30 %,
O1 > O2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.metrics.report import format_series

VARIANTS: List[Tuple[str, Dict[str, object]]] = [
    (
        "baseline",
        dict(
            use_locality_data=False,
            use_locality_parity=False,
            use_log_pool=False,
            n_pools=1,
            use_delta_log=False,
        ),
    ),
    (
        "O1",
        dict(
            use_locality_data=True,
            use_locality_parity=False,
            use_log_pool=False,
            n_pools=1,
            use_delta_log=False,
        ),
    ),
    (
        "O2",
        dict(
            use_locality_data=True,
            use_locality_parity=True,
            use_log_pool=False,
            n_pools=1,
            use_delta_log=False,
        ),
    ),
    (
        "O3",
        # max_units is raised so O3's single pool has the same total log
        # capacity as O4's four pools: the O3->O4 step then measures pool
        # *concurrency*, not extra memory.
        dict(
            use_locality_data=True,
            use_locality_parity=True,
            use_log_pool=True,
            n_pools=1,
            max_units=16,
            use_delta_log=False,
        ),
    ),
    (
        "O4",
        dict(
            use_locality_data=True,
            use_locality_parity=True,
            use_log_pool=True,
            n_pools=4,
            use_delta_log=False,
        ),
    ),
    (
        "O5",
        dict(
            use_locality_data=True,
            use_locality_parity=True,
            use_log_pool=True,
            n_pools=4,
            use_delta_log=True,
        ),
    ),
]


@dataclass
class Fig7Result:
    trace: str
    m: int
    labels: List[str]
    iops: List[float]

    def render(self) -> str:
        return format_series(
            {"IOPS": self.iops}, self.labels, "variant",
            title=f"Fig.7 breakdown, {self.trace}-cloud RS(6,{self.m})",
        )

    def gain(self, label: str) -> float:
        """Throughput of a variant relative to its predecessor."""
        i = self.labels.index(label)
        if i == 0:
            return 1.0
        prev = self.iops[i - 1]
        return self.iops[i] / prev if prev > 0 else float("inf")


def run_fig7(
    trace: str = "ten",
    m: int = 4,
    n_clients: int = 32,
    updates_per_client: int = 150,
    seed: int = 13,
    variants: Sequence[Tuple[str, Dict[str, object]]] = tuple(VARIANTS),
) -> Fig7Result:
    labels: List[str] = []
    iops: List[float] = []
    for label, flags in variants:
        params = dict(unit_bytes=512 * 1024, flush_age=0.02, flush_interval=0.01)
        params.update(flags)
        cfg = ExperimentConfig(
            method="tsue",
            trace=trace,
            k=6,
            m=m,
            n_clients=n_clients,
            updates_per_client=updates_per_client,
            seed=seed,
            verify=False,
            strategy_params=params,
        )
        res = run_experiment(cfg)
        labels.append(label)
        iops.append(res.agg_iops)
    return Fig7Result(trace=trace, m=m, labels=labels, iops=iops)
