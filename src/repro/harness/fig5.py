"""Fig. 5 — update throughput on the SSD cluster.

The paper's grid: 6 methods x RS{(6,2),(12,2),(6,3),(12,3),(6,4),(12,4)} x
{Ali-Cloud, Ten-Cloud} x client counts up to 64, reporting aggregate IOPS.
``run`` executes one (code, trace) panel over a client sweep and returns the
series per method; the benchmark prints every panel.

Expected shape (paper §5.2): TSUE highest everywhere; throughput grows with
client count; TSUE's margin grows with m (x1.5 class at m=2 up to x10 over
PLR at m=4); gains larger under Ten-Cloud than Ali-Cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence, Tuple

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.metrics.report import format_series

METHODS = ("fo", "pl", "plr", "parix", "cord", "tsue")
CODES: Tuple[Tuple[int, int], ...] = ((6, 2), (12, 2), (6, 3), (12, 3), (6, 4), (12, 4))
TRACES = ("ali", "ten")


@dataclass
class Fig5Panel:
    """One sub-figure: IOPS per method over the client sweep."""

    k: int
    m: int
    trace: str
    clients: List[int]
    iops: Dict[str, List[float]] = field(default_factory=dict)

    def render(self) -> str:
        title = f"Fig.5 RS({self.k},{self.m}) {self.trace}-cloud: aggregate update IOPS"
        return format_series(self.iops, self.clients, "clients", title=title)

    def winner_at(self, clients: int) -> str:
        i = self.clients.index(clients)
        return max(self.iops, key=lambda m: self.iops[m][i])


def run_panel(
    k: int,
    m: int,
    trace: str,
    clients: Sequence[int] = (4, 16, 64),
    updates_per_client: int = 100,
    methods: Sequence[str] = METHODS,
    seed: int = 7,
    base: ExperimentConfig = None,
) -> Fig5Panel:
    """One (code, trace) panel of Fig. 5."""
    panel = Fig5Panel(k=k, m=m, trace=trace, clients=list(clients))
    for method in methods:
        series = []
        for n in clients:
            cfg = _cell_config(base, method, trace, k, m, n, updates_per_client, seed)
            series.append(run_experiment(cfg).agg_iops)
        panel.iops[method] = series
    return panel


def _cell_config(base, method, trace, k, m, n_clients, updates, seed) -> ExperimentConfig:
    cfg = base if base is not None else ExperimentConfig()
    cfg = replace(
        cfg,
        method=method,
        trace=trace,
        k=k,
        m=m,
        n_clients=n_clients,
        updates_per_client=updates,
        seed=seed,
        verify=False,
        strategy_params=dict(cfg.strategy_params),
    )
    if method == "tsue" and not cfg.strategy_params:
        cfg.strategy_params = dict(
            unit_bytes=256 * 1024, flush_age=0.02, flush_interval=0.01
        )
    return cfg
