"""Fig. 6 — TSUE overhead analysis.

* **Fig. 6a** (recycle overhead): aggregate IOPS sampled over the run —
  the paper's point is that with >= 4 log units the back-end recycle has a
  negligible, stable effect on front-end throughput.
* **Fig. 6b** (memory usage): aggregate IOPS and peak log-memory footprint
  versus the per-pool max-unit quota {2, 4, 6, 8, 12, 16, 20}; throughput
  collapses at quota 2 (back-pressure) and saturates from 4 on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.metrics.report import format_series

UNIT_QUOTAS = (2, 4, 6, 8, 12, 16, 20)


@dataclass
class Fig6aResult:
    times: List[float]
    iops: List[float]
    mean_iops: float
    steady_cv: float  # coefficient of variation over the steady half

    def render(self) -> str:
        return format_series(
            {"IOPS": self.iops}, [f"{t * 1000:.0f}ms" for t in self.times], "t",
            title="Fig.6a aggregate IOPS over time (TSUE, recycle running)",
        )


def run_fig6a(
    n_clients: int = 32,
    updates_per_client: int = 200,
    buckets: int = 10,
    seed: int = 11,
) -> Fig6aResult:
    cfg = ExperimentConfig(
        method="tsue",
        trace="ten",
        k=6,
        m=4,
        n_clients=n_clients,
        updates_per_client=updates_per_client,
        seed=seed,
        verify=False,
        strategy_params=dict(unit_bytes=512 * 1024, flush_age=0.02, flush_interval=0.01),
    )
    res = run_experiment(cfg)
    series = res.update_recorder.iops_series(
        bucket=res.horizon / buckets, horizon=res.horizon
    )
    half = series.values[buckets // 2 :]
    mean = sum(half) / len(half)
    var = sum((v - mean) ** 2 for v in half) / len(half)
    cv = (var**0.5) / mean if mean > 0 else 0.0
    return Fig6aResult(
        times=series.times, iops=series.values, mean_iops=series.mean(), steady_cv=cv
    )


@dataclass
class Fig6bResult:
    quotas: List[int]
    iops: List[float]
    peak_memory_mb: List[float]

    def render(self) -> str:
        return format_series(
            {"IOPS": self.iops, "peak log mem (MB)": self.peak_memory_mb},
            self.quotas,
            "max units/pool",
            title="Fig.6b throughput and memory vs log-unit quota (TSUE)",
        )


def run_fig6b(
    quotas: Sequence[int] = UNIT_QUOTAS,
    n_clients: int = 32,
    updates_per_client: int = 150,
    seed: int = 11,
) -> Fig6bResult:
    iops: List[float] = []
    mem: List[float] = []
    for q in quotas:
        cfg = ExperimentConfig(
            method="tsue",
            trace="ali",
            k=6,
            m=4,
            n_clients=n_clients,
            updates_per_client=updates_per_client,
            seed=seed,
            verify=False,
            strategy_params=dict(
                unit_bytes=128 * 1024,
                min_units=2,
                max_units=q,
                flush_age=0.02,
                flush_interval=0.01,
            ),
        )
        res = run_experiment(cfg)
        iops.append(res.agg_iops)
        mem.append(res.peak_log_memory / (1 << 20))
    return Fig6bResult(quotas=list(quotas), iops=iops, peak_memory_mb=mem)
