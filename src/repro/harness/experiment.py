"""Build-run-drain-measure: the shared experiment driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.cluster import Cluster, ClusterConfig
from repro.devices.profiles import DeviceProfile
from repro.metrics.counters import GB
from repro.metrics.latency import LatencyRecorder, ResidencyTracker
from repro.net import NET_25GBE, NET_40GIB, NetworkProfile
from repro.sim import AllOf, Simulator
from repro.traces import (
    TraceReplayer,
    alicloud_trace,
    msr_trace,
    tencloud_trace,
)
from repro.tsue.engine import TSUEConfig
from repro.update import make_strategy_factory


@dataclass
class ExperimentConfig:
    """One experiment cell: method x trace x geometry x client count."""

    method: str = "tsue"
    trace: str = "ali"  # "ali" | "ten" | "msr:<volume>"
    k: int = 6
    m: int = 2
    n_osds: int = 16
    n_clients: int = 8
    updates_per_client: int = 100
    block_size: int = 64 * 1024
    # Files are sparse (zero-filled, lazily materialised), so per-client
    # working sets can be realistically large: 64 stripes of RS(6, m) with
    # 64 KiB blocks is 24 MiB of logical data per client.
    stripes_per_file: int = 64
    device_kind: str = "ssd"
    device_profile: Optional[DeviceProfile] = None
    net_profile: Optional[NetworkProfile] = None
    construction: str = "vandermonde"
    seed: int = 0
    verify: bool = True
    # Projected-completion data plane (see ClusterConfig.fast_dataplane):
    # bit-identical virtual times on fault-free runs, one kernel timer per
    # device I/O / transfer.  The scenario runner enables it for scenarios
    # without fault injection; keep False when anything can crash mid-run.
    fast_dataplane: bool = False
    # Ghost payload plane (see repro.dataplane): metadata-only payloads,
    # O(metadata) memory.  Fault/rebuild scenarios need real bytes; the
    # scenario runner rejects the combination.
    ghost_dataplane: bool = False
    # Strategy-specific keyword arguments (e.g. TSUEConfig fields).
    strategy_params: Dict[str, Any] = field(default_factory=dict)

    def resolved_net(self) -> NetworkProfile:
        if self.net_profile is not None:
            return self.net_profile
        return NET_25GBE if self.device_kind == "ssd" else NET_40GIB

    @property
    def file_size(self) -> int:
        return self.stripes_per_file * self.k * self.block_size


@dataclass
class ExperimentResult:
    """Everything the paper's evaluation reports, for one cell."""

    config: ExperimentConfig
    n_updates: int
    horizon: float  # virtual seconds until the last update completed
    agg_iops: float
    mean_latency: float
    p99_latency: float
    # Table 1 quantities:
    rw_ops: int
    rw_bytes: int
    overwrite_ops: int
    overwrite_bytes: int
    net_bytes: int
    net_messages: int
    # Lifespan quantities:
    erase_ops: float
    page_writes: int
    # TSUE-only extras (zero/empty otherwise):
    residency: Optional[ResidencyTracker]
    peak_log_memory: int
    # Post-drain consistency verification outcome:
    consistent: Optional[bool]
    update_recorder: LatencyRecorder = field(repr=False, default=None)

    @property
    def net_gb(self) -> float:
        return self.net_bytes / GB

    @property
    def rw_gb(self) -> float:
        return self.rw_bytes / GB

    @property
    def overwrite_gb(self) -> float:
        return self.overwrite_bytes / GB


def make_trace(cfg: ExperimentConfig, rng: np.random.Generator, n: Optional[int] = None):
    """Materialise one client's trace for the config's trace family."""
    n = cfg.updates_per_client if n is None else n
    if cfg.trace == "ali":
        return alicloud_trace(cfg.file_size, n, rng)
    if cfg.trace == "ten":
        return tencloud_trace(cfg.file_size, n, rng)
    if cfg.trace.startswith("msr:"):
        return msr_trace(cfg.trace[4:], cfg.file_size, n, rng)
    raise ValueError(f"unknown trace {cfg.trace!r}")


def _strategy_factory(cfg: ExperimentConfig):
    """Build the per-OSD strategy factory with scale-appropriate defaults.

    Experiment runs are minutes of virtual time, not the paper's hour-long
    replays, so log capacities default to a proportional scale: TSUE units
    small enough that real-time recycle genuinely overlaps the measurement
    window, and baseline log thresholds sized so their (deferred or
    synchronous) recycling triggers as often *relative to workload volume*
    as on the real testbed.  Explicit ``strategy_params`` always win.
    """
    params = dict(cfg.strategy_params)
    hdd = cfg.device_kind == "hdd"
    if cfg.method == "tsue" and "config" not in params:
        # Collect TSUEConfig fields passed flat in strategy_params.
        tsue_fields = {
            f for f in TSUEConfig.__dataclass_fields__  # type: ignore[attr-defined]
        }
        flat = {k: params.pop(k) for k in list(params) if k in tsue_fields}
        # HDD recycling must batch aggressively (every random touch costs a
        # seek-scale service), so units are bigger and flushed less often.
        flat.setdefault("unit_bytes", 1024 * 1024 if hdd else 512 * 1024)
        flat.setdefault("flush_age", 0.2 if hdd else 0.02)
        flat.setdefault("flush_interval", 0.1 if hdd else 0.01)
        if hdd:
            # §5.4: HDD clusters run 3 DataLog copies and no DeltaLog.
            flat.setdefault("replicas", 3)
            flat.setdefault("use_delta_log", False)
            flat.setdefault("n_pools", 1)
        params["config"] = TSUEConfig(**flat)
    elif cfg.method == "parix" and hdd:
        # HDD clusters sustain far fewer IOPS, so the parity-log space is
        # never exhausted within a run — recycling stays drain-only, as in
        # the paper's HDD tests.
        params.setdefault("recycle_threshold_bytes", 1 << 30)
    elif cfg.method == "plr" and hdd:
        # Reserved regions are sized for seek-bound devices (FAST'14 used
        # chunk-proportional reserves on disks).
        params.setdefault("reserve_bytes", 32 * 1024)
    return make_strategy_factory(cfg.method, **params)


def drain_all(cluster: Cluster):
    """Flush every strategy's logs, phase by phase, cluster-wide (generator).

    Phases are global barriers: cross-OSD forwards emitted by phase N land
    (their RPCs complete inside phase N) before any OSD starts phase N+1.
    """
    sim = cluster.sim
    max_phases = max(osd.strategy.DRAIN_PHASES for osd in cluster.osds)
    for phase in range(max_phases):
        procs = [
            sim.process(osd.strategy.drain(phase))
            for osd in cluster.osds
            if phase < osd.strategy.DRAIN_PHASES
        ]
        if procs:
            yield AllOf(sim, procs)


def build_cluster(cfg: ExperimentConfig) -> Cluster:
    """A fresh simulator + cluster for one experiment cell.

    Shared by :func:`run_experiment` and the scenario runner in
    :mod:`repro.workload.scenarios`, so every driver gets identical
    geometry/strategy resolution from the same config type.
    """
    sim = Simulator()
    return Cluster(
        sim,
        ClusterConfig(
            n_osds=cfg.n_osds,
            k=cfg.k,
            m=cfg.m,
            block_size=cfg.block_size,
            construction=cfg.construction,
            device_kind=cfg.device_kind,
            device_profile=cfg.device_profile,
            net_profile=cfg.resolved_net(),
            seed=cfg.seed,
            fast_dataplane=cfg.fast_dataplane,
            ghost_dataplane=cfg.ghost_dataplane,
        ),
        _strategy_factory(cfg),
    )


def drive_to_completion(sim, proc, what: str = "experiment"):
    """Run the kernel until ``proc`` fires; diagnose a drained-heap hang."""
    if not sim.run_until_fired(proc):
        raise RuntimeError(f"{what} did not complete (deadlock?)")
    return proc.value


def aggregate_update_latency(clients) -> LatencyRecorder:
    """One recorder holding every client's update samples."""
    agg = LatencyRecorder("agg")
    for c in clients:
        agg.completion_times.extend(c.update_latency.completion_times)
        agg.latencies.extend(c.update_latency.latencies)
    return agg


def run_experiment(cfg: ExperimentConfig) -> ExperimentResult:
    """Run one experiment cell start to finish (pure function of cfg)."""
    cluster = build_cluster(cfg)
    sim = cluster.sim

    # --- register one sparse file per client (no simulated cost) --------
    replayers: List[TraceReplayer] = []
    for i in range(cfg.n_clients):
        inode = 1000 + i
        cluster.register_sparse_file(inode, cfg.file_size)
        client = cluster.add_client(f"client{i}")
        trace = make_trace(cfg, cluster.rng.get(f"trace{i}"))
        replayers.append(
            TraceReplayer(client, inode, trace, cluster.rng.get(f"payload{i}"))
        )

    cluster.start()

    # --- replay ----------------------------------------------------------
    def main():
        procs = [sim.process(r.run(), name=f"replay{i}") for i, r in enumerate(replayers)]
        yield AllOf(sim, procs)
        horizon = sim.now
        yield from drain_all(cluster)
        return horizon

    horizon = drive_to_completion(sim, sim.process(main(), name="experiment"))
    cluster.stop()

    # --- verify ----------------------------------------------------------
    consistent: Optional[bool] = None
    if cfg.verify:
        consistent = _verify(cluster, cfg, replayers)

    # --- collect ---------------------------------------------------------
    ops = cluster.total_ops()
    wear = cluster.total_wear()
    net = cluster.total_net()
    agg = aggregate_update_latency(cluster.clients)
    n_updates = sum(r.completed for r in replayers)

    residency = None
    peak_mem = 0
    if cfg.method == "tsue":
        residency = ResidencyTracker()
        for osd in cluster.osds:
            residency = residency.merge(osd.strategy.engine.residency)
            peak_mem += osd.strategy.engine.peak_log_memory_bytes()

    return ExperimentResult(
        config=cfg,
        n_updates=n_updates,
        horizon=horizon,
        agg_iops=(n_updates / horizon) if horizon > 0 else 0.0,
        mean_latency=agg.mean(),
        p99_latency=agg.percentile(99),
        rw_ops=ops.rw_ops,
        rw_bytes=ops.rw_bytes,
        overwrite_ops=ops.overwrite_ops,
        overwrite_bytes=ops.overwrite_bytes,
        net_bytes=net.bytes_sent,
        net_messages=net.messages,
        erase_ops=wear.erase_ops,
        page_writes=wear.page_writes,
        residency=residency,
        peak_log_memory=peak_mem,
        consistent=consistent,
        update_recorder=agg,
    )


def _verify(cluster, cfg, replayers) -> bool:
    """Post-drain: stored stripes must be parity-consistent and match the
    shadow model of every completed update.

    Files start as sparse zeros, so the shadow is built lazily per touched
    block by re-deriving each replayer's deterministic payload stream.

    Ghost plane: there are no bytes to shadow — the check degrades to the
    coverage invariant per touched stripe (``stripe_consistent`` dispatches
    on the plane).
    """
    if cluster.config.ghost_dataplane:
        for r in replayers:
            touched = set()
            for rec in r.records[: r.completed]:
                for ext in cluster.stripe_map.extents(r.inode, rec.offset, rec.size):
                    touched.add(ext.addr.stripe)
            for stripe in touched:
                if not cluster.stripe_consistent(r.inode, stripe):
                    return False
        return True
    for r in replayers:
        payload_rng = _replay_payload_rng(cluster, r)
        per_block: Dict[tuple, np.ndarray] = {}
        for rec in r.records[: r.completed]:
            payload = payload_rng.integers(0, 256, rec.size, dtype=np.uint8)
            pos = 0
            for ext in cluster.stripe_map.extents(r.inode, rec.offset, rec.size):
                blk = per_block.setdefault(
                    ext.addr.key(), np.zeros(cfg.block_size, dtype=np.uint8)
                )
                blk[ext.offset : ext.offset + ext.length] = payload[pos : pos + ext.length]
                pos += ext.length
        touched_stripes = set()
        for key, expect in per_block.items():
            inode, stripe, j = key
            touched_stripes.add(stripe)
            names = cluster.placement(inode, stripe)
            got = cluster.osd_by_name(names[j]).store.peek(key)
            if got is None or not np.array_equal(got, expect):
                return False
        for stripe in touched_stripes:
            if not cluster.stripe_consistent(r.inode, stripe):
                return False
    return True


def _replay_payload_rng(cluster, replayer) -> np.random.Generator:
    """A fresh copy of the RNG stream a replayer drew its payloads from."""
    i = int(replayer.client.name.replace("client", ""))
    # RngStreams caches generators; spawn an identical child factory so the
    # verification stream starts from the same seed state.
    from repro.sim.rng import RngStreams

    fresh = RngStreams(cluster.rng.seed)
    return fresh.get(f"payload{i}")
