"""Table 1 — storage workload and network traffic.

Replays the Ten-Cloud trace under RS(6,4) for every method and reports
exactly the paper's columns: READ/WRITE Num. and Volume, OVERWRITE
(write-penalty) Num. and Volume, NETWORK TRAFFIC.

Expected shape: TSUE lowest op counts (read/write ops a small fraction of
PL's; overwrites a small fraction of FO's) while its *volumes* may exceed
PARIX/CoRD (three log layers all persist), and network traffic only
slightly above CoRD's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.harness.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.metrics.report import format_table

METHODS = ("fo", "pl", "plr", "parix", "cord", "tsue")


@dataclass
class Table1Result:
    results: Dict[str, ExperimentResult]

    def rows(self) -> List[List[object]]:
        out = []
        for name, r in self.results.items():
            out.append(
                [
                    name.upper(),
                    r.rw_ops,
                    round(r.rw_gb, 3),
                    r.overwrite_ops,
                    round(r.overwrite_gb, 3),
                    round(r.net_gb, 3),
                ]
            )
        return out

    def render(self) -> str:
        return format_table(
            ["METHOD", "R/W Num.", "R/W GB", "OW Num.", "OW GB", "NET GB"],
            self.rows(),
            title="Table 1: storage workload and network traffic (Ten-Cloud, RS(6,4))",
        )


def run_table1(
    n_clients: int = 32,
    updates_per_client: int = 150,
    seed: int = 17,
    methods: Sequence[str] = METHODS,
) -> Table1Result:
    results: Dict[str, ExperimentResult] = {}
    for method in methods:
        cfg = ExperimentConfig(
            method=method,
            trace="ten",
            k=6,
            m=4,
            n_clients=n_clients,
            updates_per_client=updates_per_client,
            seed=seed,
            verify=False,
        )
        if method == "tsue":
            cfg.strategy_params = dict(
                unit_bytes=512 * 1024, flush_age=0.02, flush_interval=0.01
            )
        results[method] = run_experiment(cfg)
    return Table1Result(results=results)
