"""Table 2 — time updated data resides in memory.

Runs TSUE under RS(12,4) on both cloud traces and reports the mean
append / buffer / recycle residency per log layer plus the end-to-end
total, in microseconds — the paper's Table 2 layout.

The paper measures ~10 s totals with 16 MB units on hour-scale replays;
residency scales with unit size and fill rate (§5.3.5 notes halving the
unit halves the interval), so at bench scale the totals are shorter but the
structure — buffer time dominating, append/recycle in the µs-to-ms range —
is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.metrics.latency import ResidencyTracker
from repro.metrics.report import format_table


@dataclass
class Table2Result:
    residency: Dict[str, ResidencyTracker]  # trace -> tracker
    totals_us: Dict[str, float]

    def rows(self) -> List[List[object]]:
        out = []
        for trace, tracker in self.residency.items():
            for layer in ResidencyTracker.LAYERS:
                a, b, r = tracker.mean_us(layer)
                out.append([trace, layer, round(a, 1), round(b, 1), round(r, 1)])
            out.append([trace, "TOTAL", "", "", round(self.totals_us[trace], 1)])
        return out

    def render(self) -> str:
        return format_table(
            ["TRACE", "LAYER", "APPEND us", "BUFFER us", "RECYCLE us"],
            self.rows(),
            title="Table 2: residency of updated data in memory (TSUE, RS(12,4))",
        )


def run_table2(
    n_clients: int = 32,
    updates_per_client: int = 150,
    unit_bytes: int = 512 * 1024,
    seed: int = 19,
) -> Table2Result:
    residency: Dict[str, ResidencyTracker] = {}
    totals: Dict[str, float] = {}
    for trace in ("ali", "ten"):
        cfg = ExperimentConfig(
            method="tsue",
            trace=trace,
            k=12,
            m=4,
            n_clients=n_clients,
            updates_per_client=updates_per_client,
            seed=seed,
            verify=False,
            strategy_params=dict(
                unit_bytes=unit_bytes, flush_age=0.1, flush_interval=0.05
            ),
        )
        res = run_experiment(cfg)
        assert res.residency is not None
        residency[trace] = res.residency
        totals[trace] = res.residency.total_time_us()
    return Table2Result(residency=residency, totals_us=totals)
