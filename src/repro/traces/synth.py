"""The synthetic trace engine.

A trace is a sequence of :class:`TraceRecord` update requests against one
file's logical address space.  Generation combines:

* a **size distribution** given as (size, probability) pairs — the paper
  quotes these marginals for each trace family;
* **temporal locality** via Zipf-distributed popularity over aligned pages
  of a *hot working set* covering ``hot_fraction`` of the file (Ten-Cloud:
  >80 % of volumes touch <5 % of their data, §2.3.3);
* **spatial locality** via run bursts: with probability ``run_prob`` the
  next request continues right after the previous one instead of jumping
  to a fresh Zipf-sampled page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.sim.drawcursor import DrawCursor, choice_cdf

PAGE = 4096


@dataclass(frozen=True)
class TraceRecord:
    """One update request in file-logical coordinates."""

    offset: int
    size: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.size <= 0:
            raise ValueError(f"invalid record ({self.offset}, {self.size})")


@dataclass
class SyntheticTraceConfig:
    """Knobs of one trace family; see the per-family modules for values."""

    name: str
    # (size_bytes, probability) — probabilities must sum to 1.
    size_dist: Sequence[Tuple[int, float]]
    # Fraction of the file covered by the hot working set.
    hot_fraction: float = 0.05
    # Zipf skew over hot pages (higher = more temporal locality).
    zipf_s: float = 1.1
    # Probability the next request continues sequentially (spatial run).
    run_prob: float = 0.3
    # Fraction of requests that jump outside the hot set (cold tail).
    cold_prob: float = 0.05

    def __post_init__(self) -> None:
        total = sum(p for _, p in self.size_dist)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"size distribution sums to {total}, expected 1")
        if not 0 < self.hot_fraction <= 1:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0 <= self.run_prob < 1 or not 0 <= self.cold_prob <= 1:
            raise ValueError("probabilities must be in [0, 1)")


def _zipf_weights(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-s)
    return w / w.sum()


def generate_trace(
    config: SyntheticTraceConfig,
    file_size: int,
    n_requests: int,
    rng: np.random.Generator,
) -> List[TraceRecord]:
    """Materialise ``n_requests`` update records for a file of ``file_size``.

    Draws run through a chunked :class:`DrawCursor` — raw RNG output is
    pre-drawn in vectorised blocks and replayed in the exact per-request
    order the historical scalar calls consumed (``choice`` is one uniform
    against a cumulative table, the cold jump a bounded integer), so the
    records are bit-identical per seed while the per-request numpy
    dispatch cost disappears.  The generator is left on the exact
    consumption point afterwards (:meth:`DrawCursor.sync`).
    """
    if file_size < PAGE:
        raise ValueError(f"file must be at least one page ({PAGE}B)")
    n_pages = file_size // PAGE
    hot_pages = max(1, int(n_pages * config.hot_fraction))
    # A fixed random permutation scatters the hot set across the file so
    # hot pages land on different blocks/OSDs.
    perm = rng.permutation(n_pages)
    hot = perm[:hot_pages]
    weights = _zipf_weights(hot_pages, config.zipf_s)

    sizes = np.array([s for s, _ in config.size_dist])
    size_cdf = choice_cdf([p for _, p in config.size_dist])
    zipf_cdf = choice_cdf(weights)
    run_prob = config.run_prob
    cold_prob = config.cold_prob

    # At most ~4 raw64 draws per request; one refill covers whole smoke
    # traces and large traces amortise over a few thousand requests.
    cur = DrawCursor(rng, chunk=min(8192, 4 * n_requests + 8))
    out: List[TraceRecord] = []
    prev_end = None
    for _ in range(n_requests):
        size = int(sizes[cur.weighted_index(size_cdf)])
        if prev_end is not None and cur.random() < run_prob:
            offset = prev_end  # spatial run continuation
        elif cur.random() < cold_prob:
            offset = cur.integers(n_pages) * PAGE
        else:
            offset = int(hot[cur.weighted_index(zipf_cdf)]) * PAGE
        if offset + size > file_size:
            offset = max(0, file_size - size)
        out.append(TraceRecord(offset, size))
        prev_end = offset + size
    cur.sync()
    return out


def update_stats(records: Sequence[TraceRecord]) -> dict:
    """Summary statistics used by tests to validate trace marginals."""
    sizes = np.array([r.size for r in records])
    offsets = np.array([r.offset for r in records])
    pages = set()
    for r in records:
        pages.update(range(r.offset // PAGE, (r.offset + r.size - 1) // PAGE + 1))
    return {
        "n": len(records),
        "frac_le_4k": float(np.mean(sizes <= 4096)),
        "frac_le_16k": float(np.mean(sizes <= 16384)),
        "mean_size": float(sizes.mean()),
        "distinct_pages": len(pages),
        "max_offset": int((offsets + sizes).max()),
    }
