"""Closed-loop trace replay, as a special case of the workload generator.

One :class:`TraceReplayer` drives one client: it issues each trace record's
update as soon as the previous one completes (closed loop, like fio with
iodepth=1 per client; aggregate concurrency comes from the client count, as
in the paper's 4..64-client sweeps).  Payload bytes are generated
deterministically from the replayer's RNG so runs are reproducible and
consistency checks can re-derive expected content.

Since the workload subsystem landed, this is just
:class:`~repro.workload.generator.OpenLoopGenerator` pinned to zero-gap
arrivals, one tenant, updates only and ``iodepth=1`` — the RNG draw order
(one payload per record, in issue order) is identical to the historical
replayer, which the harness's shadow verifier depends on.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.fs.client import Client
from repro.traces.synth import TraceRecord
from repro.workload.arrival import ClosedLoop
from repro.workload.generator import OpenLoopGenerator, WorkloadSpec


class TraceReplayer(OpenLoopGenerator):
    """Replays one trace through one client against one file."""

    def __init__(
        self,
        client: Client,
        inode: int,
        records: List[TraceRecord],
        rng: np.random.Generator,
        stop_at: Optional[float] = None,
    ):
        super().__init__(
            client,
            [(inode, records)],
            rng,
            WorkloadSpec(
                arrivals=ClosedLoop(),
                n_requests=len(records),
                iodepth=1,
                read_fraction=0.0,
                stop_at=stop_at,
            ),
        )
        self.inode = inode
        self.records = records
        self.stop_at = stop_at
