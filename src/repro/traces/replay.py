"""Closed-loop trace replay.

One :class:`TraceReplayer` drives one client: it issues each trace record's
update as soon as the previous one completes (closed loop, like fio with
iodepth=1 per client; aggregate concurrency comes from the client count, as
in the paper's 4..64-client sweeps).  Payload bytes are generated
deterministically from the replayer's RNG so runs are reproducible and
consistency checks can re-derive expected content.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.fs.client import Client
from repro.traces.synth import TraceRecord


class TraceReplayer:
    """Replays one trace through one client against one file."""

    def __init__(
        self,
        client: Client,
        inode: int,
        records: List[TraceRecord],
        rng: np.random.Generator,
        stop_at: Optional[float] = None,
    ):
        self.client = client
        self.inode = inode
        self.records = records
        self.rng = rng
        self.stop_at = stop_at
        self.completed = 0
        self.bytes_written = 0

    def run(self):
        """The replay process body (pass to ``sim.process``)."""
        sim = self.client.sim
        for rec in self.records:
            if self.stop_at is not None and sim.now >= self.stop_at:
                break
            payload = self.rng.integers(0, 256, rec.size, dtype=np.uint8)
            yield from self.client.update(self.inode, rec.offset, payload)
            self.completed += 1
            self.bytes_written += rec.size
        return self.completed
