"""Ten-Cloud (Tencent CBS) trace profile.

The paper's statistics (§2.1/§2.3.3, citing [41]): 69 % of requests are
updates; 69 % of updates are exactly 4 KB, 88 % <= 16 KB; and the workload
is strongly localised — over 80 % of volumes touch less than 5 % of their
data.  The tight hot set and high run probability give TSUE's locality
machinery more to merge, which is why the paper reports larger gains under
Ten-Cloud than Ali-Cloud.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.traces.synth import SyntheticTraceConfig, TraceRecord, generate_trace

TEN_SIZE_DIST = [
    (4 * 1024, 0.69),   # 69 % exactly 4 KB
    (8 * 1024, 0.12),
    (16 * 1024, 0.07),  # cumulative 88 % <= 16 KB
    (32 * 1024, 0.07),
    (64 * 1024, 0.05),
]

TEN_CONFIG = SyntheticTraceConfig(
    name="ten-cloud",
    size_dist=TEN_SIZE_DIST,
    # §2.3.3: >80 % of volumes touch <5 % of their data, >10 % touch <0.5 %;
    # the weighted hot set is well under 2 % with a heavy Zipf head.
    hot_fraction=0.015,
    zipf_s=1.3,
    run_prob=0.45,
    cold_prob=0.04,
)


def tencloud_trace(
    file_size: int, n_requests: int, rng: np.random.Generator
) -> List[TraceRecord]:
    """A Ten-Cloud-profile update stream for one file."""
    return generate_trace(TEN_CONFIG, file_size, n_requests, rng)
