"""Workload traces.

The paper replays three proprietary/multi-GB block traces (Ali-Cloud,
Ten-Cloud, MSR-Cambridge).  Offline we synthesise statistically equivalent
streams from the marginals the paper itself reports (§2.1, §2.3.3, §5) —
update fraction, request-size distribution, and spatio-temporal locality —
using Zipf address popularity plus run-length spatial bursts.  DESIGN.md §2
documents the substitution.

* :class:`~repro.traces.synth.SyntheticTraceConfig` — the knobs;
* :func:`~repro.traces.alicloud.alicloud_trace` — Ali-Cloud profile;
* :func:`~repro.traces.tencloud.tencloud_trace` — Ten-Cloud profile;
* :func:`~repro.traces.msr.msr_trace` — seven MSR-Cambridge volumes;
* :class:`~repro.traces.replay.TraceReplayer` — closed-loop clients.
"""

from repro.traces.alicloud import alicloud_trace
from repro.traces.msr import MSR_VOLUMES, msr_trace
from repro.traces.replay import TraceReplayer
from repro.traces.synth import SyntheticTraceConfig, TraceRecord, generate_trace
from repro.traces.tencloud import tencloud_trace

__all__ = [
    "MSR_VOLUMES",
    "SyntheticTraceConfig",
    "TraceRecord",
    "TraceReplayer",
    "alicloud_trace",
    "generate_trace",
    "msr_trace",
    "tencloud_trace",
]
