"""MSR-Cambridge trace profiles (the HDD evaluation, §5.4).

The paper replays seven MSR volumes (src10, src22, proj2, prn1, hm0, usr0,
mds0).  Published MSR statistics ([10, 24]): ~90 % of writes are updates,
~60 % of updates < 4 KB, 90 % < 16 KB.  Each volume below gets a distinct
locality/size profile consistent with its published character (e.g. prn1 is
print-server append-ish with longer runs, hm0 hardware-monitoring hot-page
heavy, usr0 home-directory small-random).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.traces.synth import SyntheticTraceConfig, TraceRecord, generate_trace

_COMMON_SMALL = [
    (512, 0.18),
    (4 * 1024, 0.42),
    (8 * 1024, 0.20),
    (16 * 1024, 0.10),
    (32 * 1024, 0.06),
    (64 * 1024, 0.04),
]

MSR_VOLUMES: Dict[str, SyntheticTraceConfig] = {
    "src10": SyntheticTraceConfig(
        name="msr-src10", size_dist=_COMMON_SMALL,
        hot_fraction=0.03, zipf_s=1.25, run_prob=0.35, cold_prob=0.04,
    ),
    "src22": SyntheticTraceConfig(
        name="msr-src22", size_dist=_COMMON_SMALL,
        hot_fraction=0.05, zipf_s=1.15, run_prob=0.30, cold_prob=0.05,
    ),
    "proj2": SyntheticTraceConfig(
        name="msr-proj2",
        size_dist=[(4 * 1024, 0.35), (8 * 1024, 0.20), (16 * 1024, 0.15),
                   (32 * 1024, 0.15), (64 * 1024, 0.15)],
        hot_fraction=0.08, zipf_s=1.0, run_prob=0.45, cold_prob=0.08,
    ),
    "prn1": SyntheticTraceConfig(
        name="msr-prn1",
        size_dist=[(4 * 1024, 0.30), (8 * 1024, 0.25), (16 * 1024, 0.20),
                   (32 * 1024, 0.15), (64 * 1024, 0.10)],
        hot_fraction=0.06, zipf_s=1.05, run_prob=0.55, cold_prob=0.05,
    ),
    "hm0": SyntheticTraceConfig(
        name="msr-hm0", size_dist=_COMMON_SMALL,
        hot_fraction=0.02, zipf_s=1.35, run_prob=0.25, cold_prob=0.03,
    ),
    "usr0": SyntheticTraceConfig(
        name="msr-usr0", size_dist=_COMMON_SMALL,
        hot_fraction=0.06, zipf_s=1.1, run_prob=0.20, cold_prob=0.08,
    ),
    "mds0": SyntheticTraceConfig(
        name="msr-mds0",
        size_dist=[(512, 0.30), (4 * 1024, 0.40), (8 * 1024, 0.15),
                   (16 * 1024, 0.10), (32 * 1024, 0.05)],
        hot_fraction=0.03, zipf_s=1.3, run_prob=0.30, cold_prob=0.03,
    ),
}


def msr_trace(
    volume: str, file_size: int, n_requests: int, rng: np.random.Generator
) -> List[TraceRecord]:
    """An update stream for one MSR volume profile."""
    try:
        cfg = MSR_VOLUMES[volume]
    except KeyError:
        raise ValueError(
            f"unknown MSR volume {volume!r}; choose from {sorted(MSR_VOLUMES)}"
        ) from None
    return generate_trace(cfg, file_size, n_requests, rng)
