"""Ali-Cloud trace profile.

The paper's statistics (§2.1, citing [22]): 75 % of requests are updates;
of those, 46 % are exactly 4 KB and 60 % are <= 16 KB.  We replay the update
stream (the portion the update path serves) with that size mix and moderate
spatio-temporal locality — the paper finds TSUE's gain on Ali-Cloud smaller
than on Ten-Cloud, consistent with a weaker locality profile.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.traces.synth import SyntheticTraceConfig, TraceRecord, generate_trace

ALI_SIZE_DIST = [
    (4 * 1024, 0.46),   # 46 % exactly 4 KB
    (8 * 1024, 0.08),
    (16 * 1024, 0.06),  # cumulative 60 % <= 16 KB
    (32 * 1024, 0.20),
    (64 * 1024, 0.14),
    (128 * 1024, 0.06),
]

ALI_CONFIG = SyntheticTraceConfig(
    name="ali-cloud",
    size_dist=ALI_SIZE_DIST,
    hot_fraction=0.12,
    zipf_s=0.95,
    run_prob=0.25,
    cold_prob=0.10,
)


def alicloud_trace(
    file_size: int, n_requests: int, rng: np.random.Generator
) -> List[TraceRecord]:
    """An Ali-Cloud-profile update stream for one file."""
    return generate_trace(ALI_CONFIG, file_size, n_requests, rng)
