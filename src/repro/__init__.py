"""TSUE reproduction: two-stage updates for erasure-coded cluster storage.

Public entry points:

* :class:`repro.cluster.Cluster` / :class:`repro.cluster.ClusterConfig` —
  build a simulated ECFS cluster with any update strategy;
* :func:`repro.update.make_strategy_factory` — pick an update method
  (``"fo"``, ``"fl"``, ``"pl"``, ``"plr"``, ``"parix"``, ``"cord"``,
  ``"tsue"``);
* :func:`repro.harness.run_experiment` — one measured experiment cell;
* :mod:`repro.harness` — per-paper-artifact runners (fig5..fig8, tables);
* :func:`repro.recovery.recover_node` — verified node recovery.

``python -m repro --help`` exposes the experiment runner on the command
line.

The re-exports below are lazy (PEP 562): ``python -m repro`` must be able
to launch without importing the engine, so the dependency-free paths
(``repro lint``, ``--help``) never pull in numpy.  ``from repro import
Cluster`` still works — the attribute access triggers the real import.
"""

__version__ = "1.0.0"

# Public name -> defining submodule, resolved on first attribute access.
_LAZY_EXPORTS = {
    "Cluster": "repro.cluster",
    "ClusterConfig": "repro.cluster",
    "RSCodec": "repro.ec",
    "Simulator": "repro.sim",
    "TSUEConfig": "repro.tsue",
    "TSUEEngine": "repro.tsue",
}

__all__ = [
    "Cluster",
    "ClusterConfig",
    "RSCodec",
    "Simulator",
    "TSUEConfig",
    "TSUEEngine",
    "__version__",
]


def __getattr__(name):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: subsequent accesses skip __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
