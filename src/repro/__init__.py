"""TSUE reproduction: two-stage updates for erasure-coded cluster storage.

Public entry points:

* :class:`repro.cluster.Cluster` / :class:`repro.cluster.ClusterConfig` —
  build a simulated ECFS cluster with any update strategy;
* :func:`repro.update.make_strategy_factory` — pick an update method
  (``"fo"``, ``"fl"``, ``"pl"``, ``"plr"``, ``"parix"``, ``"cord"``,
  ``"tsue"``);
* :func:`repro.harness.run_experiment` — one measured experiment cell;
* :mod:`repro.harness` — per-paper-artifact runners (fig5..fig8, tables);
* :func:`repro.recovery.recover_node` — verified node recovery.

``python -m repro --help`` exposes the experiment runner on the command
line.
"""

__version__ = "1.0.0"

from repro.cluster import Cluster, ClusterConfig
from repro.ec import RSCodec
from repro.sim import Simulator
from repro.tsue import TSUEConfig, TSUEEngine

__all__ = [
    "Cluster",
    "ClusterConfig",
    "RSCodec",
    "Simulator",
    "TSUEConfig",
    "TSUEEngine",
    "__version__",
]
