"""Command-line runner: ``python -m repro <subcommand>``.

Subcommands map one-to-one onto the paper's artifacts plus a free-form
experiment cell:

* ``run``    — one experiment cell (method x trace x geometry x clients);
* ``fig5``   — one throughput panel;
* ``fig6a`` / ``fig6b`` — recycle-overhead series / memory sweep;
* ``fig7``   — the O1..O5 breakdown;
* ``fig8a`` / ``fig8b`` — HDD throughput / recovery bandwidth;
* ``table1`` / ``table2`` — workload counters / residency;
* ``lifespan`` — flash wear comparison;
* ``scenario`` — one named open-loop workload scenario (including the
  failure axis — ``degraded_read``, ``rebuild_under_load``,
  ``double_fault`` — and the live-change axis — ``fail_slow``,
  ``congested_fabric``, ``rolling_restart``, ``scale_out_live``,
  ``scale_in_live``);
* ``bench`` — the scenario registry plus per-method sweeps of one
  contention scenario (stripe-lock serialization cost), one failure
  scenario (Fig. 8b-style recovery rows) and the live-change scenarios
  (straggler/migration rows), with an optional JSON baseline.
"""

from __future__ import annotations

import argparse
import os
import sys


def _add_scale(p: argparse.ArgumentParser, clients: int, updates: int) -> None:
    p.add_argument("--clients", type=int, default=clients)
    p.add_argument("--updates", type=int, default=updates)
    p.add_argument("--seed", type=int, default=7)


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    run = sub.add_parser("run", help="one experiment cell")
    run.add_argument("--method", default="tsue",
                     choices=["fo", "fl", "pl", "plr", "parix", "cord", "tsue"])
    run.add_argument("--trace", default="ten",
                     help='"ali", "ten" or "msr:<volume>"')
    run.add_argument("--k", type=int, default=6)
    run.add_argument("--m", type=int, default=2)
    run.add_argument("--device", default="ssd", choices=["ssd", "hdd"])
    run.add_argument("--no-verify", action="store_true")
    _add_scale(run, 16, 100)

    f5 = sub.add_parser("fig5", help="one Fig.5 throughput panel")
    f5.add_argument("--trace", default="ten", choices=["ali", "ten"])
    f5.add_argument("--k", type=int, default=6)
    f5.add_argument("--m", type=int, default=2)
    f5.add_argument("--client-sweep", type=int, nargs="+", default=[4, 16, 64])
    f5.add_argument("--updates", type=int, default=100)
    f5.add_argument("--seed", type=int, default=7)

    sub.add_parser("fig6a", help="recycle overhead over time")
    sub.add_parser("fig6b", help="throughput/memory vs unit quota")

    f7 = sub.add_parser("fig7", help="O1..O5 breakdown")
    f7.add_argument("--trace", default="ten", choices=["ali", "ten"])
    f7.add_argument("--m", type=int, default=4)

    sub.add_parser("fig8a", help="HDD update throughput (MSR volumes)")
    sub.add_parser("fig8b", help="HDD recovery bandwidth")
    sub.add_parser("table1", help="storage workload & network traffic")
    sub.add_parser("table2", help="residency per log layer")
    sub.add_parser("lifespan", help="flash wear comparison")

    li = sub.add_parser(
        "lint",
        help="static analysis: engine-invariant rules over the sources",
    )
    li.add_argument("paths", nargs="*", default=["src"],
                    help="files/directories to analyze (default: src)")
    li.add_argument("--format", choices=["text", "json", "github"],
                    default="text",
                    help="report format (default: text; github emits "
                         "::error annotations for Actions)")
    li.add_argument("--strict", action="store_true",
                    help="exit 1 on ANY unsuppressed finding, unused "
                         "suppression, or suppression without a reason "
                         "(the CI gate)")
    li.add_argument("--rules", nargs="+", default=None, metavar="RULE",
                    help="restrict the run to these rule ids")
    li.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")
    li.add_argument("--show-suppressed", action="store_true",
                    help="include suppressed findings (and their reasons) "
                         "in the text report")
    li.add_argument("--ipd", dest="ipd", action="store_true", default=True,
                    help="run the whole-program (ipd/rpc) families "
                         "(default: on)")
    li.add_argument("--no-ipd", dest="ipd", action="store_false",
                    help="per-file rules only (PR 6 behavior: no call "
                         "graph, no summaries, no cache)")
    li.add_argument("--cache", default=None, metavar="PATH",
                    help="summary-cache file (default: .repro-lint-cache "
                         "next to the first analyzed path)")
    li.add_argument("--no-cache", action="store_true",
                    help="cold run: neither read nor write the summary "
                         "cache")
    li.add_argument("--graph-dump", nargs="?", const="repro-lint-graph.json",
                    default=None, metavar="PATH",
                    help="write the resolved call graph + solved summaries "
                         "as JSON (default PATH: repro-lint-graph.json)")
    li.add_argument("--changed", action="store_true",
                    help="report only findings in git-changed files plus "
                         "their reverse summary dependents (analysis still "
                         "covers the whole tree; --strict CI runs "
                         "unscoped)")

    sc = sub.add_parser("scenario", help="one named open-loop workload scenario")
    sc.add_argument("name", help='scenario name, or "list" to enumerate')
    sc.add_argument("--method", default="tsue",
                    choices=["fo", "fl", "pl", "plr", "parix", "cord", "tsue"])
    sc.add_argument("--device", default="ssd", choices=["ssd", "hdd"])
    sc.add_argument("--clients", type=int, default=None,
                    help="override the scenario's native client count "
                         "(default: scenario-defined, 4 for smoke rows)")
    sc.add_argument("--requests", type=int, default=None,
                    help="override requests per client (default: scenario-"
                         "defined, 200 for smoke rows)")
    sc.add_argument("--seed", type=int, default=7)

    be = sub.add_parser("bench", help="run every scenario; smoke perf baseline")
    be.add_argument("--clients", type=int, default=None,
                    help="override every scenario's client count (default: "
                         "native sizes — 4 for smoke rows, 32 for scale_up)")
    be.add_argument("--requests", type=int, default=None,
                    help="override requests per client (default: native "
                         "sizes — 200 for smoke rows, 2000 for scale_up)")
    be.add_argument("--seed", type=int, default=7)
    be.add_argument("--scenarios", nargs="+", default=None, metavar="NAME",
                    help="limit the registry run to these scenarios "
                         "(default: all)")
    be.add_argument("--methods", nargs="*", default=None, metavar="METHOD",
                    help="per-method sweep rows on --method-scenario "
                         "(default: all seven; pass with no values to skip "
                         "the sweep)")
    be.add_argument("--method-scenario", default="hot_stripe",
                    help="scenario the per-method sweep runs (default: "
                         "hot_stripe)")
    be.add_argument("--recovery-scenario", default="rebuild_under_load",
                    help="failure scenario for the per-method recovery "
                         "sweep (default: rebuild_under_load; \"none\" "
                         "skips it)")
    be.add_argument("--scale-up-scenario", default="scale_up",
                    help="scenario for the per-method 10x-scale sweep "
                         "(default: scale_up; \"none\" skips it)")
    be.add_argument("--scale-out-scenario", default="scale_out",
                    help="scenario for the per-method ghost-plane cluster "
                         "sweep (default: scale_out; \"none\" skips it)")
    be.add_argument("--elastic-scenarios", nargs="+", default=None,
                    metavar="NAME",
                    help="live-change scenarios for the per-method elastic "
                         "sweeps (default: all seven — fail_slow, "
                         "congested_fabric, rolling_restart, scale_out_live, "
                         "scale_in_live, lossy_cluster, throttled_rebalance; "
                         "\"none\" skips them)")
    be.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                    help="fan scenario x method rows out over N worker "
                         "processes (each row is an isolated simulator; "
                         "rows are merged deterministically, so output is "
                         "identical to --jobs 1, the serial reference "
                         "path)")
    be.add_argument("--json", nargs="?", const="BENCH_scenarios.json",
                    default=None, metavar="PATH",
                    help="also write a JSON baseline (default PATH: "
                         "BENCH_scenarios.json; written atomically via "
                         "temp file + rename)")
    be.add_argument("--profile", nargs="?",
                    const="benchmarks/results/bench_profile.txt",
                    default=None, metavar="PATH",
                    help="run under cProfile and write a cumulative-time "
                         "report to PATH")
    be.add_argument("--check-baseline", nargs="?",
                    const="BENCH_scenarios.json", default=None,
                    metavar="PATH",
                    help="after the run, diff the simulated-output rows "
                         "(scenarios/methods/recovery/scale_up/scale_out/"
                         "elastic — the machine-dependent perf section is "
                         "ignored) "
                         "against an existing baseline, reporting the first "
                         "differing JSON leaf cells; exit 3 on drift")
    return ap


def _git_changed_files():
    """Absolute paths of files changed vs HEAD (staged, unstaged, new).

    Returns None when not in a git checkout — ``lint --changed`` is a
    pre-commit convenience and refuses to guess.
    """
    import subprocess

    def run(*argv: str) -> str:
        return subprocess.run(
            ["git", *argv], capture_output=True, text=True, check=True,
        ).stdout

    try:
        top = run("rev-parse", "--show-toplevel").strip()
        listed = run("diff", "--name-only", "HEAD") + \
            run("ls-files", "--others", "--exclude-standard")
    except (OSError, subprocess.CalledProcessError):
        return None
    return {
        os.path.join(top, line.strip())
        for line in listed.splitlines() if line.strip()
    }


def _leaf_diffs(path: str, a, b, out: list) -> None:
    """Append ``path: old -> new`` lines for every differing JSON *leaf*.

    Recurses through nested dicts so a changed cell inside, say, a row's
    ``recovery`` sub-table reports the exact dotted leaf
    (``recovery.tsue.recovery.drain_s: 0.1 -> 0.2``) instead of dumping
    both whole row dicts.  Keys only one side has are leaves too (reported
    with the sentinel ``<absent>``); mismatched shapes (dict vs scalar)
    bottom out at the current path.
    """
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in a:
                _leaf_diffs(sub, "<absent>", b[key], out)
            elif key not in b:
                _leaf_diffs(sub, a[key], "<absent>", out)
            else:
                _leaf_diffs(sub, a[key], b[key], out)
        return
    if a != b:
        old = a if isinstance(a, str) and a == "<absent>" else repr(a)
        new = b if isinstance(b, str) and b == "<absent>" else repr(b)
        out.append(f"{path}: {old} -> {new}")


def _baseline_drift(baseline: dict, payload: dict) -> list:
    """Leaf cells that changed vs an existing baseline (the determinism gate).

    Compares the *simulated-output* sections (``scenarios`` / ``methods`` /
    ``recovery`` / ``scale_up`` / ``scale_out`` / ``elastic``) for every
    row present in both the baseline and this run, recursing to the first differing JSON
    leaf so a drifted run reports exact dotted paths and old/new cell
    values, not wholesale row dumps.  The machine-dependent ``perf``
    section is ignored, and rows only this run has (e.g. a freshly added
    scenario) are additions, not drift.  ``baseline`` is the decoded
    JSON — loaded by the caller *before* any ``--json`` write, so checking
    against the same path that is being regenerated still compares old vs
    new.
    """
    drift = []
    sections = (
        "scenarios", "methods", "recovery", "scale_up", "scale_out", "elastic",
    )
    for section in sections:
        old = baseline.get(section, {})
        new = payload.get(section, {})
        # A baseline row this run did not produce is drift too — a silent
        # loss of coverage must not read as "clean".  (Narrowed runs, e.g.
        # --scenarios steady, will legitimately trip this; check against
        # the full registry run the baseline was made from.)
        for row in sorted(set(old) - set(new)):
            drift.append(f"{section}.{row}: present in baseline, missing from this run")
        for row in sorted(set(old) & set(new)):
            _leaf_diffs(f"{section}.{row}", old[row], new[row], drift)
    return drift


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.cmd == "lint":
        # Self-contained: the analysis package must not drag the engine
        # (numpy, harness) into a lint run.
        from repro.analysis import (
            analyze_paths,
            render_github,
            render_json,
            render_text,
            rules_by_id,
        )
        from repro.analysis.core import ProjectRule

        try:
            selected = list(rules_by_id(args.rules).values())
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        rules = [r for r in selected if not isinstance(r, ProjectRule)]
        prules = [r for r in selected if isinstance(r, ProjectRule)]
        if not args.ipd:
            prules = []
        if args.list_rules:
            for rule in rules + prules:
                print(f"{rule.id:26s} [{rule.family}] {rule.description}")
            return 0
        missing = [p for p in args.paths if not os.path.exists(p)]
        if missing:
            print(f"no such path(s): {missing}", file=sys.stderr)
            return 2

        changed = None
        if args.changed:
            changed = _git_changed_files()
            if changed is None:
                print("--changed needs a git checkout (git diff failed)",
                      file=sys.stderr)
                return 2

        if prules or args.graph_dump:
            from repro.analysis.cache import DEFAULT_CACHE_NAME
            from repro.analysis.graph import graph_dump
            from repro.analysis.project import analyze_project

            cache_path = None
            if not args.no_cache:
                cache_path = args.cache
                if cache_path is None:
                    root = args.paths[0]
                    base = root if os.path.isdir(root) \
                        else os.path.dirname(root) or "."
                    cache_path = os.path.join(
                        os.path.dirname(os.path.abspath(base)) or ".",
                        DEFAULT_CACHE_NAME,
                    )
            result = analyze_project(
                args.paths, rules, prules,
                cache_path=cache_path, changed=changed,
            )
            findings = result.findings
            if args.graph_dump:
                import json as _json

                with open(args.graph_dump, "w", encoding="utf-8") as fh:
                    _json.dump(graph_dump(result.project), fh, indent=2,
                               sort_keys=True)
                    fh.write("\n")
                print(f"wrote {args.graph_dump}", file=sys.stderr)
        else:
            findings = analyze_paths(args.paths, rules)
            if changed is not None:
                real = {os.path.realpath(c) for c in changed}
                findings = [f for f in findings
                            if os.path.realpath(f.path) in real]
        if args.format == "json":
            print(render_json(findings))
        elif args.format == "github":
            print(render_github(findings))
        else:
            print(render_text(findings, show_suppressed=args.show_suppressed))
        from repro.analysis.core import (
            SUPPRESSION_MISSING_REASON,
            SUPPRESSION_SYNTAX,
            UNUSED_SUPPRESSION,
        )

        active = [f for f in findings if not f.suppressed]
        if args.strict:
            # Strict is the CI gate: suppression-audit findings (unused
            # allows, allows without a reason, malformed allows) fail too.
            return 1 if active else 0
        # Non-strict: suppression-audit findings print but do not set the
        # exit code.  A parse error is NOT audit noise — the file was not
        # analyzed at all, so it fails in both modes.
        audit = (SUPPRESSION_MISSING_REASON, UNUSED_SUPPRESSION,
                 SUPPRESSION_SYNTAX)
        return 1 if [f for f in active if f.rule not in audit] else 0

    # Imports deferred so `--help` stays instant.
    from repro import harness

    if args.cmd == "run":
        cfg = harness.ExperimentConfig(
            method=args.method,
            trace=args.trace,
            k=args.k,
            m=args.m,
            device_kind=args.device,
            n_clients=args.clients,
            updates_per_client=args.updates,
            seed=args.seed,
            verify=not args.no_verify,
        )
        res = harness.run_experiment(cfg)
        print(f"method={args.method} trace={args.trace} RS({args.k},{args.m}) "
              f"{args.clients} clients")
        print(f"  aggregate IOPS : {res.agg_iops:,.0f}")
        print(f"  mean latency   : {res.mean_latency * 1e6:,.1f} us "
              f"(p99 {res.p99_latency * 1e6:,.1f} us)")
        print(f"  device ops     : {res.rw_ops:,} "
              f"({res.overwrite_ops:,} overwrites)")
        print(f"  network        : {res.net_bytes / 1e6:,.1f} MB")
        print(f"  erase ops      : {res.erase_ops:,.1f}")
        if res.consistent is not None:
            print(f"  verified       : {res.consistent}")
            return 0 if res.consistent else 1
        return 0

    if args.cmd == "scenario":
        from repro.workload import (
            SCENARIOS,
            InconsistentDrainError,
            PostRecoveryScrubError,
            run_scenario,
        )

        if args.name == "list":
            for name in sorted(SCENARIOS):
                print(f"{name:12s} {SCENARIOS[name].description}")
            return 0
        if args.name not in SCENARIOS:
            known = ", ".join(sorted(SCENARIOS))
            print(f"unknown scenario {args.name!r}; known: {known} "
                  f"(or \"list\")", file=sys.stderr)
            return 2
        try:
            res = run_scenario(
                args.name,
                seed=args.seed,
                n_clients=args.clients,
                requests_per_client=args.requests,
                method=args.method,
                device=args.device,
            )
        except (InconsistentDrainError, PostRecoveryScrubError) as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print(res.render())
        return 0

    if args.cmd == "bench":
        import json

        from repro.workload import (
            ELASTIC_SCENARIOS,
            METHODS,
            SCENARIOS,
            InconsistentDrainError,
            PostRecoveryScrubError,
            results_to_json,
            run_bench_cells,
        )

        # Validate selectors before simulating anything: a typo must not
        # cost minutes of registry runs and end in a raw traceback.
        known = ", ".join(sorted(SCENARIOS))
        unknown = [n for n in (args.scenarios or []) if n not in SCENARIOS]
        if args.method_scenario not in SCENARIOS:
            unknown.append(args.method_scenario)
        if args.recovery_scenario != "none" and (
            args.recovery_scenario not in SCENARIOS
        ):
            unknown.append(args.recovery_scenario)
        if args.scale_up_scenario != "none" and (
            args.scale_up_scenario not in SCENARIOS
        ):
            unknown.append(args.scale_up_scenario)
        if args.scale_out_scenario != "none" and (
            args.scale_out_scenario not in SCENARIOS
        ):
            unknown.append(args.scale_out_scenario)
        elastic_names = (
            list(ELASTIC_SCENARIOS) if args.elastic_scenarios is None
            else [n for n in args.elastic_scenarios if n != "none"]
        )
        unknown.extend(n for n in elastic_names if n not in SCENARIOS)
        if unknown:
            print(f"unknown scenario(s) {unknown}; known: {known}",
                  file=sys.stderr)
            return 2
        unknown = [m for m in (args.methods or []) if m not in METHODS]
        if unknown:
            print(f"unknown method(s) {unknown}; known: "
                  f"{', '.join(METHODS)}", file=sys.stderr)
            return 2
        if args.jobs < 1:
            print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
            return 2
        if args.profile and args.jobs > 1:
            print("--profile needs --jobs 1 (rows run in worker processes "
                  "the parent profiler cannot see)", file=sys.stderr)
            return 2

        # Load the baseline BEFORE simulating (fail fast on a bad path) and
        # before any --json write — `bench --json --check-baseline` with
        # both at the default path must diff old vs new, not new vs itself.
        baseline = None
        if args.check_baseline:
            try:
                with open(args.check_baseline) as fh:
                    baseline = json.load(fh)
            except (OSError, ValueError) as exc:
                print(f"cannot load baseline {args.check_baseline}: {exc}",
                      file=sys.stderr)
                return 2

        profiler = None
        if args.profile:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()

        scale = dict(
            seed=args.seed,
            n_clients=args.clients,
            requests_per_client=args.requests,
        )
        registry_names = (
            sorted(SCENARIOS) if args.scenarios is None else args.scenarios
        )
        sweep_methods = ()
        if args.methods is None or args.methods:
            sweep_methods = tuple(METHODS if args.methods is None else args.methods)
        # One row list, one executor: the full scenario x method cell set
        # in canonical order.  run_bench_cells de-duplicates (a sweep cell
        # that equals a registry cell simulates once) and returns a
        # cell-keyed mapping, so the sections below assemble identically
        # whether the cells ran serially (--jobs 1, the in-process
        # reference path) or over a process pool.
        rows = [(n, "tsue") for n in registry_names]
        sweep_scenarios = []
        if sweep_methods:
            sweep_scenarios.append(args.method_scenario)
            if args.recovery_scenario != "none":
                sweep_scenarios.append(args.recovery_scenario)
            if args.scale_up_scenario != "none":
                sweep_scenarios.append(args.scale_up_scenario)
            if args.scale_out_scenario != "none":
                sweep_scenarios.append(args.scale_out_scenario)
            sweep_scenarios.extend(elastic_names)
        for s in sweep_scenarios:
            rows.extend((s, m) for m in sweep_methods)
        try:
            cells = run_bench_cells(rows, jobs=args.jobs, **scale)
        except (InconsistentDrainError, PostRecoveryScrubError) as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        results = [cells[(n, "tsue")] for n in registry_names]
        method_rows = []
        recovery_rows = []
        scale_up_rows = []
        scale_out_rows = []
        elastic_rows = {}
        if sweep_methods:
            method_rows = [
                cells[(args.method_scenario, m)] for m in sweep_methods
            ]
            if args.recovery_scenario != "none":
                recovery_rows = [
                    cells[(args.recovery_scenario, m)] for m in sweep_methods
                ]
            if args.scale_up_scenario != "none":
                scale_up_rows = [
                    cells[(args.scale_up_scenario, m)] for m in sweep_methods
                ]
            if args.scale_out_scenario != "none":
                scale_out_rows = [
                    cells[(args.scale_out_scenario, m)] for m in sweep_methods
                ]
            elastic_rows = {
                s: [cells[(s, m)] for m in sweep_methods]
                for s in elastic_names
            }

        if profiler is not None:
            import io
            import pstats

            profiler.disable()
            buf = io.StringIO()
            stats = pstats.Stats(profiler, stream=buf)
            stats.sort_stats("cumulative").print_stats(60)
            stats.sort_stats("tottime").print_stats(60)
            with open(args.profile, "w") as fh:
                fh.write(buf.getvalue())
            print(f"wrote {args.profile}")

        for res in results:
            print(res.render())
        if method_rows:
            print(f"--- per-method rows ({args.method_scenario}) ---")
            for res in method_rows:
                print(res.render())
        if recovery_rows:
            print(f"--- per-method recovery rows ({args.recovery_scenario}) ---")
            for res in recovery_rows:
                print(res.render())
        if scale_up_rows:
            print(f"--- per-method 10x rows ({args.scale_up_scenario}) ---")
            for res in scale_up_rows:
                print(res.render())
        if scale_out_rows:
            print(f"--- per-method ghost-plane cluster rows "
                  f"({args.scale_out_scenario}) ---")
            for res in scale_out_rows:
                print(res.render())
        for s, rows_ in elastic_rows.items():
            print(f"--- per-method live-change rows ({s}) ---")
            for res in rows_:
                print(res.render())
        payload = results_to_json(results, method_rows, recovery_rows,
                                  scale_up_rows, scale_out_rows,
                                  elastic_rows=elastic_rows)
        if args.json:
            import tempfile

            # Atomic write (temp file + rename in the destination
            # directory): a crashed or interrupted run can truncate a
            # plain open(..., "w"), silently destroying the committed
            # baseline the determinism gates diff against.
            dest = os.path.abspath(args.json)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(dest),
                prefix=os.path.basename(dest) + ".",
                suffix=".tmp",
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(payload, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                os.replace(tmp, dest)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            print(f"wrote {args.json}")
        if baseline is not None:
            drift = _baseline_drift(baseline, payload)
            if drift:
                print(f"BASELINE DRIFT ({len(drift)} leaf cell(s) changed):",
                      file=sys.stderr)
                for line in drift[:40]:
                    print(f"  {line}", file=sys.stderr)
                if len(drift) > 40:
                    print(f"  ... and {len(drift) - 40} more", file=sys.stderr)
                return 3
            print(f"baseline check ok against {args.check_baseline}")
        return 0

    if args.cmd == "fig5":
        panel = harness.run_panel(
            args.k, args.m, args.trace, clients=tuple(args.client_sweep),
            updates_per_client=args.updates, seed=args.seed,
        )
        print(panel.render())
    elif args.cmd == "fig6a":
        print(harness.run_fig6a().render())
    elif args.cmd == "fig6b":
        print(harness.run_fig6b().render())
    elif args.cmd == "fig7":
        print(harness.run_fig7(trace=args.trace, m=args.m).render())
    elif args.cmd == "fig8a":
        print(harness.run_fig8a().render())
    elif args.cmd == "fig8b":
        print(harness.run_fig8b().render())
    elif args.cmd == "table1":
        print(harness.run_table1().render())
    elif args.cmd == "table2":
        print(harness.run_table2().render())
    elif args.cmd == "lifespan":
        print(harness.run_lifespan().render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
