"""Background parity scrubbing.

A scrubber walks stripes, reads each stripe's blocks (sequential
whole-block reads, costed on the devices), re-encodes the data blocks and
compares against stored parity.  EC file systems run this continuously to
catch latent corruption (bit rot, torn writes); it also doubles as an
online version of :meth:`repro.cluster.Cluster.stripe_consistent`, which is
cost-free and test-only.

A scrub of a stripe with *pending log state* would report false mismatches
(parity legitimately lags under every logging method), so the scrubber
skips stripes whose strategies report pending work unless ``force=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.cluster import Cluster
from repro.sim.events import AllOf


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    stripes_checked: int = 0
    stripes_skipped: int = 0
    mismatches: List[Tuple[int, int]] = field(default_factory=list)  # (inode, stripe)
    bytes_read: int = 0
    seconds: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.mismatches


def scrub(
    cluster: Cluster,
    targets: Iterable[Tuple[int, int]],
    force: bool = False,
):
    """Scrub the given (inode, stripe) pairs (process body).

    Returns a :class:`ScrubReport`.  Reads are really issued (and costed)
    through the recovery read path on each hosting OSD.
    """
    from repro.recovery.recovery import _ensure_recovery_handlers

    sim = cluster.sim
    cfg = cluster.config
    _ensure_recovery_handlers(cluster)
    report = ScrubReport()
    t0 = sim.now
    scrubber = cluster.osds[0]  # any node can drive a scrub
    for inode, stripe in targets:
        if not force and _has_pending_log_state(cluster):
            report.stripes_skipped += 1
            continue
        names = cluster.placement(inode, stripe)
        pulls = [
            sim.process(
                scrubber.rpc(
                    names[b], "recovery_read", {"key": (inode, stripe, b)}, nbytes=24
                )
            )
            for b in range(cfg.k + cfg.m)
        ]
        replies = yield AllOf(sim, pulls)
        blocks = [r["data"] for r in replies]
        report.bytes_read += (cfg.k + cfg.m) * cfg.block_size
        expect = cluster.codec.encode(blocks[: cfg.k])
        for p in range(cfg.m):
            if not np.array_equal(blocks[cfg.k + p], expect[p]):
                report.mismatches.append((inode, stripe))
                break
        report.stripes_checked += 1
    report.seconds = sim.now - t0
    return report


def _has_pending_log_state(cluster: Cluster) -> bool:
    """True if any strategy still holds unrecycled updates."""
    for osd in cluster.osds:
        strategy = osd.strategy
        pending = getattr(strategy, "pending_log_bytes", None)
        if pending is not None and pending() > 0:
            return True
        engine = getattr(strategy, "engine", None)
        if engine is not None:
            if engine.pending_recycles() > 0:
                return True
            for pools in (engine.data_pools, engine.delta_pools, engine.parity_pools):
                for pool in pools:
                    active = pool.active
                    if active is not None and active.used > 0:
                        return True
                    if pool.has_pending_recycle():
                        return True
    return False
