"""Background parity scrubbing.

A scrubber walks stripes, reads each stripe's blocks (sequential
whole-block reads, costed on the devices), re-encodes the data blocks and
compares against stored parity.  EC file systems run this continuously to
catch latent corruption (bit rot, torn writes); it also doubles as an
online version of :meth:`repro.cluster.Cluster.stripe_consistent`, which is
cost-free and test-only.

A scrub of a stripe with *pending log state* would report false mismatches
(parity legitimately lags under every logging method), so the scrubber
skips stripes whose strategies report pending work unless ``force=True``.
The pending check is scoped to the stripe being scrubbed — one busy stripe
(or one OSD with any pending logs) must not make the scrubber skip
fully-clean stripes elsewhere.  Stripes with a down member are always
skipped (their blocks cannot all be read).  Every skip is reported by key
in :attr:`ScrubReport.skipped` so operators can re-scrub exactly those.

Failure scenarios use a forced scrub as the post-recovery gate: after
recovery + repair, every touched stripe must scrub clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

import numpy as np

from repro.cluster import Cluster
from repro.sim.events import AllOf


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    stripes_checked: int = 0
    mismatches: List[Tuple[int, int]] = field(default_factory=list)  # (inode, stripe)
    skipped: List[Tuple[int, int]] = field(default_factory=list)
    bytes_read: int = 0
    seconds: float = 0.0

    @property
    def stripes_skipped(self) -> int:
        return len(self.skipped)

    @property
    def clean(self) -> bool:
        return not self.mismatches


def scrub(
    cluster: Cluster,
    targets: Iterable[Tuple[int, int]],
    force: bool = False,
):
    """Scrub the given (inode, stripe) pairs (process body).

    Returns a :class:`ScrubReport`.  Reads are really issued (and costed)
    through the recovery read path on each hosting OSD.
    """
    from repro.recovery.recovery import _ensure_recovery_handlers

    sim = cluster.sim
    cfg = cluster.config
    _ensure_recovery_handlers(cluster)
    report = ScrubReport()
    t0 = sim.now
    # Any node can drive a scrub — a *ring member*, so an elastic scenario
    # that decommissioned osd0 still scrubs from a live, serving node.
    scrubber = cluster.osd_by_name(cluster.ring[0])
    for inode, stripe in targets:
        names = cluster.placement(inode, stripe)
        if any(name in cluster.down_osds for name in names):
            report.skipped.append((inode, stripe))
            continue
        if not force and _stripe_has_pending(cluster, inode, stripe):
            report.skipped.append((inode, stripe))
            continue
        pulls = [
            sim.process(
                scrubber.rpc(
                    names[b], "recovery_read", {"key": (inode, stripe, b)}, nbytes=24
                )
            )
            for b in range(cfg.k + cfg.m)
        ]
        replies = yield AllOf(sim, pulls)
        blocks = [r["data"] for r in replies]
        report.bytes_read += (cfg.k + cfg.m) * cfg.block_size
        expect = cluster.codec.encode(blocks[: cfg.k])
        for p in range(cfg.m):
            if not np.array_equal(blocks[cfg.k + p], expect[p]):
                report.mismatches.append((inode, stripe))
                break
        report.stripes_checked += 1
    report.seconds = sim.now - t0
    return report


def _stripe_has_pending(cluster: Cluster, inode: int, stripe: int) -> bool:
    """True if any member OSD's strategy holds unrecycled updates for the
    stripe.

    Every strategy's pending state lives on stripe members: data-side logs
    on the data-block OSD, parity/delta logs and collector buffers on the
    parity OSDs (TSUE's replica DataLog on the ring neighbour holds copies
    only — the primary tracks the truth).  Best-effort: deltas in flight
    between two log layers for an instant are not visible; the hard
    consistency gates run post-drain where nothing is in flight.
    """
    return any(
        cluster.osd_by_name(name).strategy.stripe_pending(inode, stripe)
        for name in cluster.placement(inode, stripe)
    )
