"""Node-failure injection and recovery.

The paper's recovery protocol (§2.3.2, §4.2): before reconstructing lost
blocks, *all pending log state must be recycled* into data and parity blocks
— deferred parity logs (PL/PLR/PARIX) therefore stall recovery, while TSUE's
real-time recycle leaves almost nothing to drain and FO has no logs at all.
Fig. 8b reports the resulting effective recovery bandwidth.

Reconstruction itself: for every block the failed OSD hosted, a rebuilder
(the ring-successor OSD) pulls the k cheapest surviving blocks of the
stripe, decodes, and writes the lost block sequentially.  Recovery then
*restores* the victim: the rebuilt blocks are installed as its replacement
disk and its serving plane restarts, so post-recovery reads find the data
through normal placement again.

Failure modes (see :func:`fail_osd`):

* ``"crash"`` — fail-stop.  In-flight handlers abort (their callers see
  :class:`~repro.fs.messages.HostDownError` and retry), held stripe locks
  are reclaimed, and the node's block contents are considered lost: only
  :func:`recover_node` / :func:`watch_and_recover` bring it back.  A crash
  can tear an in-flight update (data written, some parity delta never
  applied), which is why recovery ends with a parity *repair* pass over
  every stripe the victim participated in (``repair=True``).
* ``"stop"`` — transient outage (maintenance/network blip).  In-flight
  work completes, new connections block until :func:`restore_osd`, and the
  store survives, so no rebuild is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.cluster import Cluster
from repro.fs.messages import TRANSIENT_RPC_ERRORS
from repro.sim.events import AllOf, AnyOf


@dataclass
class RecoveryResult:
    """Outcome of one node-recovery run."""

    failed_osd: str
    blocks_recovered: int
    bytes_recovered: int
    drain_seconds: float  # log recycle forced before reconstruction
    rebuild_seconds: float
    correct: bool
    # Keys whose rebuilt bytes differed from the post-drain capture (first
    # few, for diagnosis) — non-empty iff ``correct`` is False.
    mismatched: List[Tuple[int, int, int]] = field(default_factory=list)
    # Post-rebuild parity repair (crash tearing heal): stripes rewritten
    # and the time the verification+rewrite pass took.
    parity_repaired: int = 0
    repair_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.drain_seconds + self.rebuild_seconds + self.repair_seconds

    @property
    def bandwidth_mbps(self) -> float:
        """Effective recovery bandwidth in MB/s (includes drain stall).

        Fig. 8b's quantity: reconstruction volume over drain + rebuild time
        (the optional repair pass is method-independent and excluded).
        """
        denom = self.drain_seconds + self.rebuild_seconds
        if denom <= 0:
            return 0.0
        return self.bytes_recovered / denom / (1 << 20)


def fail_osd(cluster: Cluster, name: str, mode: str = "crash") -> None:
    """Take one OSD offline and mark it down cluster-wide.

    ``mode="crash"`` is fail-stop (handlers aborted, stripe locks reclaimed,
    callers failed); ``mode="stop"`` is a transient outage (in-flight work
    completes, callers block until :func:`restore_osd`).  Either way reads
    for its blocks go through the client degraded-read path and updates
    touching its stripes fence until the OSD is back.
    """
    if mode not in ("crash", "stop"):
        raise ValueError(f"unknown failure mode {mode!r}")
    cluster.mark_down(name)
    osd = cluster.osd_by_name(name)
    if mode == "crash":
        osd.crash()
    else:
        osd.stop()


def restore_osd(cluster: Cluster, name: str) -> None:
    """Bring a transiently-stopped OSD back and lift its fences.

    For crash-mode failures use :func:`recover_node` instead — a crashed
    node's blocks must be rebuilt, not just re-served.
    """
    osd = cluster.osd_by_name(name)
    osd.restart()
    cluster.mds.last_heartbeat[name] = cluster.sim.now
    cluster.mark_up(name)


def watch_and_recover(
    cluster: Cluster,
    check_interval: float = 0.5,
    stop=None,
    parallelism: int = 8,
    verify: bool = True,
    repair: bool = True,
):
    """MDS-driven recovery loop (a process body).

    Boot per-OSD heartbeats (``osd.start_heartbeat(...)``), start this
    watcher, and it recovers *every* OSD whose heartbeat lapses — including
    failures that arrive while an earlier rebuild is still in progress,
    which are picked up on the next pass instead of being silently dropped.
    Runs until the ``stop`` event fires (forever when ``stop`` is None) and
    returns the list of :class:`RecoveryResult`.
    """
    sim = cluster.sim
    results: List[RecoveryResult] = []
    # Give every OSD a chance to heartbeat at least once.
    yield sim.timeout(check_interval)
    while stop is None or not stop.triggered:
        failed = [
            name
            for name in cluster.mds.failed_osds()
            if name in cluster.down_osds
        ]
        if failed:
            result = yield from recover_node_proc(
                cluster,
                failed[0],
                parallelism=parallelism,
                verify=verify,
                repair=repair,
            )
            results.append(result)
            continue  # re-check immediately: more may have failed meanwhile
        if stop is not None:
            yield AnyOf(sim, [sim.timeout(check_interval), stop])
        else:
            yield sim.timeout(check_interval)
    return results


def recover_node(
    cluster: Cluster,
    failed_osd: str,
    parallelism: int = 8,
    verify: bool = True,
    restore: bool = True,
    repair: bool = False,
) -> RecoveryResult:
    """Fail one OSD and reconstruct everything it hosted (driver form).

    Runs the cluster's simulator until recovery completes and returns the
    result; use :func:`recover_node_proc` to embed recovery inside a
    larger simulation instead.
    """
    sim = cluster.sim
    proc = sim.process(
        recover_node_proc(
            cluster, failed_osd, parallelism, verify, restore=restore, repair=repair
        ),
        name="recover-node",
    )
    _run_until(sim, proc)
    return proc.value


def recover_node_proc(
    cluster: Cluster,
    failed_osd: str,
    parallelism: int = 8,
    verify: bool = True,
    restore: bool = True,
    repair: bool = False,
):
    """Process body: drain logs, reconstruct, restore, optionally repair.

    Phases:

    1. **Drain** — every pending log entry cluster-wide recycles into data
       and parity blocks (§2.3.2).  The failed node's DataLog/DeltaLog
       contents survive in their replicas on ring neighbours, so the drain
       can always complete; we model the replica-driven drain by reviving
       the serving plane of *every* down OSD for the duration (a reviver
       process also catches OSDs that crash mid-recovery, so drain traffic
       retrying against them unblocks).  Block contents of the victim are
       still dropped below before reconstruction.
    2. **Rebuild** — the ring-successor pulls k live blocks per lost block
       (excluding every currently-down OSD, so an m>1 double fault still
       decodes), reconstructs, and writes sequentially.  Sources that crash
       mid-pull are dropped and the pull retried against the survivors.
    3. **Restore** — the rebuilt blocks are installed as the victim's
       replacement disk, its serving plane/heartbeat restart, and its
       down-mark clears, so placement-directed reads work again.
    4. **Repair** (``repair=True``; failure scenarios use this) — every
       stripe the victim participated in is read back and its parity
       re-encoded from data where it mismatches.  A crash can tear an
       in-flight update (data written, one parity's delta lost with the
       dead node); the client retries the update, but its recomputed delta
       is zero once the data bytes match, so only re-encoding heals the
       stripe.  Runs *before* the down-mark clears, while the stripes are
       still write-fenced.
    """
    # Imported here: repro.harness.fig8 imports this module, and the
    # harness package imports fig8 — a top-level import would be circular.
    from repro.harness.experiment import drain_all

    sim = cluster.sim
    victim = cluster.osd_by_name(failed_osd)
    reviver_stop = sim.event(name="reviver-stop")
    reviver = sim.process(
        _revive_down_serving_planes(cluster, reviver_stop),
        name=f"revive-for-drain:{failed_osd}",
    )
    rebuilder = cluster.osd_by_name(cluster.replica_of(failed_osd))

    try:
        # --------------------------------------------------------------
        # Phase 1: recycle all logs (consistency requirement, §2.3.2).
        # --------------------------------------------------------------
        t_start = sim.now
        yield from drain_all(cluster)
        # Capture post-drain truth (what reconstruction must reproduce),
        # then drop the victim's blocks.
        truth = {key: blk.copy() for key, blk in victim.store.blocks.items()}
        victim.store.blocks.clear()
        drain_seconds = sim.now - t_start

        # --------------------------------------------------------------
        # Phase 2: reconstruct, `parallelism` blocks at a time.
        # --------------------------------------------------------------
        t_rebuild = sim.now
        keys = sorted(truth.keys())
        k = cluster.config.k
        m = cluster.config.m

        def rebuild_one(key):
            inode, stripe, lost_index = key
            names = cluster.placement(inode, stripe)
            while True:
                # Pull the k lowest-indexed blocks that are actually live —
                # a second fault during rebuild must not be used as (or
                # wedge on) a source.
                sources = [
                    (b, names[b])
                    for b in range(k + m)
                    if names[b] != failed_osd and names[b] not in cluster.down_osds
                ][:k]
                if len(sources) < k:
                    raise RuntimeError(
                        f"stripe ({inode},{stripe}) has only {len(sources)} "
                        f"live blocks; unrecoverable with k={k}"
                    )
                pulls = [
                    sim.process(
                        rebuilder.rpc(
                            osd_name,
                            "recovery_read",
                            {"key": (inode, stripe, b)},
                            nbytes=24,
                        )
                    )
                    for b, osd_name in sources
                ]
                try:
                    replies = yield AllOf(sim, pulls)
                    break
                except TRANSIENT_RPC_ERRORS:
                    # A source died mid-pull (or a lossy link ate a pull);
                    # re-plan against the survivors.
                    yield sim.timeout(1e-3)
            shards = {b: rep["data"] for (b, _), rep in zip(sources, replies)}
            rebuilt = cluster.codec.reconstruct(shards, [lost_index])[lost_index]
            yield from rebuilder.store.write_block(key, rebuilt, pattern="seq")
            return key, rebuilt

        results: Dict[Tuple[int, int, int], np.ndarray] = {}

        def driver():
            pending = list(keys)
            while pending:
                batch = pending[:parallelism]
                del pending[:parallelism]
                procs = [sim.process(rebuild_one(key)) for key in batch]
                done = yield AllOf(sim, procs)
                for key, blk in done:
                    results[key] = blk

        _ensure_recovery_handlers(cluster)
        yield from driver()
        rebuild_seconds = sim.now - t_rebuild

        mismatched: List[Tuple[int, int, int]] = []
        if verify:
            for key, expect in sorted(truth.items()):
                got = results.get(key)
                if got is None or not np.array_equal(got, expect):
                    mismatched.append(key)
                    if len(mismatched) >= 8:
                        break

        # --------------------------------------------------------------
        # Phase 3: restore — the rebuilt blocks become the victim's
        # replacement disk and it rejoins the cluster.
        # --------------------------------------------------------------
        if restore:
            # The rebuilt blocks become the victim's replacement disk; the
            # rebuilder's staging copies are dropped so it does not hold
            # stale duplicates of keys placement maps to the victim (they
            # would poison its own truth capture if it failed later).
            for key, blk in results.items():
                victim.store.install(key, blk)
                rebuilder.store.blocks.pop(key, None)
            victim.strategy.on_rebuilt()
            victim.restart()

        # --------------------------------------------------------------
        # Phase 4: parity repair over every stripe the victim touches.
        # --------------------------------------------------------------
        repaired = 0
        repair_seconds = 0.0
        if repair:
            t_repair = sim.now
            repaired = yield from _repair_stripes(cluster, failed_osd)
            repair_seconds = sim.now - t_repair

        if restore:
            cluster.mds.last_heartbeat[failed_osd] = sim.now
            cluster.mark_up(failed_osd)
    finally:
        if not reviver_stop.triggered:
            reviver_stop.succeed()
        yield reviver

    return RecoveryResult(
        failed_osd=failed_osd,
        blocks_recovered=len(keys),
        bytes_recovered=len(keys) * cluster.config.block_size,
        drain_seconds=drain_seconds,
        rebuild_seconds=rebuild_seconds,
        correct=not mismatched,
        mismatched=mismatched,
        parity_repaired=repaired,
        repair_seconds=repair_seconds,
    )


def _revive_down_serving_planes(cluster: Cluster, stop):
    """Keep down OSDs' serving planes alive while recovery drains.

    §4.2: a dead node's log contents survive in replicas on ring
    neighbours, so drain traffic addressed to it can always be absorbed.
    We model that by (re)booting the dispatcher + recyclers of every
    *crashed* OSD currently marked down — including ones that crash
    *during* an ongoing recovery, which would otherwise deadlock the drain
    barrier.  Stop-mode (transient) outages are left alone: their contract
    is that callers block until :func:`restore_osd`, and their logs are
    merely unreachable, not lost.  The revived OSDs stay marked down:
    clients keep fencing and degrading around them.
    """
    sim = cluster.sim
    while not stop.triggered:
        for name in sorted(cluster.down_osds):
            osd = cluster.osd_by_name(name)
            if osd.crashed and not osd.running:
                osd.start()
                osd.strategy.start_background()
        yield AnyOf(sim, [sim.timeout(1e-3), stop])


def _repair_stripes(cluster: Cluster, failed_osd: str):
    """Verify-and-rewrite parity of every stripe ``failed_osd`` is in.

    Reads all k+m blocks of each such stripe (costed, via the recovery
    read path), re-encodes, and rewrites any parity block that disagrees.
    Returns the number of stripes repaired (generator).
    """
    sim = cluster.sim
    cfg = cluster.config
    span = cfg.k * cfg.block_size
    _ensure_recovery_handlers(cluster)
    reader = cluster.osd_by_name(cluster.replica_of(failed_osd))
    repaired = 0
    for inode, meta in sorted(cluster.mds.files.items()):
        for stripe in range(meta.size // span):
            names = cluster.placement(inode, stripe)
            if failed_osd not in names:
                continue
            while True:
                try:
                    pulls = [
                        sim.process(
                            reader.rpc(
                                names[b], "recovery_read",
                                {"key": (inode, stripe, b)}, nbytes=24,
                            )
                        )
                        for b in range(cfg.k + cfg.m)
                    ]
                    replies = yield AllOf(sim, pulls)
                    blocks = [rep["data"] for rep in replies]
                    expect = cluster.codec.encode(blocks[: cfg.k])
                    bad = [
                        p for p in range(cfg.m)
                        if not np.array_equal(blocks[cfg.k + p], expect[p])
                    ]
                    if bad:
                        writes = [
                            sim.process(
                                reader.rpc(
                                    names[cfg.k + p],
                                    "recovery_write",
                                    {"key": (inode, stripe, cfg.k + p),
                                     "data": expect[p]},
                                    nbytes=cfg.block_size,
                                )
                            )
                            for p in bad
                        ]
                        yield AllOf(sim, writes)
                        repaired += 1
                    break
                except TRANSIENT_RPC_ERRORS:
                    # A member crashed mid-repair.  The reviver (running for
                    # the whole recovery) brings its serving plane back, so
                    # retry this stripe; the fresh crash victim gets its own
                    # drain + repair pass when it is recovered next.
                    yield sim.timeout(1e-3)
    return repaired


def _ensure_recovery_handlers(cluster: Cluster) -> None:
    """Install whole-block recovery read/write RPCs on every OSD (idempotent)."""
    for osd in cluster.osds:
        if "recovery_read" in osd.handlers:
            continue

        def handler(msg, osd=osd):
            key = msg.payload["key"]
            size = cluster.config.block_size
            data = yield from osd.store.read_range(key, 0, size, pattern="seq")
            # Snapshot: the payload crosses reply-transfer yields and is
            # held by the rebuilder while survivors keep serving writes.
            return {"data": data.copy()}, size

        def w_handler(msg, osd=osd):
            yield from osd.store.write_block(
                msg.payload["key"], msg.payload["data"], pattern="seq"
            )
            return {"ok": True}, 8

        osd.register("recovery_read", handler)
        osd.register("recovery_write", w_handler)


def _run_until(sim, proc) -> None:
    if not sim.run_until_fired(proc):
        raise RuntimeError("recovery step deadlocked")
    proc.value  # re-raise any failure
