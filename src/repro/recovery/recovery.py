"""Node-failure recovery.

The paper's recovery protocol (§2.3.2, §4.2): before reconstructing lost
blocks, *all pending log state must be recycled* into data and parity blocks
— deferred parity logs (PL/PLR/PARIX) therefore stall recovery, while TSUE's
real-time recycle leaves almost nothing to drain and FO has no logs at all.
Fig. 8b reports the resulting effective recovery bandwidth.

Reconstruction itself: for every block the failed OSD hosted, a rebuilder
(the ring-successor OSD) pulls the k cheapest surviving blocks of the
stripe, decodes, and writes the lost block sequentially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster import Cluster
from repro.sim.events import AllOf


@dataclass
class RecoveryResult:
    """Outcome of one node-recovery run."""

    failed_osd: str
    blocks_recovered: int
    bytes_recovered: int
    drain_seconds: float  # log recycle forced before reconstruction
    rebuild_seconds: float
    correct: bool

    @property
    def total_seconds(self) -> float:
        return self.drain_seconds + self.rebuild_seconds

    @property
    def bandwidth_mbps(self) -> float:
        """Effective recovery bandwidth in MB/s (includes drain stall)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.bytes_recovered / self.total_seconds / (1 << 20)


def fail_osd(cluster: Cluster, name: str) -> None:
    """Take one OSD offline: it stops serving RPCs and heartbeating.

    Reads for its blocks must then go through the client's degraded-read
    path until :func:`recover_node` rebuilds them.
    """
    cluster.osd_by_name(name).stop()


def watch_and_recover(cluster: Cluster, check_interval: float = 0.5):
    """MDS-driven recovery loop (a process body).

    Boot per-OSD heartbeats (``sim.process(osd.heartbeat_loop())``), start
    this watcher, and it recovers the first OSD whose heartbeat lapses.
    Returns the :class:`RecoveryResult`.
    """
    sim = cluster.sim
    # Give every OSD a chance to heartbeat at least once.
    yield sim.timeout(check_interval)
    while True:
        failed = cluster.mds.failed_osds()
        if failed:
            result = yield from recover_node_proc(cluster, failed[0])
            return result
        yield sim.timeout(check_interval)


def recover_node(
    cluster: Cluster,
    failed_osd: str,
    parallelism: int = 8,
    verify: bool = True,
) -> RecoveryResult:
    """Fail one OSD and reconstruct everything it hosted (driver form).

    Runs the cluster's simulator until recovery completes and returns the
    result; use :func:`recover_node_proc` to embed recovery inside a
    larger simulation instead.
    """
    sim = cluster.sim
    proc = sim.process(
        recover_node_proc(cluster, failed_osd, parallelism, verify),
        name="recover-node",
    )
    _run_until(sim, proc)
    return proc.value


def recover_node_proc(
    cluster: Cluster,
    failed_osd: str,
    parallelism: int = 8,
    verify: bool = True,
):
    """Process body: drain logs, then reconstruct the failed OSD's blocks.

    The failed OSD's stored blocks are captured for verification, then
    dropped to emulate the loss.
    """
    # Imported here: repro.harness.fig8 imports this module, and the
    # harness package imports fig8 — a top-level import would be circular.
    from repro.harness.experiment import drain_all

    sim = cluster.sim
    victim = cluster.osd_by_name(failed_osd)
    # §4.2: the failed node's DataLog/DeltaLog contents survive in their
    # replicas on ring neighbours, so the pre-recovery drain can always
    # complete.  We model the replica-driven drain by reviving the victim's
    # serving loop for the drain phase (the replica holds identical bytes
    # on an identical device, so the cost is equivalent); its *block*
    # contents are still dropped below before reconstruction.
    if not victim.running:
        victim.start()
        victim.strategy.start_background()
    lost: Dict[Tuple[int, int, int], np.ndarray] = {
        key: blk.copy() for key, blk in victim.store.blocks.items()
    }
    rebuilder = cluster.osd_by_name(cluster.replica_of(failed_osd))

    # ------------------------------------------------------------------
    # Phase 1: recycle all logs (consistency requirement, §2.3.2).
    # ------------------------------------------------------------------
    t_start = sim.now
    yield from drain_all(cluster)
    # Capture post-drain truth (what reconstruction must reproduce), then
    # drop the victim's blocks.
    truth = {key: blk.copy() for key, blk in victim.store.blocks.items()}
    victim.store.blocks.clear()
    drain_seconds = sim.now - t_start

    # ------------------------------------------------------------------
    # Phase 2: reconstruct, `parallelism` blocks at a time.
    # ------------------------------------------------------------------
    t_rebuild = sim.now
    keys = sorted(truth.keys())
    k = cluster.config.k
    m = cluster.config.m

    def rebuild_one(key):
        inode, stripe, lost_index = key
        names = cluster.placement(inode, stripe)
        # Pull the k lowest-indexed surviving blocks of the stripe.
        sources = [
            (b, names[b]) for b in range(k + m) if names[b] != failed_osd
        ][:k]
        pulls = [
            sim.process(
                rebuilder.rpc(
                    osd_name,
                    "recovery_read",
                    {"key": (inode, stripe, b)},
                    nbytes=24,
                )
            )
            for b, osd_name in sources
        ]
        replies = yield AllOf(sim, pulls)
        shards = {b: rep["data"] for (b, _), rep in zip(sources, replies)}
        rebuilt = cluster.codec.reconstruct(shards, [lost_index])[lost_index]
        yield from rebuilder.store.write_block(key, rebuilt, pattern="seq")
        return key, rebuilt

    results: Dict[Tuple[int, int, int], np.ndarray] = {}

    def driver():
        pending = list(keys)
        while pending:
            batch = pending[:parallelism]
            del pending[:parallelism]
            procs = [sim.process(rebuild_one(key)) for key in batch]
            done = yield AllOf(sim, procs)
            for key, blk in done:
                results[key] = blk

    _ensure_recovery_handlers(cluster)
    yield from driver()
    rebuild_seconds = sim.now - t_rebuild

    correct = True
    if verify:
        for key, expect in truth.items():
            got = results.get(key)
            if got is None or not np.array_equal(got, expect):
                correct = False
                break

    return RecoveryResult(
        failed_osd=failed_osd,
        blocks_recovered=len(keys),
        bytes_recovered=len(keys) * cluster.config.block_size,
        drain_seconds=drain_seconds,
        rebuild_seconds=rebuild_seconds,
        correct=correct,
    )


def _ensure_recovery_handlers(cluster: Cluster) -> None:
    """Install the whole-block recovery read RPC on every OSD (idempotent)."""
    for osd in cluster.osds:
        if "recovery_read" in osd.handlers:
            continue

        def handler(msg, osd=osd):
            key = msg.payload["key"]
            size = cluster.config.block_size
            data = yield from osd.store.read_range(key, 0, size, pattern="seq")
            return {"data": data}, size

        osd.register("recovery_read", handler)


def _run_until(sim, proc) -> None:
    while not proc.fired and sim.peek() != float("inf"):
        sim.step()
    if not proc.fired:
        raise RuntimeError("recovery step deadlocked")
    proc.value  # re-raise any failure
