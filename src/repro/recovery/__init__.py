"""Failure injection and data recovery (paper §3.1.2, §4.2, Fig. 8b)."""

from repro.recovery.rebalance import (
    RebalanceResult,
    StripeMigrationError,
    rebalance_join,
    rebalance_leave,
)
from repro.recovery.recovery import (
    RecoveryResult,
    fail_osd,
    recover_node,
    recover_node_proc,
    restore_osd,
    watch_and_recover,
)
from repro.recovery.scrub import ScrubReport, scrub

__all__ = [
    "RebalanceResult",
    "RecoveryResult",
    "ScrubReport",
    "StripeMigrationError",
    "fail_osd",
    "rebalance_join",
    "rebalance_leave",
    "recover_node",
    "recover_node_proc",
    "restore_osd",
    "scrub",
    "watch_and_recover",
]
