"""Elastic-membership stripe rebalance (join/decommission under live load).

Placement is a hash-rotated ring over the *current membership*
(:meth:`repro.cluster.Cluster.placement`), so changing the member count
moves nearly every stripe.  A rebalance is therefore a whole-cluster
migration protocol, not a per-node trickle:

1. **Fence** — every stripe whose placement changes under the new ring is
   added to ``cluster.migrating_stripes``; clients hold *new* foreground
   ops on those stripes (:meth:`Client._migration_wait`), exactly as they
   fence writes on down members.
2. **Quiesce** — wait until the in-flight-op refcount
   (``cluster.note_ops_begin/end``) drains to zero on every moving stripe,
   so no update straddles the placement flip.
3. **Drain** — recycle all pending log state cluster-wide
   (:func:`repro.harness.experiment.drain_all`): blocks must hold the
   post-log truth before they are copied to new homes.
4. **Gate (pre-copy)** — every moving stripe must be parity-consistent
   under the *old* placement, else :class:`StripeMigrationError`.
5. **Copy** — for every block whose home changes, the new home pulls the
   block from the old home through the costed recovery read path and
   writes it sequentially (``parallelism`` blocks at a time).  Sparse
   (never-materialised) blocks are skipped: an all-zero block is all-zero
   on the new home too.
6. **Flip** — :meth:`Cluster.commit_ring` installs the new membership in
   one non-yielding step; stale copies are dropped from old homes and
   every ring member's strategy gets the ``on_rebuilt()`` placement-change
   hook.
7. **Gate (post-flip) + unfence** — every migrated stripe must be
   parity-consistent under the *new* placement before the fence lifts.

The protocol above trades availability for simplicity: moving stripes
are write-fenced for the whole copy (measured and reported as the
foreground dip in elastic scenarios).  Passing ``rebalance_mbps > 0``
selects the **QoS rebalance** instead (:func:`_rebalance_qos`): the same
seven steps run *per stripe* — fence one stripe, quiesce it, drain, gate,
copy its blocks, flip it via ``cluster.placement_overrides``, gate again,
unfence — so at any instant at most one stripe is write-fenced, and the
copy is paced by a token-bucket bandwidth throttle with adaptive
parallelism when a copy source's link is degraded (the XX-Net
multi-connection pattern).  The final :meth:`Cluster.commit_ring` installs
the new membership and clears the per-stripe overrides it subsumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.fs.messages import TRANSIENT_RPC_ERRORS
from repro.sim.events import AllOf

# Quiesce poll cadence / budget: same scale as the client fence poll —
# cheap against millisecond-scale scenario horizons, and a hard bound so
# a wedged foreground op surfaces as an error instead of a silent hang.
QUIESCE_POLL_S = 5e-4
QUIESCE_BUDGET_S = 60.0


class StripeMigrationError(RuntimeError):
    """A rebalance found (or would have created) an inconsistent stripe."""


@dataclass
class RebalanceResult:
    """Outcome of one membership change (scenario metrics read this)."""

    kind: str  # "join" | "decommission"
    osd: str
    stripes_total: int = 0      # stripes examined
    stripes_migrated: int = 0   # stripes whose placement changed
    blocks_moved: int = 0       # materialised blocks actually copied
    bytes_moved: int = 0
    quiesce_seconds: float = 0.0
    drain_seconds: float = 0.0
    copy_seconds: float = 0.0
    t_start: float = 0.0
    t_end: float = 0.0
    # QoS rebalance only (zero on the classic whole-set protocol).
    throttle_mbps: float = 0.0    # token-bucket rate the copy was paced to
    throttle_wait_s: float = 0.0  # virtual time spent waiting for tokens

    @property
    def total_seconds(self) -> float:
        return self.t_end - self.t_start

    @property
    def mb_moved(self) -> float:
        return self.bytes_moved / (1 << 20)

    @property
    def throttle_utilization(self) -> float:
        """Achieved copy rate over the granted rate (0 when unthrottled)."""
        if self.throttle_mbps <= 0.0 or self.copy_seconds <= 0.0:
            return 0.0
        return self.mb_moved / (self.throttle_mbps * self.copy_seconds)


def rebalance_join(cluster, osd_name: str, rebalance_mbps: float = 0.0):
    """Commit a provisioned OSD (see ``Cluster.add_osd``) into the ring.

    Generator; returns a :class:`RebalanceResult`.  ``rebalance_mbps > 0``
    selects the per-stripe QoS protocol with a token-bucket copy throttle.
    """
    if osd_name in cluster.ring:
        raise ValueError(f"{osd_name!r} is already a ring member")
    new_ring = list(cluster.ring) + [osd_name]
    if rebalance_mbps > 0.0:
        result = yield from _rebalance_qos(
            cluster, "join", osd_name, new_ring, rebalance_mbps
        )
    else:
        result = yield from _rebalance(cluster, "join", osd_name, new_ring)
    return result


def rebalance_leave(cluster, osd_name: str, rebalance_mbps: float = 0.0):
    """Migrate an OSD's placement away, shrink the ring, stop the node.

    Generator; returns a :class:`RebalanceResult`.  ``rebalance_mbps > 0``
    selects the per-stripe QoS protocol with a token-bucket copy throttle.
    """
    if osd_name not in cluster.ring:
        raise ValueError(f"{osd_name!r} is not a ring member")
    cfg = cluster.config
    if len(cluster.ring) - 1 < cfg.k + cfg.m:
        raise StripeMigrationError(
            f"cannot decommission {osd_name!r}: the ring would shrink below "
            f"k+m={cfg.k + cfg.m} members"
        )
    if osd_name in cluster.down_osds:
        raise StripeMigrationError(
            f"cannot decommission {osd_name!r} while it is down: its blocks "
            "must be recovered first"
        )
    new_ring = [n for n in cluster.ring if n != osd_name]
    if rebalance_mbps > 0.0:
        result = yield from _rebalance_qos(
            cluster, "decommission", osd_name, new_ring, rebalance_mbps
        )
    else:
        result = yield from _rebalance(cluster, "decommission", osd_name, new_ring)
    # The leaver is out of placement and fully copied away: take it out of
    # service in the same instant as the flip (no yields since commit).
    victim = cluster.osd_by_name(osd_name)
    victim.strategy.stop_background()
    victim.stop()
    return result


def _rebalance(cluster, kind: str, osd_name: str, new_ring: List[str]):
    # Deferred: harness imports cluster/recovery packages at module level.
    from repro.harness.experiment import drain_all

    sim = cluster.sim
    cfg = cluster.config
    span = cfg.k * cfg.block_size
    result = RebalanceResult(kind=kind, osd=osd_name, t_start=sim.now)

    # ------------------------------------------------------------------
    # Plan: every (inode, stripe) whose member list changes, with the
    # per-block (old_home, new_home) pairs that differ.
    # ------------------------------------------------------------------
    moved: List[Tuple[int, int, List[str], List[str]]] = []
    for inode, meta in sorted(cluster.mds.files.items()):
        for stripe in range(meta.size // span):
            old_names = cluster.placement(inode, stripe)
            new_names = cluster.placement_on(new_ring, inode, stripe)
            result.stripes_total += 1
            if old_names != new_names:
                moved.append((inode, stripe, old_names, new_names))
    result.stripes_migrated = len(moved)
    moved_keys = [(inode, stripe) for inode, stripe, _, _ in moved]

    # ------------------------------------------------------------------
    # Fence + quiesce.
    # ------------------------------------------------------------------
    cluster.migrating_stripes.update(moved_keys)
    try:
        t0 = sim.now
        deadline = sim.now + QUIESCE_BUDGET_S
        while not cluster.stripes_quiesced(moved_keys):
            if sim.now >= deadline:
                raise StripeMigrationError(
                    f"{kind} of {osd_name!r}: foreground ops on migrating "
                    f"stripes did not quiesce within {QUIESCE_BUDGET_S}s"
                )
            yield sim.timeout(QUIESCE_POLL_S)
        result.quiesce_seconds = sim.now - t0

        # --------------------------------------------------------------
        # Drain all log state, then gate on the old placement.
        # --------------------------------------------------------------
        t0 = sim.now
        yield from drain_all(cluster)
        result.drain_seconds = sim.now - t0
        for inode, stripe in moved_keys:
            if not cluster.stripe_consistent(inode, stripe):
                raise StripeMigrationError(
                    f"stripe ({inode},{stripe}) inconsistent before {kind} "
                    f"migration — refusing to copy corruption"
                )

        # --------------------------------------------------------------
        # Copy every relocated, materialised block to its new home.
        # --------------------------------------------------------------
        from repro.recovery.recovery import _ensure_recovery_handlers

        _ensure_recovery_handlers(cluster)
        t0 = sim.now
        copies: List[Tuple[Tuple[int, int, int], str, str]] = []
        for inode, stripe, old_names, new_names in moved:
            for b in range(cfg.k + cfg.m):
                src, dst = old_names[b], new_names[b]
                if src == dst:
                    continue
                key = (inode, stripe, b)
                if cluster.osd_by_name(src).store.peek(key) is None:
                    continue  # sparse: all-zero everywhere by construction
                copies.append((key, src, dst))

        def move_one(key, src, dst):
            dst_osd = cluster.osd_by_name(dst)
            while True:
                try:
                    rep = yield from dst_osd.rpc(
                        src, "recovery_read", {"key": key}, nbytes=24
                    )
                    break
                except TRANSIENT_RPC_ERRORS:
                    yield sim.timeout(1e-3)
            yield from dst_osd.store.write_block(key, rep["data"], pattern="seq")

        parallelism = 8
        pending = list(copies)
        while pending:
            batch = pending[:parallelism]
            del pending[:parallelism]
            procs = [sim.process(move_one(*item)) for item in batch]
            yield AllOf(sim, procs)
        result.blocks_moved = len(copies)
        result.bytes_moved = len(copies) * cfg.block_size
        result.copy_seconds = sim.now - t0

        # --------------------------------------------------------------
        # Flip, clean up stale homes, notify strategies, gate post-flip.
        # Everything below is non-yielding: no foreground op can observe
        # a half-committed membership.
        # --------------------------------------------------------------
        cluster.commit_ring(new_ring)
        for key, src, _dst in copies:
            cluster.osd_by_name(src).store.blocks.pop(key, None)
        for name in new_ring:
            cluster.osd_by_name(name).strategy.on_rebuilt()
        for inode, stripe in moved_keys:
            if not cluster.stripe_consistent(inode, stripe):
                raise StripeMigrationError(
                    f"stripe ({inode},{stripe}) inconsistent after {kind} "
                    f"migration"
                )
    finally:
        cluster.migrating_stripes.difference_update(moved_keys)
    result.t_end = sim.now
    return result


# QoS copy parallelism: conservative by default so foreground traffic keeps
# most of the fabric; doubled (multi-connection, the XX-Net pattern) when a
# copy source's link is degraded, so per-connection slowdown is compensated
# with width instead of letting the token bucket sit idle.
QOS_BASE_PARALLELISM = 4


def _rebalance_qos(
    cluster, kind: str, osd_name: str, new_ring: List[str], rebalance_mbps: float
):
    """Per-stripe fence-copy-flip rebalance under a bandwidth throttle.

    Same plan, gates and copy path as :func:`_rebalance`, restructured so
    only *one* stripe is fenced at a time: quiesce + drain + pre-copy gate,
    copy that stripe's relocated blocks under the token bucket, install a
    ``cluster.placement_overrides`` entry as the flip, gate post-flip, and
    unfence — foreground ops on every other stripe keep flowing the whole
    time.  The final ``commit_ring`` replaces the accumulated overrides
    with the new membership in one non-yielding step.

    The token bucket grants ``rebalance_mbps`` MiB of copy traffic per
    virtual second: each batch waits for its grant before issuing, and the
    accumulated wait is reported as ``throttle_wait_s`` (utilization =
    achieved rate / granted rate).  Deterministic: the grant clock is pure
    float arithmetic off ``sim.now``, no entropy.
    """
    from repro.harness.experiment import drain_all
    from repro.recovery.recovery import _ensure_recovery_handlers

    sim = cluster.sim
    cfg = cluster.config
    span = cfg.k * cfg.block_size
    result = RebalanceResult(
        kind=kind, osd=osd_name, t_start=sim.now,
        throttle_mbps=float(rebalance_mbps),
    )

    # Plan: identical to the classic protocol.
    moved: List[Tuple[int, int, List[str], List[str]]] = []
    for inode, meta in sorted(cluster.mds.files.items()):
        for stripe in range(meta.size // span):
            old_names = cluster.placement(inode, stripe)
            new_names = cluster.placement_on(new_ring, inode, stripe)
            result.stripes_total += 1
            if old_names != new_names:
                moved.append((inode, stripe, old_names, new_names))
    result.stripes_migrated = len(moved)

    _ensure_recovery_handlers(cluster)
    # Drains below run while foreground ops keep flowing on unfenced
    # stripes, so recycles can race appends; latch the cluster into
    # drain-safe mode for the rest of the run (later drains must sweep
    # any entries such a race stranded).
    cluster.live_drain = True
    rate = float(rebalance_mbps) * float(1 << 20)  # bytes / virtual second
    next_grant = sim.now

    def move_one(key, src, dst):
        dst_osd = cluster.osd_by_name(dst)
        rep = yield from dst_osd.rpc_with_retry(
            src, "recovery_read", {"key": key}, nbytes=24, interval=1e-3
        )
        yield from dst_osd.store.write_block(key, rep["data"], pattern="seq")

    try:
        for inode, stripe, old_names, new_names in moved:
            skey = (inode, stripe)
            # Fence + quiesce THIS stripe only.
            cluster.migrating_stripes.add(skey)
            t0 = sim.now
            deadline = sim.now + QUIESCE_BUDGET_S
            while not cluster.stripes_quiesced((skey,)):
                if sim.now >= deadline:
                    raise StripeMigrationError(
                        f"{kind} of {osd_name!r}: foreground ops on stripe "
                        f"{skey} did not quiesce within {QUIESCE_BUDGET_S}s"
                    )
                yield sim.timeout(QUIESCE_POLL_S)
            result.quiesce_seconds += sim.now - t0

            # Drain pending log state so blocks hold the post-log truth,
            # then gate under the old placement.
            t0 = sim.now
            yield from drain_all(cluster)
            result.drain_seconds += sim.now - t0
            if not cluster.stripe_consistent(inode, stripe):
                raise StripeMigrationError(
                    f"stripe ({inode},{stripe}) inconsistent before {kind} "
                    f"migration — refusing to copy corruption"
                )

            # Copy this stripe's relocated, materialised blocks under the
            # token bucket.
            t0 = sim.now
            copies: List[Tuple[Tuple[int, int, int], str, str]] = []
            for b in range(cfg.k + cfg.m):
                src, dst = old_names[b], new_names[b]
                if src == dst:
                    continue
                key = (inode, stripe, b)
                if cluster.osd_by_name(src).store.peek(key) is None:
                    continue  # sparse: all-zero everywhere by construction
                copies.append((key, src, dst))
            parallelism = QOS_BASE_PARALLELISM
            if any(
                cluster.fabric.link_state(src) is not None
                for _key, src, _dst in copies
            ):
                parallelism *= 2
            pending = list(copies)
            while pending:
                batch = pending[:parallelism]
                del pending[:parallelism]
                if rate > 0.0:
                    start = next_grant if next_grant > sim.now else sim.now
                    if start > sim.now:
                        result.throttle_wait_s += start - sim.now
                        yield start - sim.now
                    next_grant = start + (len(batch) * cfg.block_size) / rate
                procs = [sim.process(move_one(*item)) for item in batch]
                yield AllOf(sim, procs)
            result.blocks_moved += len(copies)
            result.bytes_moved += len(copies) * cfg.block_size
            result.copy_seconds += sim.now - t0

            # Flip THIS stripe (non-yielding): overrides route placement to
            # the new homes, stale source copies are pruned, and the
            # post-flip gate runs under the override before the fence lifts.
            cluster.placement_overrides[skey] = list(new_names)
            for key, src, _dst in copies:
                cluster.osd_by_name(src).store.blocks.pop(key, None)
            if not cluster.stripe_consistent(inode, stripe):
                raise StripeMigrationError(
                    f"stripe ({inode},{stripe}) inconsistent after {kind} "
                    f"migration"
                )
            cluster.migrating_stripes.discard(skey)

        # Every stripe is flipped: install the membership (clears the
        # overrides it subsumes).  No on_rebuilt() here: each per-stripe
        # flip already ran against a fenced, quiesced and drained stripe,
        # so this commit is placement-neutral bookkeeping — and unfenced
        # stripes kept updating through the copy windows, so the wholesale
        # reset would wipe their live speculation/log state (pending PARIX
        # deltas, for one) mid-flow.
        cluster.commit_ring(new_ring)
    finally:
        cluster.migrating_stripes.difference_update(
            (inode, stripe) for inode, stripe, _, _ in moved
        )
    result.t_end = sim.now
    return result
