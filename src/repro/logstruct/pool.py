"""The FIFO log pool (§3.2).

One active unit accepts appends at the queue tail; filled units are sealed
RECYCLABLE and handed to the recycler; RECYCLED units linger as read cache
and are reactivated (oldest first) when the appender needs a fresh unit.
The pool grows on demand up to ``max_units`` and can shrink back to
``min_units`` when idle — the elasticity of §3.2.2.

The pool is simulator-agnostic: the engine wires ``seal_listener`` to wake
its recycler and handles the "no unit available" (memory quota) case by
waiting until a recycle completes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Hashable, List, Optional, Tuple

import numpy as np

from repro.dataplane import as_payload
from repro.logstruct.states import UnitState
from repro.logstruct.unit import ENTRY_HEADER_BYTES, LogUnit


class LogPool:
    """A FIFO queue of :class:`LogUnit` with one active appender."""

    def __init__(
        self,
        unit_capacity: int = 16 * 1024 * 1024,
        min_units: int = 2,
        max_units: int = 4,
        policy: str = "overwrite",
        name: str = "pool",
        keep_raw: bool = False,
    ):
        if not 1 <= min_units <= max_units:
            raise ValueError(
                f"need 1 <= min_units <= max_units, got {min_units}, {max_units}"
            )
        self.unit_capacity = unit_capacity
        self.min_units = min_units
        self.max_units = max_units
        self.policy = policy
        self.name = name
        self.keep_raw = keep_raw
        self._next_id = 0
        # Queue order: oldest (head) .. newest; the active unit is the tail.
        self.units: Deque[LogUnit] = deque()
        self.seal_listener: Optional[Callable[[LogUnit], None]] = None
        self.peak_units = 0
        self.total_seals = 0
        for _ in range(min_units):
            self._new_unit()
        self._active: Optional[LogUnit] = self.units[-1] if self.units else None
        # All but the designated active start RECYCLED so they are reusable
        # read-cache slots rather than phantom appenders.
        for u in list(self.units)[:-1]:
            u.state = UnitState.RECYCLED

    # ------------------------------------------------------------------
    def _new_unit(self) -> LogUnit:
        unit = LogUnit(
            self.unit_capacity,
            policy=self.policy,
            unit_id=self._next_id,
            keep_raw=self.keep_raw,
        )
        self._next_id += 1
        self.units.append(unit)
        self.peak_units = max(self.peak_units, len(self.units))
        return unit

    @property
    def active(self) -> Optional[LogUnit]:
        return self._active

    @property
    def unit_count(self) -> int:
        return len(self.units)

    @property
    def memory_bytes(self) -> int:
        """Current memory footprint: all live units' capacity."""
        return len(self.units) * self.unit_capacity

    @property
    def peak_memory_bytes(self) -> int:
        return self.peak_units * self.unit_capacity

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append(
        self, key: Hashable, offset: int, data: np.ndarray, now: float
    ) -> bool:
        """Append one record, rotating the active unit when it fills.

        Records larger than one unit are split across consecutive units
        (adjacent chunks re-coalesce in the per-unit indexes).  Returns
        False when the pool is at quota with no reusable unit — the caller
        must wait for a recycle to complete and retry (this is the
        back-pressure that bounds memory, §3.2.1).
        """
        data = as_payload(data)
        max_chunk = self.unit_capacity - ENTRY_HEADER_BYTES
        if data.size > max_chunk:
            pos = 0
            while pos < data.size:
                chunk = data[pos : pos + max_chunk]
                if not self._append_one(key, offset + pos, chunk, now):
                    if pos:
                        raise RuntimeError(
                            "pool quota exhausted mid-split; caller must size "
                            "units above the back-pressure retry granularity"
                        )
                    return False
                pos += chunk.size
            return True
        return self._append_one(key, offset, data, now)

    def _append_one(
        self, key: Hashable, offset: int, data: np.ndarray, now: float
    ) -> bool:
        if self._active is None:
            if not self._activate_next(now):
                return False
        assert self._active is not None
        if self._active.append(key, offset, data, now):
            return True
        # Unit full: seal and rotate.
        self._seal_active(now)
        if not self._activate_next(now):
            return False
        ok = self._active.append(key, offset, data, now)
        if not ok:
            raise ValueError(
                f"record of {data.size}B cannot fit an empty unit of "
                f"{self.unit_capacity}B"
            )
        return True

    def flush_active(self, now: float) -> Optional[LogUnit]:
        """Seal a non-empty active unit early (real-time recycle deadline)."""
        if self._active is not None and self._active.used > 0:
            unit = self._active
            self._seal_active(now)
            self._activate_next(now)
            return unit
        return None

    def _seal_active(self, now: float) -> None:
        assert self._active is not None
        unit = self._active
        unit.seal(now)
        self.total_seals += 1
        self._active = None
        if self.seal_listener is not None:
            self.seal_listener(unit)

    def _activate_next(self, now: float) -> bool:
        # Prefer the oldest RECYCLED unit (FIFO reuse frees its cache last).
        for unit in self.units:
            if unit.state is UnitState.RECYCLED:
                unit.reactivate()
                # Move to tail: the active unit is always newest.
                self.units.remove(unit)
                self.units.append(unit)
                self._active = unit
                return True
        if len(self.units) < self.max_units:
            self._active = self._new_unit()
            return True
        return False

    # ------------------------------------------------------------------
    # recycling support
    # ------------------------------------------------------------------
    def recyclable_units(self) -> List[LogUnit]:
        return [u for u in self.units if u.state is UnitState.RECYCLABLE]

    def has_pending_recycle(self) -> bool:
        return any(
            u.state in (UnitState.RECYCLABLE, UnitState.RECYCLING) for u in self.units
        )

    def shrink(self) -> int:
        """Drop RECYCLED units beyond ``min_units``; returns units freed."""
        freed = 0
        while len(self.units) > self.min_units:
            victim = None
            for unit in self.units:
                if unit.state is UnitState.RECYCLED and unit is not self._active:
                    victim = unit
                    break
            if victim is None:
                break
            self.units.remove(victim)
            freed += 1
        return freed

    # ------------------------------------------------------------------
    # read cache (§3.3.3)
    # ------------------------------------------------------------------
    def cache_lookup(
        self, key: Hashable, offset: int, length: int
    ) -> Optional[np.ndarray]:
        """Serve a read fully from log state, newest unit first."""
        for unit in reversed(self.units):
            hit = unit.lookup(key, offset, length)
            if hit is not None:
                return hit
        return None

    def cache_lookup_partial(
        self, key: Hashable, offset: int, length: int
    ) -> List[Tuple[int, np.ndarray]]:
        """Newest-wins overlay fragments intersecting the range.

        Fragments from newer units shadow older ones; the returned list is
        already de-overlapped and offset-sorted.
        """
        covered: List[Tuple[int, np.ndarray]] = []
        have = np.zeros(length, dtype=bool)
        for unit in reversed(self.units):
            for a, frag in unit.lookup_partial(key, offset, length):
                rel_a = a - offset
                rel_b = rel_a + frag.size
                mask = ~have[rel_a:rel_b]
                if not mask.any():
                    continue
                # Split the fragment into its not-yet-covered runs.
                idx = np.flatnonzero(mask)
                breaks = np.flatnonzero(np.diff(idx) > 1)
                starts = np.concatenate(([0], breaks + 1))
                ends = np.concatenate((breaks, [idx.size - 1]))
                for s_i, e_i in zip(starts, ends):
                    lo = int(idx[s_i])
                    hi = int(idx[e_i]) + 1
                    covered.append((a + lo, frag[lo:hi].copy()))
                have[rel_a:rel_b] = True
        covered.sort(key=lambda t: t[0])
        return covered
