"""One log unit: a fixed-size append region with its own index.

Log space accounting is append-only: every accepted append consumes
``header + payload`` bytes of the unit's capacity regardless of how much the
index later merges — that is what fills units up and drives pool rotation.
The *index* tracks the merged view that the recycler will actually process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

import numpy as np

from repro.dataplane import as_payload
from repro.logstruct.index import TwoLevelIndex
from repro.logstruct.states import UnitState

ENTRY_HEADER_BYTES = 32


@dataclass
class LogEntry:
    """Bookkeeping for one raw append (kept for residency accounting).

    ``data`` is populated only in ``keep_raw`` mode, where the recycler
    processes raw entries one by one (the no-locality ablation of Fig. 7).
    """

    key: Hashable
    offset: int
    length: int
    append_time: float
    data: Optional[np.ndarray] = None


class LogUnit:
    """A fixed-capacity append log with a two-level index."""

    def __init__(
        self,
        capacity: int,
        policy: str = "overwrite",
        unit_id: int = 0,
        keep_raw: bool = False,
    ):
        if capacity <= ENTRY_HEADER_BYTES:
            raise ValueError(f"capacity {capacity} too small")
        self.capacity = capacity
        self.unit_id = unit_id
        self.keep_raw = keep_raw
        self.state = UnitState.EMPTY
        self.index = TwoLevelIndex(policy=policy)
        self.used = 0
        self.entries: List[LogEntry] = []
        self.first_append_time: Optional[float] = None
        self.sealed_time: Optional[float] = None
        self.recycle_start_time: Optional[float] = None
        self.recycle_done_time: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def policy(self) -> str:
        return self.index.policy

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def fits(self, nbytes: int) -> bool:
        return self.used + nbytes + ENTRY_HEADER_BYTES <= self.capacity

    def append(
        self, key: Hashable, offset: int, data: np.ndarray, now: float
    ) -> bool:
        """Append one record; False (and no change) if it would overflow."""
        if self.state is not UnitState.EMPTY:
            raise RuntimeError(f"append to unit in state {self.state}")
        data = as_payload(data)
        if not self.fits(data.size):
            return False
        self.index.insert(key, offset, data)
        self.used += data.size + ENTRY_HEADER_BYTES
        raw = data.copy() if self.keep_raw else None
        self.entries.append(LogEntry(key, offset, int(data.size), now, raw))
        if self.first_append_time is None:
            self.first_append_time = now
        return True

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def seal(self, now: float) -> None:
        """EMPTY -> RECYCLABLE (the unit filled up or was force-flushed)."""
        if self.state is not UnitState.EMPTY:
            raise RuntimeError(f"seal from state {self.state}")
        self.state = UnitState.RECYCLABLE
        self.sealed_time = now

    def start_recycle(self, now: float) -> None:
        if self.state is not UnitState.RECYCLABLE:
            raise RuntimeError(f"start_recycle from state {self.state}")
        self.state = UnitState.RECYCLING
        self.recycle_start_time = now

    def finish_recycle(self, now: float) -> None:
        if self.state is not UnitState.RECYCLING:
            raise RuntimeError(f"finish_recycle from state {self.state}")
        self.state = UnitState.RECYCLED
        self.recycle_done_time = now

    def reactivate(self) -> None:
        """RECYCLED -> EMPTY: drop index/payload, become the new appender."""
        if self.state is not UnitState.RECYCLED:
            raise RuntimeError(f"reactivate from state {self.state}")
        self.index.clear()
        self.entries.clear()
        self.used = 0
        self.first_append_time = None
        self.sealed_time = None
        self.recycle_start_time = None
        self.recycle_done_time = None
        self.state = UnitState.EMPTY

    # ------------------------------------------------------------------
    # residency accounting (Table 2)
    # ------------------------------------------------------------------
    def mean_buffer_time(self) -> float:
        """Mean wait between an entry's append and recycle start."""
        if not self.entries or self.recycle_start_time is None:
            return 0.0
        waits = [max(0.0, self.recycle_start_time - e.append_time) for e in self.entries]
        return sum(waits) / len(waits)

    # ------------------------------------------------------------------
    # read-cache service
    # ------------------------------------------------------------------
    def lookup(self, key: Hashable, offset: int, length: int) -> Optional[np.ndarray]:
        return self.index.lookup(key, offset, length)

    def lookup_partial(
        self, key: Hashable, offset: int, length: int
    ) -> List[Tuple[int, np.ndarray]]:
        return self.index.lookup_partial(key, offset, length)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<LogUnit #{self.unit_id} {self.state.value} "
            f"{self.used}/{self.capacity}B {self.index.block_count} blocks>"
        )
