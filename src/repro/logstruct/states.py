"""Log-unit lifecycle states (Fig. 3 of the paper)."""

from __future__ import annotations

import enum


class UnitState(enum.Enum):
    """EMPTY -> (active appends) -> RECYCLABLE -> RECYCLING -> RECYCLED.

    A RECYCLED unit keeps its index and payload, serving as a read cache,
    until the pool re-activates it as EMPTY for new appends.
    """

    EMPTY = "empty"
    RECYCLABLE = "recyclable"
    RECYCLING = "recycling"
    RECYCLED = "recycled"

    def can_append(self) -> bool:
        return self is UnitState.EMPTY

    def can_serve_reads(self) -> bool:
        # Every state with a live index can serve reads; EMPTY units are the
        # active appenders and also serve what they already hold.
        return True
