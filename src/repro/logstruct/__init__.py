"""TSUE's log machinery: two-level index, log units, FIFO log pools.

These are *functional* data structures — they hold real bytes and really
merge them — so the locality numbers the simulator reports are measured, not
assumed:

* :class:`~repro.logstruct.index.TwoLevelIndex` — level 1: hash map over
  blocks (with a bitmap for fast miss rejection); level 2: offset-sorted,
  non-overlapping, coalesced segment lists per block.  Two merge policies:
  ``"overwrite"`` (DataLog: newest data wins, Eq. 4) and ``"xor"``
  (DeltaLog/ParityLog: same-offset deltas fold together, Eq. 3).
* :class:`~repro.logstruct.unit.LogUnit` — one fixed-size append region with
  its own index, lifecycle state and residency timestamps.
* :class:`~repro.logstruct.pool.LogPool` — the FIFO queue of units: one
  active appender, concurrent recycling, elastic 2..max sizing, recycled
  units doubling as a read cache.
"""

from repro.logstruct.index import Segment, TwoLevelIndex
from repro.logstruct.intervals import IntervalSet
from repro.logstruct.pool import LogPool
from repro.logstruct.states import UnitState
from repro.logstruct.unit import LogEntry, LogUnit

__all__ = [
    "IntervalSet",
    "LogEntry",
    "LogPool",
    "LogUnit",
    "Segment",
    "TwoLevelIndex",
    "UnitState",
]
