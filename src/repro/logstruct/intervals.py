"""A byte-range interval set (sorted, merged, half-open).

Used by PARIX's speculation tracking: "has every byte of this update range
already shipped its original value?" needs byte-granular coverage, not page
granularity — a page can be partially covered by earlier updates.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Tuple


class IntervalSet:
    """A set of disjoint, sorted, half-open ``[start, end)`` intervals."""

    __slots__ = ("_ivs",)

    def __init__(self) -> None:
        self._ivs: List[Tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._ivs)

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def intervals(self) -> List[Tuple[int, int]]:
        return list(self._ivs)

    @property
    def covered_bytes(self) -> int:
        return sum(e - s for s, e in self._ivs)

    def add(self, start: int, end: int) -> None:
        """Insert ``[start, end)``, merging with any touching intervals."""
        if start >= end:
            return
        ivs = self._ivs
        # Find insertion window: all intervals overlapping-or-adjacent.
        lo = bisect_right(ivs, (start,)) - 1
        if lo >= 0 and ivs[lo][1] >= start:
            start = min(start, ivs[lo][0])
        else:
            lo += 1
        hi = lo
        while hi < len(ivs) and ivs[hi][0] <= end:
            end = max(end, ivs[hi][1])
            hi += 1
        ivs[lo:hi] = [(start, end)]

    def covers(self, start: int, end: int) -> bool:
        """True iff every byte of ``[start, end)`` is in the set."""
        if start >= end:
            return True
        i = bisect_right(self._ivs, (start,)) - 1
        if i < 0:
            i = 0
        for s, e in self._ivs[i:]:
            if s > start:
                return False
            if e >= end:
                return True
            if e > start:
                start = e
        return False

    def uncovered(self, start: int, end: int) -> List[Tuple[int, int]]:
        """The sub-ranges of ``[start, end)`` not in the set."""
        out: List[Tuple[int, int]] = []
        pos = start
        i = bisect_right(self._ivs, (start,)) - 1
        if i < 0:
            i = 0
        for s, e in self._ivs[i:]:
            if s >= end:
                break
            if e <= pos:
                continue
            if s > pos:
                out.append((pos, min(s, end)))
            pos = max(pos, e)
            if pos >= end:
                break
        if pos < end:
            out.append((pos, end))
        return out
