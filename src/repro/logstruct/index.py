"""The two-level index (§3.3.1).

Level 1 is a hash map keyed by block identity, guarded by a bitmap over a
hash of the key so that misses are rejected without touching the map.
Level 2 is a per-block list of non-overlapping, offset-sorted, coalesced
segments holding real payload bytes.

Two merge policies implement the paper's two data kinds:

* ``"overwrite"`` — DataLog semantics (Eq. 4): the newest bytes for a
  location supersede older ones, so N same-place updates cost one recycle.
* ``"xor"`` — DeltaLog/ParityLog semantics (Eq. 3): deltas for the same
  location fold together by XOR.

In both policies, adjacent segments concatenate, converting many small
random requests into fewer large sequential ones — the access-granularity
win the paper measures.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

import numpy as np

from repro.dataplane import GhostExtent, as_payload

BITMAP_BITS = 4096


class Segment:
    """One contiguous byte range pending for a block.

    A plain slotted class with ``length``/``end`` precomputed: segment
    extents never change after construction (in-place merges only rewrite
    bytes), and the properties the old dataclass computed per access were
    measurably hot in ``_merge_into``/``lookup_partial`` loops.

    ``owned`` records whether the payload buffer is private to the index:
    zero-copy inserts wrap the *caller's* array (``owned=False`` — the
    caller may retain it, e.g. a client holding its update payload for
    crash retries), while merge rebuilds allocate fresh buffers
    (``owned=True``).  The contained-update fold copies-on-first-write:
    a not-owned buffer is snapshotted once, then folded in place, so a
    handed-over array is never mutated no matter who else references it.
    """

    __slots__ = ("offset", "data", "length", "end", "owned")

    def __init__(self, offset: int, data: np.ndarray, owned: bool = False):
        data = as_payload(data)
        if data.ndim != 1:
            raise ValueError("segment payload must be 1-D bytes")
        self.offset = offset
        self.data = data
        self.length = int(data.size)
        self.end = offset + self.length
        self.owned = owned

    def __lt__(self, other: "Segment") -> bool:
        return self.offset < other.offset

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Segment(offset={self.offset}, length={self.length})"


@dataclass
class IndexStats:
    """Raw-vs-merged accounting: the measured locality gain."""

    raw_inserts: int = 0
    raw_bytes: int = 0

    def reset(self) -> None:
        self.raw_inserts = 0
        self.raw_bytes = 0


class TwoLevelIndex:
    """Block hash map -> offset-sorted coalesced segment list."""

    def __init__(self, policy: str = "overwrite", inplace_merge: bool = True):
        if policy not in ("overwrite", "xor"):
            raise ValueError(f"policy must be 'overwrite' or 'xor', got {policy!r}")
        self.policy = policy
        # Contained updates normally fold into the existing segment buffer
        # in place (no rebuild; copy-on-first-write protects caller-owned
        # arrays — see Segment.owned).  Owners whose protocol depends on
        # the historical always-rebuild semantics — PARIX ships one
        # original/latest array to every parity OSD and refresh-inserts
        # ranges contained in live original segments, pairing lookups and
        # folds across yields — pass ``inplace_merge=False`` to keep
        # merge behaviour byte-for-byte historical.
        self.inplace_merge = inplace_merge
        self._blocks: Dict[Hashable, List[Segment]] = {}
        self._bitmap = np.zeros(BITMAP_BITS, dtype=bool)
        self.stats = IndexStats()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def _bit(self, key: Hashable) -> int:
        return hash(key) % BITMAP_BITS

    def maybe_contains(self, key: Hashable) -> bool:
        """Bitmap pre-check: False guarantees absence (no map probe)."""
        return bool(self._bitmap[self._bit(key)])

    def __contains__(self, key: Hashable) -> bool:
        return self.maybe_contains(key) and key in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def segment_count(self) -> int:
        return sum(len(v) for v in self._blocks.values())

    @property
    def merged_bytes(self) -> int:
        """Bytes the recycler will actually move (post-merge)."""
        return sum(seg.length for v in self._blocks.values() for seg in v)

    # ------------------------------------------------------------------
    # insertion with merge
    # ------------------------------------------------------------------
    def insert(self, key: Hashable, offset: int, data: np.ndarray) -> None:
        """Record ``data`` at ``offset`` of block ``key`` under the policy.

        Ownership transfer (zero-copy): the index keeps a *reference* to
        ``data`` — callers hand over payloads they will never mutate again
        (RPC payload arrays, freshly computed deltas).  The historical
        defensive copy per insert was the single largest allocation source
        on the log append path.
        """
        data = as_payload(data)
        if offset < 0:
            raise ValueError("negative offset")
        if data.size == 0:
            return
        self.stats.raw_inserts += 1
        self.stats.raw_bytes += int(data.size)
        self._bitmap[self._bit(key)] = True
        segs = self._blocks.get(key)
        if segs is None:
            self._blocks[key] = [Segment(offset, data)]
            return
        # Ascending-offset streams append past the last segment constantly;
        # skip the bisect entirely when the new range starts strictly after
        # everything (strictly: an exactly-adjacent range must coalesce).
        if offset > segs[-1].end:
            segs.append(Segment(offset, data))
            return
        self._merge_into(segs, Segment(offset, data))

    def _merge_into(self, segs: List[Segment], new: Segment) -> None:
        # Candidates: every existing segment overlapping or exactly adjacent
        # to [new.offset, new.end].
        starts = [s.offset for s in segs]
        lo = bisect_left(starts, new.offset)
        # The segment before lo may still reach into the new range.
        if lo > 0 and segs[lo - 1].end >= new.offset:
            lo -= 1
        hi = lo
        while hi < len(segs) and segs[hi].offset <= new.end:
            hi += 1
        if lo == hi:
            segs.insert(lo, new)
            return
        if hi - lo == 1 and self.inplace_merge:
            s = segs[lo]
            if s.offset <= new.offset and s.end >= new.end:
                # Contained-update fast path (the same hot location written
                # again — the dominant case under temporal locality): fold
                # the bytes into the existing segment in place.  No buffer
                # rebuild, no interval union, no list splice.  Copy-on-
                # first-write: a buffer the index does not own (a zero-copy
                # caller array — possibly retained by the client for crash
                # retries, possibly read-only) is snapshotted exactly once,
                # so handed-over arrays are never mutated; after that the
                # private buffer folds in place for free.  Views handed out
                # by earlier lookups alias the private buffer, so the
                # payload contract is BlockStore-like: fragments are valid
                # until the next insert touching the block; read paths
                # patch them into their own buffers before yielding.
                if not s.owned:
                    s.data = s.data.copy()
                    s.owned = True
                a, b = new.offset - s.offset, new.end - s.offset
                if self.policy == "overwrite":
                    s.data[a:b] = new.data
                else:
                    s.data[a:b] ^= new.data
                return
        group = segs[lo:hi]
        start = min(new.offset, group[0].offset)
        end = max(new.end, max(s.end for s in group))
        # Merge-buffer allocation dispatches on the *payload type* of what
        # is already in the index (a non-generator materialization point —
        # plane-discipline clean): ghost segments rebuild into a ghost
        # buffer whose slice/assign/xor ops are pure size bookkeeping.
        if type(group[0].data) is GhostExtent:
            buf = GhostExtent(end - start)
        else:
            buf = np.zeros(end - start, dtype=np.uint8)
        for s in group:
            buf[s.offset - start : s.end - start] = s.data
        nlo, nhi = new.offset - start, new.end - start
        if self.policy == "overwrite":
            buf[nlo:nhi] = new.data
        else:  # xor
            buf[nlo:nhi] ^= new.data
        # The union of overlapping-or-adjacent ranges can still contain
        # interior gaps (two old segments bridged only partially by the new
        # one); split on uncovered runs to keep segments truly contiguous.
        # The runs come straight from the interval union of the (sorted)
        # group plus the new range — no boolean bitmap scan needed.
        # Views, not copies: ``buf`` is freshly built and exclusively owned
        # by the merged segments (a single full-coverage run is the common
        # case, where the copy was pure waste).
        pieces = _interval_union(group, nlo, nhi, start)
        # ``buf`` is freshly built and exclusively the merged segments',
        # so they own their (disjoint) views of it.
        merged = [Segment(start + a, buf[a:b], owned=True) for a, b in pieces]
        segs[lo:hi] = merged

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def segments(self, key: Hashable) -> List[Segment]:
        """The merged, offset-sorted pending segments of one block."""
        return list(self._blocks.get(key, ()))

    def blocks(self) -> Iterator[Hashable]:
        return iter(self._blocks.keys())

    def lookup(self, key: Hashable, offset: int, length: int) -> Optional[np.ndarray]:
        """Return the bytes of ``[offset, offset+length)`` iff fully present."""
        if not self.maybe_contains(key):
            return None
        segs = self._blocks.get(key)
        if not segs:
            return None
        end = offset + length
        starts = [s.offset for s in segs]
        i = bisect_right(starts, offset) - 1
        if i < 0:
            return None
        s = segs[i]
        if s.offset <= offset and s.end >= end:
            # A read-only view, valid until the next insert touching this
            # block (contained updates fold into segment buffers in place —
            # same contract as BlockStore views: derive synchronously or
            # ``.copy()``).  In-place mutation by a caller raises instead
            # of silently corrupting the log.
            view = s.data[offset - s.offset : end - s.offset]
            view.flags.writeable = False
            return view
        return None

    def lookup_partial(
        self, key: Hashable, offset: int, length: int
    ) -> List[Tuple[int, np.ndarray]]:
        """All cached sub-ranges intersecting ``[offset, offset+length)``.

        Returns (absolute_offset, bytes) pairs — the read path overlays these
        on disk data.  The byte arrays are views into live segment payloads
        (valid until the next insert touching the block); callers copy
        *from* them (patching into their own read buffers) and must not
        mutate them.
        """
        segs = self._blocks.get(key)
        if not segs:
            return []
        end = offset + length
        out: List[Tuple[int, np.ndarray]] = []
        for s in segs:
            if s.end <= offset:
                continue
            if s.offset >= end:
                break
            a = max(offset, s.offset)
            b = min(end, s.end)
            frag = s.data[a - s.offset : b - s.offset]
            frag.flags.writeable = False
            out.append((a, frag))
        return out

    def pop_block(self, key: Hashable) -> List[Segment]:
        """Remove and return one block's segments (recycler consumption)."""
        return self._blocks.pop(key, [])

    def clear(self) -> None:
        self._blocks.clear()
        self._bitmap[:] = False
        self.stats.reset()


def _interval_union(
    group: List[Segment], nlo: int, nhi: int, base: int
) -> List[Tuple[int, int]]:
    """Coalesced [a, b) runs covered by ``group`` plus the new range.

    ``group`` is offset-sorted; the new range ``[nlo, nhi)`` is relative to
    ``base`` (as are the returned runs).  Adjacent-or-overlapping intervals
    merge into one run, exactly like maximal True-runs over the equivalent
    coverage bitmap — without materialising the bitmap.
    """
    runs: List[Tuple[int, int]] = []
    placed = False
    for s in group:
        a, b = s.offset - base, s.end - base
        if not placed and nlo <= a:
            runs.append((nlo, nhi))
            placed = True
        runs.append((a, b))
    if not placed:
        runs.append((nlo, nhi))
    # Single sorted-by-start sweep; group was sorted, and the new range was
    # inserted at its sorted position above.
    out: List[Tuple[int, int]] = [runs[0]]
    for a, b in runs[1:]:
        la, lb = out[-1]
        if a <= lb:
            if b > lb:
                out[-1] = (la, b)
        else:
            out.append((a, b))
    return out


def _covered_runs(covered: np.ndarray) -> List[Tuple[int, int]]:
    """Maximal [a, b) runs of True in a boolean array (reference impl).

    Kept for tests: :func:`_interval_union` must agree with this on the
    equivalent coverage bitmap.
    """
    idx = np.flatnonzero(covered)
    if idx.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [idx.size - 1]))
    return [(int(idx[a]), int(idx[b]) + 1) for a, b in zip(starts, ends)]
