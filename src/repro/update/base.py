"""The strategy interface every update method implements.

An OSD constructs one strategy instance at boot.  The strategy:

* serves the synchronous path: :meth:`on_update` runs inside the OSD's
  ``update`` RPC handler and returns when the client may be acked;
* optionally runs background processes (log recyclers) between
  :meth:`start_background` / :meth:`stop_background`;
* can overlay logged-but-unrecycled data onto reads via
  :meth:`read_overlay` (log-as-read-cache, §3.3.3);
* must be able to :meth:`drain` — push every pending log entry into data
  and parity blocks — so recovery and consistency checks can run.

Helper generators shared by the in-place family (FO/PL/PLR/CoRD) live here.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

BlockKey = Tuple[int, int, int]


class UpdateStrategy:
    """Base class; concrete methods override the hooks they need."""

    name = "base"

    # True for the in-place (read-modify-write) family, whose update paths
    # must hold the hosting OSD's per-stripe lock; log-structured methods
    # leave it False because their parity maintenance is commutative
    # XOR-delta appends, safe at any pipelining depth without locks.
    serializes_stripes = False

    def __init__(self, osd):
        self.osd = osd
        self.sim = osd.sim
        self.cluster = osd.cluster
        self.register_handlers()

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def register_handlers(self) -> None:
        """Register strategy-specific RPC kinds on the hosting OSD."""

    def on_update(self, key: BlockKey, offset: int, data: np.ndarray):
        """Synchronous update path (generator).  Ack when it returns."""
        raise NotImplementedError
        yield  # pragma: no cover

    def start_background(self) -> None:
        """Boot recycler processes (called after the cluster starts)."""

    def stop_background(self) -> None:
        """Stop recycler processes (called before teardown)."""

    def drain(self, phase: int = 0):
        """Flush pending log state (generator).

        Strategies with multi-hop pipelines are drained in phases by the
        harness: phase 0, then 1, then 2 across *all* OSDs, so cross-OSD
        forwards from phase N land before phase N+1 runs.  Single-hop
        strategies only need phase 0.
        """
        if False:  # pragma: no cover - default is a no-op generator
            yield

    DRAIN_PHASES = 1

    def read_overlay(
        self, key: BlockKey, offset: int, length: int
    ) -> Optional[List[Tuple[int, np.ndarray]]]:
        """Logged fragments overlapping a read, or None if not applicable."""
        return None

    def stripe_pending(self, inode: int, stripe: int) -> bool:
        """True if this strategy holds unrecycled state for the stripe.

        Scoped per stripe so the scrubber can skip exactly the stripes
        whose parity legitimately lags, instead of skipping everything
        whenever anything is pending.  Strategies without logs (FO) keep
        the default False.
        """
        return False

    def on_rebuilt(self) -> None:
        """Called after this OSD's blocks were reconstructed from survivors.

        Rebuilt blocks equal re-encoded live data, not whatever this node
        held pre-crash — strategies whose in-memory state encodes
        assumptions about on-disk content (PARIX's original images) must
        invalidate it here.  Log state proper needs no reset: recovery
        drains every log before reconstruction and the node's stripes stay
        write-fenced until it rejoins.
        """

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def serialize_stripe(self, key: BlockKey, body):
        """Run generator ``body`` holding the per-stripe update lock.

        The lock is the hosting OSD's :class:`~repro.sim.resources.KeyedLock`
        keyed by ``(inode, stripe)``, so two pipelined updates touching the
        same stripe *on this OSD* — i.e. the same data block — execute their
        read-modify-write critical sections strictly FIFO.  Updates to other
        blocks of the same stripe live on other OSDs and stay concurrent,
        which is safe: their parity contributions are commutative XOR
        deltas; only the data-block read-modify-write (and PARIX's
        original-capture) races.

        The holder token is the running simulation process (stable across
        nesting), so an accidental double-wrap on the same stripe — a
        guaranteed self-deadlock — trips KeyedLock's reentrancy check
        instead of hanging the simulation silently.
        """
        stripe = (key[0], key[1])
        locks = self.osd.stripe_locks
        holder = self.sim.active_process or body
        if not locks.try_acquire(stripe, holder):
            yield locks.acquire(stripe, holder)
        try:
            result = yield from body
        finally:
            locks.release(stripe, holder)
        return result

    def rmw_delta(self, key: BlockKey, offset: int, data: np.ndarray):
        """The in-place family's front half: read old, write new, delta.

        Two small random I/Os on the data block — precisely the cost TSUE
        removes from the critical path.
        """
        old = yield from self.osd.store.read_range(key, offset, data.size, pattern="rand")
        # ``old`` is a zero-copy view of the live block: the delta must be
        # computed *before* the write overwrites those bytes (no yield in
        # between, so no other process can intervene either).
        delta = old ^ data
        yield from self.osd.store.write_range(key, offset, data, pattern="rand")
        return delta

    def parity_targets(self, key: BlockKey) -> List[Tuple[int, str]]:
        """(parity_index, osd_name) for each parity block of the stripe."""
        inode, stripe, _ = key
        names = self.cluster.placement(inode, stripe)
        k = self.cluster.config.k
        return [(p, names[k + p]) for p in range(self.cluster.config.m)]

    def parity_key(self, key: BlockKey, parity_index: int) -> BlockKey:
        inode, stripe, _ = key
        return (inode, stripe, self.cluster.config.k + parity_index)

    def apply_parity_delta(self, parity_block_key: BlockKey, offset: int, pdelta: np.ndarray):
        """Random RMW of a parity range with a ready parity delta.

        Uses the commutative XOR primitive so concurrent applications to
        the same parity range never lose an update.
        """
        yield from self.osd.store.xor_range(
            parity_block_key, offset, pdelta, pattern="rand"
        )
