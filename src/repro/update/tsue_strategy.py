"""TSUE as an :class:`UpdateStrategy` (front end + handler wiring).

The synchronous path is exactly Fig. 2's front end: append the raw update to
the local DataLog (one sequential write), forward it to the ring-neighbour
replica DataLog, ack.  Everything else lives in :class:`repro.tsue.TSUEEngine`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.events import AllOf
from repro.tsue.engine import DATA, DELTA, PARITY, TSUEConfig, TSUEEngine
from repro.update.base import BlockKey, UpdateStrategy


class TSUEStrategy(UpdateStrategy):
    """The paper's two-stage update method."""

    name = "tsue"
    DRAIN_PHASES = 3

    def __init__(self, osd, config: Optional[TSUEConfig] = None, **kwargs):
        if config is None:
            config = TSUEConfig(**kwargs)
        elif kwargs:
            raise ValueError("pass either a TSUEConfig or keyword overrides")
        self.engine = TSUEEngine(osd, config)
        super().__init__(osd)

    # ------------------------------------------------------------------
    def register_handlers(self) -> None:
        self.osd.register("tsue_replica", self._h_replica)
        self.osd.register("tsue_delta", self._h_delta)
        self.osd.register("tsue_parity", self._h_parity)

    def start_background(self) -> None:
        self.engine.start()

    def stop_background(self) -> None:
        self.engine.stop()

    # ------------------------------------------------------------------
    # front end
    # ------------------------------------------------------------------
    def on_update(self, key: BlockKey, offset: int, data: np.ndarray):
        t0 = self.sim.now
        yield from self.engine.append_datalog(key, offset, data)
        n_replicas = self.engine.config.replicas - 1
        if n_replicas == 1:
            # The common geometry (2 DataLog copies): one replica forward,
            # run inline — no child process, no AllOf barrier.  The target
            # is the live ring successor, so elastic membership changes
            # retarget replica traffic automatically.
            yield from self.osd.rpc_delivered(
                self.cluster.replica_of(self.osd.name),
                "tsue_replica",
                {"key": key, "offset": offset, "data": data},
                nbytes=int(data.size),
            )
        elif n_replicas > 1:
            calls = []
            for r in range(1, n_replicas + 1):
                dst = self.cluster.ring_neighbor(self.osd.name, r)
                calls.append(
                    self.sim.process(
                        self.osd.rpc_delivered(
                            dst,
                            "tsue_replica",
                            {"key": key, "offset": offset, "data": data},
                            nbytes=int(data.size),
                        )
                    )
                )
            yield AllOf(self.sim, calls)
        self.engine.residency.record_append(DATA, self.sim.now - t0)

    # ------------------------------------------------------------------
    # handlers (back-end hops)
    # ------------------------------------------------------------------
    def _h_replica(self, msg):
        p = msg.payload
        yield from self.engine.append_replica_datalog(p["key"], p["offset"], p["data"])
        return {"ok": True}, 8

    def _h_delta(self, msg):
        p = msg.payload
        t0 = self.sim.now
        yield from self.engine.append_deltalog(p["key"], p["entries"], p["primary"])
        if p["primary"]:
            self.engine.residency.record_append(DELTA, self.sim.now - t0)
        return {"ok": True}, 8

    def _h_parity(self, msg):
        p = msg.payload
        t0 = self.sim.now
        yield from self.engine.append_paritylog(p["pkey"], p["entries"])
        self.engine.residency.record_append(PARITY, self.sim.now - t0)
        return {"ok": True}, 8

    # ------------------------------------------------------------------
    def read_overlay(self, key, offset, length):
        return self.engine.read_overlay(key, offset, length)

    def stripe_pending(self, inode: int, stripe: int) -> bool:
        return self.engine.stripe_pending(inode, stripe)

    def drain(self, phase: int = 0):
        layer = (DATA, DELTA, PARITY)[phase]
        yield from self.engine.drain_layer(layer)
