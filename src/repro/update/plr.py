"""PLR — Parity Logging with Reserved space (Chan et al., FAST'14; §2.2).

Parity deltas land in a reserved region *adjacent to each parity block*.
Appends therefore scatter across as many on-device locations as there are
active parity blocks — random writes, not a sequential log — and when a
block's reserved region fills, it must be recycled *synchronously* before
the append completes, stalling the update.  Both effects are why the paper
measures PLR as the slowest method on SSDs (3.9x-10.1x behind TSUE).

The recycle itself is cheaper than PL's: deltas sit next to the parity
block, so the log read is sequential and the parity RMW is a single
adjacent read+write per merged segment.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.logstruct.index import TwoLevelIndex
from repro.sim.events import AllOf
from repro.update.base import BlockKey, UpdateStrategy

PLR_HEADER = 32


class PLRStrategy(UpdateStrategy):
    """Reserved-space parity logging with synchronous region recycle."""

    name = "plr"
    serializes_stripes = True

    def __init__(self, osd, reserve_bytes: int = 6 * 1024):
        self.reserve_bytes = reserve_bytes
        self.log_index = TwoLevelIndex("xor")
        self.region_used: Dict[BlockKey, int] = {}
        self.region_entries: Dict[BlockKey, List[Tuple[int, int]]] = {}
        # Regions popped by an in-flight recycle but not yet folded into
        # their parity chunk: stripe_pending must keep reporting them, or a
        # concurrent scrub would gate a half-recycled stripe.
        self._inflight_regions: Dict[BlockKey, int] = {}
        self.sync_recycles = 0
        super().__init__(osd)

    def register_handlers(self) -> None:
        self.osd.register("plr_append", self._h_append)

    # ------------------------------------------------------------------
    def on_update(self, key: BlockKey, offset: int, data: np.ndarray):
        # Lock the data-block read-modify-write only; reserved-region
        # appends fold into an XOR index, commutative in arrival order.
        delta = yield from self.serialize_stripe(
            key, self.rmw_delta(key, offset, data)
        )
        calls = []
        for p, osd_name in self.parity_targets(key):
            pdelta = self.cluster.codec.parity_delta(key[2], p, delta)
            calls.append(
                self.sim.process(
                    self.osd.rpc_delivered(
                        osd_name,
                        "plr_append",
                        {
                            "pkey": self.parity_key(key, p),
                            "offset": offset,
                            "pdelta": pdelta,
                        },
                        nbytes=int(pdelta.size),
                    )
                )
            )
        if calls:
            yield AllOf(self.sim, calls)

    def _h_append(self, msg):
        p = msg.payload
        pkey = p["pkey"]
        pdelta = p["pdelta"]
        used = self.region_used.get(pkey, 0)
        if used + pdelta.size + PLR_HEADER > self.reserve_bytes:
            # Reserved space exhausted: recycle this region *now*, blocking
            # the append (and the client ack behind it).
            yield from self._recycle_region(pkey)
            used = 0
        # Reserved regions are scattered across the device: the append is a
        # random write into this block's private region.
        yield from self.osd.device.write(
            int(pdelta.size) + PLR_HEADER,
            zone=f"plr:{pkey}",
            offset=used,
            pattern="rand",
            overwrite=False,
        )
        self.log_index.insert(pkey, p["offset"], pdelta)
        self.region_used[pkey] = used + int(pdelta.size) + PLR_HEADER
        self.region_entries.setdefault(pkey, []).append((p["offset"], int(pdelta.size)))
        return {"ok": True}, 8

    # ------------------------------------------------------------------
    def _recycle_region(self, pkey: BlockKey, live: bool = False):
        """Merge the reserved region into its parity chunk.

        The region sits next to the chunk, so the log read is sequential —
        PLR's advantage over PL — but merging rewrites the *whole parity
        chunk* (read chunk, XOR deltas in, write chunk back), the classic
        reserved-space compaction.  With a small reserve this runs every
        few appends, squarely on the update path.

        ``live=True`` selects the drain-safe variant for drains that run
        under live foreground traffic (the QoS rebalance path): the
        region's pending state is popped *before* the first yield, so a
        delta appended mid-recycle starts a fresh ledger for the next
        pass instead of being zeroed out from under the append, and
        entries stranded by an earlier append/recycle race (ledger bytes
        zeroed, index entry left behind) are swept even when
        ``region_used`` reads zero.
        """
        if live:
            yield from self._recycle_region_live(pkey)
            return
        used = self.region_used.get(pkey, 0)
        if used == 0:
            return
        self.sync_recycles += 1
        # Log read is sequential (the region is contiguous next to the block).
        yield from self.osd.device.read(
            used, zone=f"plr:{pkey}", offset=0, pattern="seq"
        )
        segs = self.log_index.pop_block(pkey)
        chunk = self.osd.store.block_size
        base = self.osd.store.device_offset(pkey)
        yield from self.osd.device.read(
            chunk, zone="blocks", offset=base, pattern="rand"
        )
        yield from self.osd.device.write(
            chunk, zone="blocks", offset=base, pattern="rand", overwrite=True
        )
        # In-memory fold, charged above; via the store for ghost coverage.
        for seg in segs:
            self.osd.store.fold_xor(pkey, seg.offset, seg.data)
        self.region_used[pkey] = 0
        self.region_entries[pkey] = []

    def _recycle_region_live(self, pkey: BlockKey):
        used = self.region_used.get(pkey, 0)
        segs = self.log_index.pop_block(pkey)
        if used == 0 and not segs:
            return
        if used:
            self.sync_recycles += 1
        self.region_used[pkey] = 0
        self.region_entries[pkey] = []
        self._inflight_regions[pkey] = self._inflight_regions.get(pkey, 0) + 1
        try:
            if used:
                yield from self.osd.device.read(
                    used, zone=f"plr:{pkey}", offset=0, pattern="seq"
                )
            chunk = self.osd.store.block_size
            base = self.osd.store.device_offset(pkey)
            yield from self.osd.device.read(
                chunk, zone="blocks", offset=base, pattern="rand"
            )
            yield from self.osd.device.write(
                chunk, zone="blocks", offset=base, pattern="rand", overwrite=True
            )
            for seg in segs:
                self.osd.store.fold_xor(pkey, seg.offset, seg.data)
        finally:
            left = self._inflight_regions.get(pkey, 0) - 1
            if left <= 0:
                self._inflight_regions.pop(pkey, None)
            else:
                self._inflight_regions[pkey] = left

    def drain(self, phase: int = 0):
        # A cluster that has run drains under live foreground traffic (the
        # QoS rebalance flips cluster.live_drain) may carry entries
        # stranded by append/recycle races; use the drain-safe variant from
        # then on.  Everywhere else this is the historical recycle.
        live = getattr(self.cluster, "live_drain", False)
        for pkey in list(self.region_used):
            yield from self._recycle_region(pkey, live=live)

    def pending_log_bytes(self) -> int:
        return sum(self.region_used.values())

    def stripe_pending(self, inode: int, stripe: int) -> bool:
        if any(
            pkey[0] == inode and pkey[1] == stripe and used > 0
            for pkey, used in self.region_used.items()
        ):
            return True
        if any(
            pkey[0] == inode and pkey[1] == stripe
            for pkey in self._inflight_regions
        ):
            return True
        if getattr(self.cluster, "live_drain", False):
            # Entries stranded by an append/recycle race keep the stripe
            # pending until a live drain sweeps them.
            return any(
                pkey[0] == inode and pkey[1] == stripe
                for pkey in self.log_index.blocks()
            )
        return False
