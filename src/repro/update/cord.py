"""CoRD — Combining Raid and Delta (Zhou et al., SC'24; §2.2).

Data blocks update in place; the delta is forwarded to the stripe's
*collector* (the OSD hosting the first parity block), which aggregates
deltas from all data blocks of the stripe in a fixed-size buffer log.
When the buffer fills, the collector combines same-offset deltas across
blocks (Eq. 5) and pushes one combined parity delta per parity block —
that is how CoRD minimises network traffic.

The paper's critique, which we model directly: the buffer log is a single
mutually exclusive structure with no read/write concurrency, so appends,
and the synchronous recycle that a full buffer forces, serialize behind one
lock and become the throughput bottleneck.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.ec.rs import parity_delta as _parity_delta
from repro.logstruct.index import TwoLevelIndex
from repro.sim.events import AllOf
from repro.sim.resources import Resource
from repro.update.base import BlockKey, UpdateStrategy

CORD_HEADER = 32


class CoRDStrategy(UpdateStrategy):
    """Collector-aggregated delta combining with a serialized buffer log."""

    name = "cord"
    serializes_stripes = True

    def __init__(self, osd, buffer_bytes: int = 128 * 1024):
        self.buffer_bytes = buffer_bytes
        # Collector state: deltas per data-block key, stripes resident.
        self.buf_index = TwoLevelIndex("xor")
        self.buf_stripes: Dict[Tuple[int, int], List[int]] = {}
        self.buf_used = 0
        self.sync_recycles = 0
        self.stall_events = 0
        # The buffer log supports one in-flight recycle; when the buffer
        # refills before the previous recycle lands, appends stall — the
        # concurrency bottleneck the paper attributes to CoRD.
        self.lock = Resource(osd.sim, capacity=1, name=f"{osd.name}.cordlock")
        self._apply_lock = Resource(osd.sim, capacity=1, name=f"{osd.name}.cordapply")
        # Stripes inside snapshots that are detached from the buffer but not
        # yet applied, so stripe_pending covers the whole recycle window.
        self._inflight_stripes: Dict[Tuple[int, int], int] = {}
        super().__init__(osd)

    def register_handlers(self) -> None:
        self.osd.register("cord_collect", self._h_collect)
        self.osd.register("cord_apply", self._h_apply)

    # ------------------------------------------------------------------
    # data-OSD side
    # ------------------------------------------------------------------
    def on_update(self, key: BlockKey, offset: int, data: np.ndarray):
        # Lock the data-block read-modify-write only; the collector buffers
        # deltas in an XOR index and combining is commutative (Eq. 5).
        delta = yield from self.serialize_stripe(
            key, self.rmw_delta(key, offset, data)
        )
        inode, stripe, _j = key
        collector = self.cluster.placement(inode, stripe)[self.cluster.config.k]
        yield from self.osd.rpc_delivered(
            collector,
            "cord_collect",
            {"key": key, "offset": offset, "delta": delta},
            nbytes=int(delta.size),
        )

    # ------------------------------------------------------------------
    # collector side
    # ------------------------------------------------------------------
    def _h_collect(self, msg):
        p = msg.payload
        key, offset, delta = p["key"], p["offset"], p["delta"]
        yield self.lock.request()
        try:
            if self.buf_used + delta.size + CORD_HEADER > self.buffer_bytes:
                # The buffer is full: it can only be snapshotted once the
                # previous recycle (if any) has landed — a full buffer
                # behind a slow recycle stalls the append path, and the
                # client ack behind it.  The new recycle itself then runs
                # asynchronously.
                if self._apply_lock.in_use:
                    self.stall_events += 1
                    yield self._apply_lock.request()
                    self._apply_lock.release()
                snapshot = self._snapshot_buffer()
                self.sim.process(self._apply_snapshot(snapshot))
            yield from self.osd.device.write(
                int(delta.size) + CORD_HEADER,
                zone="cord_buf",
                pattern="seq",
                overwrite=False,
            )
            self.buf_index.insert(key, offset, delta)
            inode, stripe, j = key
            self.buf_stripes.setdefault((inode, stripe), [])
            if j not in self.buf_stripes[(inode, stripe)]:
                self.buf_stripes[(inode, stripe)].append(j)
            self.buf_used += int(delta.size) + CORD_HEADER
        finally:
            self.lock.release()
        return {"ok": True}, 8

    def _snapshot_buffer(self):
        """Detach the current buffer contents for recycling."""
        snapshot = {}
        for (inode, stripe), js in self.buf_stripes.items():
            snapshot[(inode, stripe)] = {
                j: self.buf_index.pop_block((inode, stripe, j)) for j in js
            }
            self._inflight_stripes[(inode, stripe)] = (
                self._inflight_stripes.get((inode, stripe), 0) + 1
            )
        self.buf_stripes.clear()
        self.buf_used = 0
        return snapshot

    def _release_inflight(self, snapshot) -> None:
        for sk in snapshot:
            left = self._inflight_stripes.get(sk, 0) - 1
            if left <= 0:
                self._inflight_stripes.pop(sk, None)
            else:
                self._inflight_stripes[sk] = left

    def _apply_snapshot(self, snapshot):
        """Combine (Eq. 5) and push to every parity block.

        Guarded by a single-slot lock: only one recycle can be in flight,
        so a full buffer behind a slow recycle stalls the append path.
        """
        if not snapshot:
            return
        yield self._apply_lock.request()
        try:
            self.sync_recycles += 1
            k = self.cluster.config.k
            m = self.cluster.config.m
            calls = []
            for (inode, stripe), per_block in snapshot.items():
                names = self.cluster.placement(inode, stripe)
                for p in range(m):
                    pkey = (inode, stripe, k + p)
                    combined = TwoLevelIndex("xor")
                    for j, segs in per_block.items():
                        coeff = self.cluster.codec.coefficient(p, j)
                        for s in segs:
                            combined.insert(pkey, s.offset, _parity_delta(coeff, s.data))
                    entries = [(s.offset, s.data) for s in combined.segments(pkey)]
                    if not entries:
                        continue
                    nbytes = sum(int(d.size) for _, d in entries)
                    if names[k + p] == self.osd.name:
                        for off, pd in entries:
                            yield from self.apply_parity_delta(pkey, off, pd)
                    else:
                        # Retrying push: the recycle owns this combined
                        # delta and the parity OSD may be mid-recovery.
                        calls.append(
                            self.sim.process(
                                self.osd.rpc_with_retry(
                                    names[k + p],
                                    "cord_apply",
                                    {"pkey": pkey, "entries": entries},
                                    nbytes=nbytes,
                                    # Fixed cadence: the committed bench
                                    # rows encode this retry timing.
                                    backoff=1.0,
                                )
                            )
                        )
            if calls:
                yield AllOf(self.sim, calls)
        finally:
            self._release_inflight(snapshot)
            self._apply_lock.release()

    def _h_apply(self, msg):
        p = msg.payload
        for off, pd in p["entries"]:
            yield from self.apply_parity_delta(p["pkey"], off, pd)
        return {"ok": True}, 8

    # ------------------------------------------------------------------
    def drain(self, phase: int = 0):
        yield self.lock.request()
        try:
            snapshot = self._snapshot_buffer()
            # Runs inline: waits behind any in-flight recycle, then applies.
            yield from self._apply_snapshot(snapshot)
            # Ensure a recycle spawned just before drain has landed too.
            yield self._apply_lock.request()
            self._apply_lock.release()
        finally:
            self.lock.release()

    def pending_log_bytes(self) -> int:
        return self.buf_used

    def stripe_pending(self, inode: int, stripe: int) -> bool:
        sk = (inode, stripe)
        return sk in self.buf_stripes or sk in self._inflight_stripes
