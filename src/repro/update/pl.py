"""PL — Parity Logging (Stodolsky et al., §2.2).

Data blocks update in place (random read + write for the delta); parity
deltas are *appended* to a sequential parity log at each parity OSD and the
in-place parity update is deferred.  With a large log-space threshold the
recycle never runs during normal operation ("indefinitely delayed", §5.2) —
which is exactly why PL is fast for updates and slow/risky for recovery.

Correctness bookkeeping: the log content folds into an XOR index per parity
block (so drain produces exact bytes), while a per-entry ledger preserves
the *cost* of the unmerged recycle the paper attributes to PL (lots of
random access, no locality exploitation).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.logstruct.index import TwoLevelIndex
from repro.sim.events import AllOf
from repro.update.base import BlockKey, UpdateStrategy

PL_HEADER = 32


class PLStrategy(UpdateStrategy):
    """In-place data update + appended parity logs, deferred recycle."""

    name = "pl"
    serializes_stripes = True

    def __init__(self, osd, recycle_threshold_bytes: int = 1 << 40):
        # Default threshold is effectively infinite: recycle only on drain.
        self.recycle_threshold_bytes = recycle_threshold_bytes
        self.log_index = TwoLevelIndex("xor")  # exact pending parity deltas
        self.log_entries: Dict[BlockKey, List[Tuple[int, int]]] = {}
        self.log_bytes = 0
        super().__init__(osd)

    def register_handlers(self) -> None:
        self.osd.register("pl_append", self._h_append)

    # ------------------------------------------------------------------
    def on_update(self, key: BlockKey, offset: int, data: np.ndarray):
        # Lock the data-block read-modify-write only; the appended parity
        # deltas fold into an XOR index, commutative in arrival order.
        delta = yield from self.serialize_stripe(
            key, self.rmw_delta(key, offset, data)
        )
        calls = []
        for p, osd_name in self.parity_targets(key):
            pdelta = self.cluster.codec.parity_delta(key[2], p, delta)
            calls.append(
                self.sim.process(
                    self.osd.rpc_delivered(
                        osd_name,
                        "pl_append",
                        {
                            "pkey": self.parity_key(key, p),
                            "offset": offset,
                            "pdelta": pdelta,
                        },
                        nbytes=int(pdelta.size),
                    )
                )
            )
        if calls:
            yield AllOf(self.sim, calls)

    def _h_append(self, msg):
        p = msg.payload
        pdelta = p["pdelta"]
        yield from self.osd.device.write(
            int(pdelta.size) + PL_HEADER, zone="pl_log", pattern="seq", overwrite=False
        )
        self.log_index.insert(p["pkey"], p["offset"], pdelta)
        self.log_entries.setdefault(p["pkey"], []).append((p["offset"], int(pdelta.size)))
        self.log_bytes += int(pdelta.size)
        if self.log_bytes >= self.recycle_threshold_bytes:
            yield from self._recycle_all()
        return {"ok": True}, 8

    # ------------------------------------------------------------------
    def _recycle_all(self):
        """The costed PL recycle: sequential log scan + per-entry random RMW.

        PL does not exploit locality, so the device cost is charged per raw
        log entry; the byte-exact merged content lands at the end.

        Runs correctly under concurrent appends (recovery drains while
        foreground updates keep flowing): the ledger is snapshot-swapped
        before the first yield, and the loop repeats until no entries
        arrived mid-pass.  ``pop_block`` may also fold in deltas that
        landed after the snapshot — their ledger entries then cost a
        (cheap, content-less) second pass, but every delta's content is
        applied exactly once.
        """
        while self.log_entries:
            pending, self.log_entries = self.log_entries, {}
            pending_bytes, self.log_bytes = self.log_bytes, 0
            yield from self.osd.device.read(
                pending_bytes + PL_HEADER * sum(len(v) for v in pending.values()),
                zone="pl_log",
                pattern="seq",
            )
            for pkey, entries in pending.items():
                for offset, size in entries:
                    # Unmerged: one random read + write per logged entry.
                    yield from self.osd.device.read(
                        size,
                        zone="blocks",
                        offset=self.osd.store.device_offset(pkey) + offset,
                        pattern="rand",
                    )
                    yield from self.osd.device.write(
                        size,
                        zone="blocks",
                        offset=self.osd.store.device_offset(pkey) + offset,
                        pattern="rand",
                        overwrite=True,
                    )
                # Apply the exact merged bytes once (no extra simulated cost
                # — the per-entry loop above already charged it).  Routed
                # through the store so ghost-plane coverage stays complete.
                for seg in self.log_index.pop_block(pkey):
                    self.osd.store.fold_xor(pkey, seg.offset, seg.data)

    def drain(self, phase: int = 0):
        yield from self._recycle_all()

    def pending_log_bytes(self) -> int:
        return self.log_bytes

    def stripe_pending(self, inode: int, stripe: int) -> bool:
        return any(
            pkey[0] == inode and pkey[1] == stripe and entries
            for pkey, entries in self.log_entries.items()
        )
