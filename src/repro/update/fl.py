"""FL — Full Logging (§2.2; the Azure/GFS-style extra baseline).

All update data is appended to one large data-side log; the original blocks
are only patched when the log is recycled at a space threshold.  The single
log structure makes appending, reading and recycling mutually exclusive
(one lock), and unrecycled data must be merged into every read — the
read-penalty and exclusivity problems §2.2 describes.

FL is not part of the paper's measured comparison (Fig. 5 omits it); it is
included for completeness and for the update-path unit tests.
"""

from __future__ import annotations


import numpy as np

from repro.logstruct.index import TwoLevelIndex
from repro.sim.events import AllOf
from repro.sim.resources import Resource
from repro.update.base import BlockKey, UpdateStrategy

FL_HEADER = 32


class FLStrategy(UpdateStrategy):
    """Single exclusive data log, threshold recycle, read merging."""

    name = "fl"

    def __init__(self, osd, recycle_threshold_bytes: int = 4 * 1024 * 1024):
        self.recycle_threshold_bytes = recycle_threshold_bytes
        self.log_index = TwoLevelIndex("overwrite")
        self.log_bytes = 0
        self.lock = Resource(osd.sim, capacity=1, name=f"{osd.name}.fllock")
        super().__init__(osd)

    def register_handlers(self) -> None:
        self.osd.register("fl_apply", self._h_apply)

    def _h_apply(self, msg):
        p = msg.payload
        yield from self.apply_parity_delta(p["pkey"], p["offset"], p["pdelta"])
        return {"ok": True}, 8

    # ------------------------------------------------------------------
    def on_update(self, key: BlockKey, offset: int, data: np.ndarray):
        yield self.lock.request()
        try:
            yield from self.osd.device.write(
                int(data.size) + FL_HEADER, zone="fl_log", pattern="seq", overwrite=False
            )
            self.log_index.insert(key, offset, data)
            self.log_bytes += int(data.size)
            must_recycle = self.log_bytes >= self.recycle_threshold_bytes
        finally:
            self.lock.release()
        if must_recycle:
            yield from self._recycle_all()

    # ------------------------------------------------------------------
    def _recycle_all(self):
        yield self.lock.request()
        try:
            if self.log_bytes == 0:
                return
            yield from self.osd.device.read(self.log_bytes, zone="fl_log", pattern="seq")
            for key in list(self.log_index.blocks()):
                segs = self.log_index.pop_block(key)
                calls = []
                for seg in segs:
                    old = yield from self.osd.store.read_range(
                        key, seg.offset, seg.length, pattern="rand"
                    )
                    # ``old`` is a view of the live block — delta before
                    # the write that overwrites those bytes.
                    delta = old ^ seg.data
                    yield from self.osd.store.write_range(
                        key, seg.offset, seg.data, pattern="rand"
                    )
                    for p, osd_name in self.parity_targets(key):
                        pdelta = self.cluster.codec.parity_delta(key[2], p, delta)
                        # Retrying push: the recycle worker owns this delta
                        # and the parity OSD may be mid-failure/recovery.
                        calls.append(
                            self.sim.process(
                                self.osd.rpc_with_retry(
                                    osd_name,
                                    "fl_apply",
                                    {
                                        "pkey": self.parity_key(key, p),
                                        "offset": seg.offset,
                                        "pdelta": pdelta,
                                    },
                                    nbytes=int(pdelta.size),
                                    # Fixed cadence: the committed bench
                                    # rows encode this retry timing.
                                    backoff=1.0,
                                )
                            )
                        )
                if calls:
                    yield AllOf(self.sim, calls)
            self.log_bytes = 0
        finally:
            self.lock.release()

    def drain(self, phase: int = 0):
        yield from self._recycle_all()

    def read_overlay(self, key, offset, length):
        frags = self.log_index.lookup_partial(key, offset, length)
        return frags or None

    def pending_log_bytes(self) -> int:
        return self.log_bytes

    def stripe_pending(self, inode: int, stripe: int) -> bool:
        return any(
            key[0] == inode and key[1] == stripe
            for key in self.log_index.blocks()
        )
