"""Erasure-code update strategies.

One class per method the paper evaluates (§2.2, §5), all behind the common
:class:`~repro.update.base.UpdateStrategy` interface hosted by each OSD:

* :class:`~repro.update.fo.FOStrategy` — full overwrite, in place everywhere;
* :class:`~repro.update.fl.FLStrategy` — full logging (extra baseline, §2.2);
* :class:`~repro.update.pl.PLStrategy` — parity logging, deferred recycle;
* :class:`~repro.update.plr.PLRStrategy` — parity logging w/ reserved space;
* :class:`~repro.update.parix.PARIXStrategy` — speculative partial writes;
* :class:`~repro.update.cord.CoRDStrategy` — collector + delta combining;
* :class:`~repro.update.tsue_strategy.TSUEStrategy` — the paper's method
  (engine in :mod:`repro.tsue`).

``make_strategy_factory(name, **params)`` builds the per-OSD factory the
cluster constructor expects.
"""

from repro.update.base import UpdateStrategy
from repro.update.cord import CoRDStrategy
from repro.update.fl import FLStrategy
from repro.update.fo import FOStrategy
from repro.update.parix import PARIXStrategy
from repro.update.pl import PLStrategy
from repro.update.plr import PLRStrategy
from repro.update.tsue_strategy import TSUEStrategy

STRATEGIES = {
    "fo": FOStrategy,
    "fl": FLStrategy,
    "pl": PLStrategy,
    "plr": PLRStrategy,
    "parix": PARIXStrategy,
    "cord": CoRDStrategy,
    "tsue": TSUEStrategy,
}


def make_strategy_factory(name: str, **params):
    """A ``factory(osd) -> UpdateStrategy`` for :class:`repro.cluster.Cluster`."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown update method {name!r}; choose from {sorted(STRATEGIES)}"
        ) from None

    def factory(osd):
        return cls(osd, **params)

    return factory


__all__ = [
    "CoRDStrategy",
    "FLStrategy",
    "FOStrategy",
    "PARIXStrategy",
    "PLRStrategy",
    "PLStrategy",
    "STRATEGIES",
    "TSUEStrategy",
    "UpdateStrategy",
    "make_strategy_factory",
]
