"""PARIX — speculative partial writes (Li et al., ATC'17; §2.2).

PARIX skips the write-after-read on the data path by forwarding the *new
data* itself to the parity logs; parity deltas are computed lazily at
recycle from (original, latest) pairs.  The catch: the first update to a
location must also ship the *original* data so the parity side can ever
compute a delta — a second, serialized round trip (the "2x network latency"
of Fig. 1) — and data blocks still update in place (random write).

Temporal locality is exploited (repeat updates to a location are one hop);
spatial locality is not (the paper's critique).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.logstruct.index import TwoLevelIndex
from repro.logstruct.intervals import IntervalSet
from repro.sim.events import AllOf
from repro.update.base import BlockKey, UpdateStrategy

PARIX_HEADER = 32


class PARIXStrategy(UpdateStrategy):
    """Speculative logging of raw data at the parity OSDs."""

    name = "parix"
    serializes_stripes = True
    # Phase 0 recycles parity-side logs; phase 1 resets the data-side
    # speculation state (safe only once *every* OSD finished phase 0).
    DRAIN_PHASES = 2

    def __init__(self, osd, recycle_threshold_bytes: int = 512 * 1024):
        # Data-OSD side: which byte ranges of each local block already
        # shipped their original bytes to the parity logs.  Byte-granular:
        # a page partially covered by one update is still "first" for the
        # uncovered bytes of the next one.
        self.seen: Dict[BlockKey, IntervalSet] = {}
        # Parity-OSD side: per data-block original and latest data images.
        # NB: no in-place merge folding — PARIX ships one original/latest
        # payload array to every parity OSD and refresh-inserts contained
        # ranges, so these indexes do not exclusively own their buffers
        # (see TwoLevelIndex.inplace_merge).
        self.orig_index = TwoLevelIndex("overwrite", inplace_merge=False)
        self.latest_index = TwoLevelIndex("overwrite", inplace_merge=False)
        self.log_entries: Dict[BlockKey, List[Tuple[int, int]]] = {}
        self.log_bytes = 0
        self.orig_bytes = 0  # live original images (survive compaction)
        self.first_updates = 0
        self.repeat_updates = 0
        self.threshold_recycles = 0
        # PARIX logs *full data* (originals + every new version), so unlike
        # PL's compact delta logs the space budget is really exhausted
        # in-window and recycle must run during operation.  Appends run
        # concurrently with each other but are excluded while the log is
        # being compacted (the log structure is being rewritten under them).
        self.recycle_threshold_bytes = recycle_threshold_bytes
        self._recycling = False
        self._recycle_waiters = []
        # Stripes with popped-but-not-yet-applied patch jobs in flight, so
        # stripe_pending stays true until the parity RMW really lands.
        self._inflight_stripe_jobs: Dict[Tuple[int, int], int] = {}
        super().__init__(osd)

    def _wait_not_recycling(self):
        while self._recycling:
            ev = self.sim.event(name="parix-recycle-wait")
            self._recycle_waiters.append(ev)
            yield ev

    def _begin_recycle(self) -> None:
        self._recycling = True

    def _end_recycle(self) -> None:
        self._recycling = False
        waiters, self._recycle_waiters = self._recycle_waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.succeed()

    def register_handlers(self) -> None:
        self.osd.register("parix_append", self._h_append)

    def _background_recycle(self):
        """Compaction: appends are excluded only while the dirty segments
        are scanned; live-original rewrite (goes to fresh segments) and the
        parity RMW application proceed with appends flowing again.
        """
        try:
            jobs, live_share = yield from self._scan_and_pop_locked()
        finally:
            self._end_recycle()
        if live_share:
            yield from self.osd.device.write(
                live_share, zone="parix_log", pattern="seq", overwrite=False
            )
        if jobs:
            yield AllOf(self.sim, jobs)

    def _make_patches(self, key, segs, k):
        """Compute parity patches for one block's popped segments.

        Runs synchronously at pop time (no yields): the delta against the
        current originals and the refresh of those originals must be one
        atomic step, or a later pop could pair new data with a stale
        original while this epoch's patch is still in flight.
        """
        inode, stripe, j = key
        p = self._my_parity_index(inode, stripe)
        pkey = (inode, stripe, k + p)
        patches = []
        for seg in segs:
            orig = self.orig_index.lookup(key, seg.offset, seg.length)
            if orig is None:
                raise RuntimeError(
                    f"PARIX missing original bytes for {key} @{seg.offset}"
                )
            delta = orig ^ seg.data
            patches.append((pkey, seg.offset, self.cluster.codec.parity_delta(j, p, delta)))
            # Refresh: once this patch lands, these values are the new
            # parity-consistent originals for the range.
            self.orig_index.insert(key, seg.offset, seg.data)
        return patches

    def _apply_patches(self, patches, stripe_key=None):
        """Device application of precomputed patches (XOR commutes)."""
        try:
            for pkey, offset, pdelta in patches:
                yield from self.apply_parity_delta(pkey, offset, pdelta)
        finally:
            if stripe_key is not None:
                left = self._inflight_stripe_jobs.get(stripe_key, 0) - 1
                if left <= 0:
                    self._inflight_stripe_jobs.pop(stripe_key, None)
                else:
                    self._inflight_stripe_jobs[stripe_key] = left

    # ------------------------------------------------------------------
    # data-OSD side
    # ------------------------------------------------------------------
    def on_update(self, key: BlockKey, offset: int, data: np.ndarray):
        # Unlike the XOR-delta methods (which lock only their data-block
        # RMW), the critical section covers the whole speculative protocol:
        # the original-capture-and-ship of a first update must not
        # interleave with another update overwriting the same bytes (the
        # parity side would record a non-original as "original"), and the
        # parity-side "latest" log has overwrite semantics, so append
        # arrival order must match data-write order.
        yield from self.serialize_stripe(key, self._update_locked(key, offset, data))

    def _update_locked(self, key: BlockKey, offset: int, data: np.ndarray):
        seen = self.seen.setdefault(key, IntervalSet())
        first = not seen.covers(offset, offset + int(data.size))
        targets = self.parity_targets(key)
        if first:
            self.first_updates += 1
            # Must capture the original before overwriting, and ship it to
            # every parity log *before* the speculative write is acked:
            # a serialized second round trip.
            old = yield from self.osd.store.read_range(
                key, offset, data.size, pattern="rand"
            )
            # Snapshot the original: the view must survive the parity-log
            # ship (yields) and the local overwrite below — and the parity
            # side retains the payload in its original-image log.
            old = old.copy()
            calls = [
                self.sim.process(
                    # repro-lint: allow(lock-yield-while-locked) -- PARIX original-ship: the original image must reach every parity log before the speculative write is acked (the protocol's extra round trip)
                    self.osd.rpc_delivered(
                        osd_name,
                        "parix_append",
                        {"key": key, "offset": offset, "data": old, "orig": True},
                        nbytes=int(old.size),
                    )
                )
                for _p, osd_name in targets
            ]
            # repro-lint: allow(lock-yield-while-locked) -- PARIX original-ship barrier: ack only after all parity logs hold the original image
            yield AllOf(self.sim, calls)
            seen.add(offset, offset + int(data.size))
        else:
            self.repeat_updates += 1
        yield from self.osd.store.write_range(key, offset, data, pattern="rand")
        calls = [
            self.sim.process(
                # repro-lint: allow(lock-yield-while-locked) -- speculative-append ship stays under the stripe lock so same-stripe updates keep parity-log order
                self.osd.rpc_delivered(
                    osd_name,
                    "parix_append",
                    {"key": key, "offset": offset, "data": data, "orig": False},
                    nbytes=int(data.size),
                )
            )
            for _p, osd_name in targets
        ]
        if calls:
            # repro-lint: allow(lock-yield-while-locked) -- ack barrier for the speculative append, required before the client update completes
            yield AllOf(self.sim, calls)

    # ------------------------------------------------------------------
    # parity-OSD side
    # ------------------------------------------------------------------
    def _h_append(self, msg):
        p = msg.payload
        key, offset, data = p["key"], p["offset"], p["data"]
        # Live originals survive compaction, so the trigger is on
        # *reclaimable* bytes; compacting a log of live data frees nothing.
        reclaimable = self.log_bytes - self.orig_bytes
        if (
            reclaimable + data.size > self.recycle_threshold_bytes
            and not self._recycling
        ):
            # Space exhausted: compact the log.  The single log structure
            # is rewritten during compaction, so appends (and the client
            # acks behind them) are excluded until it completes — the
            # single-log exclusivity §2.2 criticises.
            self.threshold_recycles += 1
            self._begin_recycle()
            self.sim.process(self._background_recycle())
        yield from self._wait_not_recycling()
        yield from self.osd.device.write(
            int(data.size) + PARIX_HEADER, zone="parix_log", pattern="seq", overwrite=False
        )
        if p["orig"]:
            self._insert_orig_uncovered(key, offset, data)
        else:
            self.latest_index.insert(key, offset, data)
            self.log_entries.setdefault(key, []).append((offset, int(data.size)))
        self.log_bytes += int(data.size)
        return {"ok": True}, 8

    def _insert_orig_uncovered(self, key, offset: int, data: np.ndarray) -> None:
        """Originals are first-wins: never clobber an earlier original."""
        covered = self.orig_index.lookup_partial(key, offset, int(data.size))
        have = np.zeros(int(data.size), dtype=bool)
        for a, frag in covered:
            have[a - offset : a - offset + frag.size] = True
        idx = np.flatnonzero(~have)
        if idx.size == 0:
            return
        breaks = np.flatnonzero(np.diff(idx) > 1)
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [idx.size - 1]))
        for s_i, e_i in zip(starts, ends):
            lo, hi = int(idx[s_i]), int(idx[e_i]) + 1
            self.orig_index.insert(key, offset + lo, data[lo:hi])
            self.orig_bytes += hi - lo

    # ------------------------------------------------------------------
    def _my_parity_index(self, inode: int, stripe: int) -> int:
        k = self.cluster.config.k
        names = self.cluster.placement(inode, stripe)
        for p in range(self.cluster.config.m):
            if names[k + p] == self.osd.name:
                return p
        raise RuntimeError(f"{self.osd.name} hosts no parity block of stripe {stripe}")

    def _scan_and_pop_locked(self):
        """Scan + rewrite the log (appends excluded), pop pending state.

        Merged per temporal locality, no cross-block combining.  After the
        application jobs run, the *latest* values become the new originals —
        the parity block then reflects them — so speculation keeps working
        across recycle epochs without the data side re-shipping originals.

        Returns the spawned per-block application processes and the number
        of live-original bytes the caller must rewrite to fresh segments.
        """
        if not self.log_entries:
            return [], 0
        n_entries = sum(len(v) for v in self.log_entries.values())
        scan_bytes_nominal = self.log_bytes
        # Segmented cleaning: only the reclaimable share of the log is
        # scanned, plus the live originals interleaved within it (roughly
        # one live byte per dead byte in the cleaned segments) — a cleaner
        # never re-reads the whole log on every cycle.
        reclaimable = max(0, self.log_bytes - self.orig_bytes)
        live_share = min(self.orig_bytes, reclaimable)
        yield from self.osd.device.read(
            reclaimable + live_share + PARIX_HEADER * n_entries,
            zone="parix_log",
            pattern="seq",
        )
        k = self.cluster.config.k
        jobs = []
        for key in list(self.log_entries):
            # Pop this block's pending state *before* any yield: appends
            # arriving mid-recycle start a fresh ledger for the key and are
            # handled by the next recycle instead of being lost.  Patch
            # computation (and orig refresh) happens here, atomically.
            self.log_entries.pop(key)
            segs = self.latest_index.pop_block(key)
            if segs:
                patches = self._make_patches(key, segs, k)
                sk = (key[0], key[1])
                self._inflight_stripe_jobs[sk] = (
                    self._inflight_stripe_jobs.get(sk, 0) + 1
                )
                jobs.append(self.sim.process(self._apply_patches(patches, sk)))
        # Accounting: entries appended mid-scan survive in the fresh
        # ledgers and are charged on top; live originals are rewritten by
        # the caller.
        appended_mid_recycle = max(0, self.log_bytes - scan_bytes_nominal)
        self.log_bytes = self.orig_bytes + appended_mid_recycle
        return jobs, live_share

    def _recycle_all_locked(self):
        """Full synchronous compaction (drain path)."""
        jobs, live_share = yield from self._scan_and_pop_locked()
        if live_share:
            yield from self.osd.device.write(
                live_share, zone="parix_log", pattern="seq", overwrite=False
            )
        if jobs:
            # repro-lint: allow(lock-yield-while-locked) -- drain-path compaction barrier: runs behind the harness post-workload barrier, no competing updates exist
            yield AllOf(self.sim, jobs)

    def drain(self, phase: int = 0):
        if phase == 0:
            yield from self._wait_not_recycling()
            self._begin_recycle()
            try:
                yield from self._recycle_all_locked()
            finally:
                self._end_recycle()
        else:
            # Post-recycle, parity state matches on-disk data: the next
            # update to any location is a "first" again and must re-ship
            # originals.
            self.seen.clear()
            yield self.sim.timeout(0)

    def pending_log_bytes(self) -> int:
        return self.log_bytes

    def on_rebuilt(self) -> None:
        """Reset speculation state invalidated by block reconstruction.

        The rebuilt parity blocks equal ``encode(live data)``; originals
        captured before the crash no longer describe them, and a delta
        computed against a stale original would corrupt the rebuilt parity
        (the post-recovery scrub gate catches exactly that).  Cleared here,
        the next update to any location is a "first" again — recovery's
        cluster-wide drain already cleared every data side's ``seen``, so
        originals are re-shipped and speculation restarts cleanly.
        """
        self.seen.clear()
        # NB: no in-place merge folding — PARIX ships one original/latest
        # payload array to every parity OSD and refresh-inserts contained
        # ranges, so these indexes do not exclusively own their buffers
        # (see TwoLevelIndex.inplace_merge).
        self.orig_index = TwoLevelIndex("overwrite", inplace_merge=False)
        self.latest_index = TwoLevelIndex("overwrite", inplace_merge=False)
        self.log_entries.clear()
        self.log_bytes = 0
        self.orig_bytes = 0

    def stripe_pending(self, inode: int, stripe: int) -> bool:
        # Pending parity lag = unrecycled *latest* entries plus popped patch
        # jobs still applying; live originals alone are a consistent
        # snapshot, not lag.
        if (inode, stripe) in self._inflight_stripe_jobs:
            return True
        return any(
            key[0] == inode and key[1] == stripe and entries
            for key, entries in self.log_entries.items()
        )
