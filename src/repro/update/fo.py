"""FO — Full Overwrite (Aguilera et al., §2.2).

Everything happens in place and synchronously: the data block takes a random
read + random write to compute the delta, then every parity block takes a
random read + random write to apply its scaled delta.  Longest update path,
entirely small random I/O — the paper's baseline worst case for latency.
"""

from __future__ import annotations

import numpy as np

from repro.sim.events import AllOf
from repro.update.base import BlockKey, UpdateStrategy


class FOStrategy(UpdateStrategy):
    """In-place update of data and all parity blocks on the critical path."""

    name = "fo"
    serializes_stripes = True

    def register_handlers(self) -> None:
        self.osd.register("fo_apply", self._h_apply)

    def on_update(self, key: BlockKey, offset: int, data: np.ndarray):
        # Only the data-block read-modify-write needs the stripe lock: the
        # parity applies below are commutative XOR, safe in any order.
        delta = yield from self.serialize_stripe(
            key, self.rmw_delta(key, offset, data)
        )
        calls = []
        for p, osd_name in self.parity_targets(key):
            pdelta = self.cluster.codec.parity_delta(key[2], p, delta)
            calls.append(
                self.sim.process(
                    self.osd.rpc_delivered(
                        osd_name,
                        "fo_apply",
                        {
                            "pkey": self.parity_key(key, p),
                            "offset": offset,
                            "pdelta": pdelta,
                        },
                        nbytes=int(pdelta.size),
                    )
                )
            )
        if calls:
            yield AllOf(self.sim, calls)

    def _h_apply(self, msg):
        p = msg.payload
        yield from self.apply_parity_delta(p["pkey"], p["offset"], p["pdelta"])
        return {"ok": True}, 8

    # FO keeps no logs: nothing to drain, nothing to overlay.
