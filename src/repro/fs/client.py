"""The client: striping, encoding, and the user-facing API.

Clients provide ``create``, ``write`` (full-stripe encode + distribute),
``update`` (the measured path) and ``read``.  Placement is computed locally
after ``create``/``open`` — the deterministic layout stands in for the MDS
location cache of §4 — so steady-state updates cost exactly the messages the
paper's Fig. 1 shows.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.fs.messages import RpcHost
from repro.metrics.latency import LatencyRecorder
from repro.sim.events import AllOf


class Client(RpcHost):
    """One application node."""

    def __init__(self, sim, fabric, name, cluster):
        super().__init__(sim, fabric, name)
        self.cluster = cluster
        self.update_latency = LatencyRecorder(f"{name}.update")
        self.read_latency = LatencyRecorder(f"{name}.read")
        # Pipelining bookkeeping: how many updates this client has in flight
        # right now, and the high-water mark.  Open-loop generators assert
        # against the peak to prove their requests genuinely overlap.
        self.inflight_updates = 0
        self.peak_inflight_updates = 0

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------
    def create(self, inode: int, size: int):
        """Register a new file with the MDS (generator)."""
        reply = yield from self.rpc(
            "mds", "create_file", {"inode": inode, "size": size}, nbytes=32
        )
        return reply

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def write(self, inode: int, offset: int, data: np.ndarray):
        """Normal (first) write: encode full stripes and distribute.

        Must cover whole stripes — partial first writes are zero-padded by
        the caller; the measured experiments only exercise ``update``.
        """
        data = np.asarray(data, dtype=np.uint8)
        cfg = self.cluster.config
        span = cfg.k * cfg.block_size
        if offset % span or data.size % span:
            raise ValueError("write must cover whole stripes")
        first_stripe = offset // span
        acks = []
        for s_rel in range(data.size // span):
            stripe = first_stripe + s_rel
            chunk = data[s_rel * span : (s_rel + 1) * span]
            blocks = [
                chunk[j * cfg.block_size : (j + 1) * cfg.block_size]
                for j in range(cfg.k)
            ]
            parity = self.cluster.codec.encode(blocks)
            names = self.cluster.placement(inode, stripe)
            for j, blk in enumerate(blocks + parity):
                acks.append(
                    self.sim.process(
                        self.rpc(
                            names[j],
                            "write_block",
                            {"key": (inode, stripe, j), "data": blk},
                            nbytes=blk.size,
                        )
                    )
                )
        yield AllOf(self.sim, acks)

    def update(self, inode: int, offset: int, data: np.ndarray):
        """The measured path: route each extent to its data-block OSD.

        Safe to run many times concurrently from one client (each call is
        its own process with no shared mutable state beyond counters) —
        that is what open-loop generators with ``iodepth > 1`` do.
        """
        data = np.asarray(data, dtype=np.uint8)
        start = self.sim.now
        self.inflight_updates += 1
        self.peak_inflight_updates = max(
            self.peak_inflight_updates, self.inflight_updates
        )
        try:
            if self.cluster.config.client_overhead_s > 0:
                yield self.sim.timeout(self.cluster.config.client_overhead_s)
            extents = self.cluster.stripe_map.extents(inode, offset, data.size)
            acks = []
            pos = 0
            for ext in extents:
                payload = data[pos : pos + ext.length]
                pos += ext.length
                osd = self.cluster.osd_of_block(
                    inode, ext.addr.stripe, ext.addr.block_index
                )
                acks.append(
                    self.sim.process(
                        self.rpc(
                            osd,
                            "update",
                            {
                                "key": ext.addr.key(),
                                "offset": ext.offset,
                                "data": payload,
                            },
                            nbytes=ext.length,
                        )
                    )
                )
            yield AllOf(self.sim, acks)
        finally:
            self.inflight_updates -= 1
        self.update_latency.record(self.sim.now, self.sim.now - start)

    def submit_update(self, inode: int, offset: int, data: np.ndarray):
        """Spawn :meth:`update` as its own process and return it (pipelined).

        Callers join the returned process (or an ``AllOf`` over several) to
        wait for completion; issuing more before joining overlaps them.
        """
        return self.sim.process(
            self.update(inode, offset, data), name=f"{self.name}.update"
        )

    def read(self, inode: int, offset: int, length: int, down: Optional[set] = None):
        """Range read assembled from per-block reads (generator).

        ``down`` is the client's view of unavailable OSDs (normally learnt
        from the MDS); extents whose home OSD is down are served by a
        *degraded read* — decode from any k surviving blocks of the stripe.
        """
        start = self.sim.now
        if self.cluster.config.client_overhead_s > 0:
            yield self.sim.timeout(self.cluster.config.client_overhead_s)
        down = down or set()
        extents = self.cluster.stripe_map.extents(inode, offset, length)
        procs = []
        for ext in extents:
            osd = self.cluster.osd_of_block(inode, ext.addr.stripe, ext.addr.block_index)
            if osd in down:
                procs.append(
                    self.sim.process(
                        self._degraded_read(
                            inode, ext.addr.stripe, ext.addr.block_index,
                            ext.offset, ext.length, down,
                        )
                    )
                )
            else:
                procs.append(
                    self.sim.process(
                        self._read_one(osd, ext.addr.key(), ext.offset, ext.length)
                    )
                )
        pieces = yield AllOf(self.sim, procs)
        out = np.concatenate(pieces) if pieces else np.zeros(0, np.uint8)
        self.read_latency.record(self.sim.now, self.sim.now - start)
        return out

    def _read_one(self, osd: str, key, offset: int, length: int):
        reply = yield from self.rpc(
            osd, "read", {"key": key, "offset": offset, "length": length}, nbytes=24
        )
        return reply["data"]

    def _degraded_read(
        self, inode: int, stripe: int, lost_index: int, offset: int, length: int, down: set
    ):
        """Decode one lost block's range from k surviving full blocks.

        Degraded reads are the expensive path the paper's recovery story
        protects: k whole-block transfers plus a decode for every range on
        a failed OSD.  Survivors' logs must have drained for the parity to
        be current — callers recover-or-drain first, as §2.3.2 requires.
        """
        cfg = self.cluster.config
        names = self.cluster.placement(inode, stripe)
        sources = [
            (b, names[b]) for b in range(cfg.k + cfg.m) if names[b] not in down
        ][: cfg.k]
        if len(sources) < cfg.k:
            raise RuntimeError(
                f"stripe ({inode},{stripe}) has only {len(sources)} live blocks; "
                f"unrecoverable with k={cfg.k}"
            )
        pulls = [
            self.sim.process(
                self._read_one(osd, (inode, stripe, b), 0, cfg.block_size)
            )
            for b, osd in sources
        ]
        blocks = yield AllOf(self.sim, pulls)
        shards = {b: blk for (b, _), blk in zip(sources, blocks)}
        rebuilt = self.cluster.codec.reconstruct(shards, [lost_index])[lost_index]
        return rebuilt[offset : offset + length]
