"""The client: striping, encoding, and the user-facing API.

Clients provide ``create``, ``write`` (full-stripe encode + distribute),
``update`` (the measured path) and ``read``.  Placement is computed locally
after ``create``/``open`` — the deterministic layout stands in for the MDS
location cache of §4 — so steady-state updates cost exactly the messages the
paper's Fig. 1 shows.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dataplane import as_payload, concat_payloads
from repro.fs.messages import TRANSIENT_RPC_ERRORS, RpcHost
from repro.metrics.latency import LatencyRecorder
from repro.sim.events import AllOf


class Client(RpcHost):
    """One application node."""

    # While any member OSD of a stripe is down, updates touching that
    # stripe wait (write fencing): EC updates mutate data *and* parity, and
    # mutating a degraded stripe would have to be replayed into the rebuild.
    # The poll interval paces fence checks and crash-retry backoff; the
    # budget turns a never-recovered OSD into an error instead of a hang.
    FENCE_POLL_S = 5e-4
    FENCE_BUDGET_S = 60.0

    def __init__(self, sim, fabric, name, cluster):
        super().__init__(sim, fabric, name)
        self.cluster = cluster
        self.update_latency = LatencyRecorder(f"{name}.update")
        self.read_latency = LatencyRecorder(f"{name}.read")
        # Reads that went through the degraded (decode) path also record
        # here, so failure scenarios can report an honest degraded p99.
        self.degraded_read_latency = LatencyRecorder(f"{name}.degraded")
        # Pipelining bookkeeping: how many updates this client has in flight
        # right now, and the high-water mark.  Open-loop generators assert
        # against the peak to prove their requests genuinely overlap.
        self.inflight_updates = 0
        self.peak_inflight_updates = 0
        # Failure-path accounting (failure scenarios report these), all
        # counted once per *logical* op, not per retry attempt.
        self.update_retries = 0
        self.read_retries = 0
        self.degraded_reads = 0
        self.fenced_updates = 0

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------
    def create(self, inode: int, size: int):
        """Register a new file with the MDS (generator)."""
        reply = yield from self.rpc(
            "mds", "create_file", {"inode": inode, "size": size}, nbytes=32
        )
        return reply

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def write(self, inode: int, offset: int, data: np.ndarray):
        """Normal (first) write: encode full stripes and distribute.

        Must cover whole stripes — partial first writes are zero-padded by
        the caller; the measured experiments only exercise ``update``.
        """
        data = as_payload(data)
        cfg = self.cluster.config
        span = cfg.k * cfg.block_size
        if offset % span or data.size % span:
            raise ValueError("write must cover whole stripes")
        first_stripe = offset // span
        acks = []
        for s_rel in range(data.size // span):
            stripe = first_stripe + s_rel
            chunk = data[s_rel * span : (s_rel + 1) * span]
            blocks = [
                chunk[j * cfg.block_size : (j + 1) * cfg.block_size]
                for j in range(cfg.k)
            ]
            parity = self.cluster.codec.encode(blocks)
            names = self.cluster.placement(inode, stripe)
            for j, blk in enumerate(blocks + parity):
                acks.append(
                    self.sim.process(
                        self.rpc(
                            names[j],
                            "write_block",
                            {"key": (inode, stripe, j), "data": blk},
                            nbytes=blk.size,
                        )
                    )
                )
        yield AllOf(self.sim, acks)

    def _fence_wait(self, inode: int, stripes):
        """Wait until no member OSD of the given stripes is down.

        Returns True if the op had to wait at all (generator).
        """
        waited = 0.0
        fenced = False
        while True:
            down = self.cluster.down_osds
            if not down or not any(
                name in down
                for s in stripes
                for name in self.cluster.placement(inode, s)
            ):
                return fenced
            fenced = True
            if waited >= self.FENCE_BUDGET_S:
                raise RuntimeError(
                    f"{self.name}: stripes {sorted(stripes)} of inode {inode} "
                    f"fenced for {waited:.1f}s (down: {sorted(down)}) — "
                    "no recovery/restore happened"
                )
            yield self.sim.timeout(self.FENCE_POLL_S)
            waited += self.FENCE_POLL_S

    def _migration_wait(self, inode: int, stripes):
        """Hold a *new* op while any touched stripe is mid-migration.

        Mirrors :meth:`_fence_wait` for elastic rebalances: the rebalance
        plane fences stripes whose placement is changing, and clients hold
        new foreground ops until the flip commits.  Zero-cost when nothing
        is migrating (no yield, no event).  Runs once per logical op,
        *before* the op registers in the cluster's in-flight refcount —
        registered ops (and their crash retries) must keep draining, or the
        rebalancer's quiesce would deadlock against this fence.
        """
        migrating = self.cluster.migrating_stripes
        if not migrating:
            return
        waited = 0.0
        while any((inode, s) in migrating for s in stripes):
            if waited >= self.FENCE_BUDGET_S:
                raise RuntimeError(
                    f"{self.name}: stripes {sorted(stripes)} of inode {inode} "
                    f"migration-fenced for {waited:.1f}s — rebalance never "
                    "committed"
                )
            yield self.sim.timeout(self.FENCE_POLL_S)
            waited += self.FENCE_POLL_S

    def _retry_downed(self, make_attempt, counter: str):
        """Run ``make_attempt()`` (a generator) to completion, retrying
        transient transport faults (:data:`TRANSIENT_RPC_ERRORS` — a host
        down, or a lossy link dropping the request) with paced backoff
        until the budget runs out.

        The shared failure-path scaffold of :meth:`update` and
        :meth:`read`: a crash racing an issued op fails it mid-flight; the
        op retries whole once the cluster heals.  ``counter`` names the
        per-logical-op retry counter to bump (once, however many attempts
        it takes).
        """
        retried = 0.0
        while True:
            try:
                result = yield from make_attempt()
                return result
            except TRANSIENT_RPC_ERRORS:
                if retried >= self.FENCE_BUDGET_S:
                    raise
                if retried == 0.0:
                    setattr(self, counter, getattr(self, counter) + 1)
                yield self.sim.timeout(self.FENCE_POLL_S)
                retried += self.FENCE_POLL_S

    def update(self, inode: int, offset: int, data: np.ndarray):
        """The measured path: route each extent to its data-block OSD.

        Safe to run many times concurrently from one client (each call is
        its own process with no shared mutable state beyond counters) —
        that is what open-loop generators with ``iodepth > 1`` do.

        Failure handling: updates touching a stripe with a down member wait
        for it to heal (:meth:`_fence_wait`), and a crash racing an issued
        update (:class:`HostDownError`) is retried whole once the fence
        clears.  Re-sent extents are idempotent end-to-end: the data bytes
        are the same, so every strategy's recomputed parity delta is zero
        for extents that already landed.
        """
        data = as_payload(data)
        start = self.sim.now
        self.inflight_updates += 1
        self.peak_inflight_updates = max(
            self.peak_inflight_updates, self.inflight_updates
        )
        try:
            if self.cluster.config.client_overhead_s > 0:
                yield float(self.cluster.config.client_overhead_s)
            extents = self.cluster.stripe_map.extents(inode, offset, data.size)
            stripes = {ext.addr.stripe for ext in extents}
            yield from self._migration_wait(inode, stripes)
            state = {"fenced": False}  # across every retry attempt

            def attempt():
                if (yield from self._fence_wait(inode, stripes)):
                    state["fenced"] = True
                if len(extents) == 1:
                    # Single-extent fast path (the overwhelmingly common
                    # case for small updates): run the RPC inline instead
                    # of spawning a child process plus an AllOf barrier.
                    ext = extents[0]
                    osd = self.cluster.osd_of_block(
                        inode, ext.addr.stripe, ext.addr.block_index
                    )
                    yield from self.rpc(
                        osd,
                        "update",
                        {"key": ext.addr.key(), "offset": ext.offset, "data": data},
                        nbytes=ext.length,
                    )
                    return
                acks = []
                pos = 0
                for ext in extents:
                    payload = data[pos : pos + ext.length]
                    pos += ext.length
                    osd = self.cluster.osd_of_block(
                        inode, ext.addr.stripe, ext.addr.block_index
                    )
                    acks.append(
                        self.sim.process(
                            self.rpc(
                                osd,
                                "update",
                                {
                                    "key": ext.addr.key(),
                                    "offset": ext.offset,
                                    "data": payload,
                                },
                                nbytes=ext.length,
                            )
                        )
                    )
                yield AllOf(self.sim, acks)

            self.cluster.note_ops_begin(inode, stripes)
            try:
                yield from self._retry_downed(attempt, "update_retries")
            finally:
                self.cluster.note_ops_end(inode, stripes)
            if state["fenced"]:
                self.fenced_updates += 1
        finally:
            self.inflight_updates -= 1
        self.update_latency.record(self.sim.now, self.sim.now - start)

    def submit_update(self, inode: int, offset: int, data: np.ndarray):
        """Spawn :meth:`update` as its own process and return it (pipelined).

        Callers join the returned process (or an ``AllOf`` over several) to
        wait for completion; issuing more before joining overlaps them.
        """
        return self.sim.process(
            self.update(inode, offset, data), name=f"{self.name}.update"
        )

    def read(self, inode: int, offset: int, length: int, down: Optional[set] = None):
        """Range read assembled from per-block reads (generator).

        ``down`` is the client's view of unavailable OSDs — the cluster's
        ``down_osds`` (the MDS membership map clients would poll) is always
        merged in; extents whose home OSD is down are served by a *degraded
        read* — decode from any k surviving blocks of the stripe.  A crash
        racing an issued read is retried against the updated down-set.
        """
        start = self.sim.now
        if self.cluster.config.client_overhead_s > 0:
            yield float(self.cluster.config.client_overhead_s)
        extents = self.cluster.stripe_map.extents(inode, offset, length)
        stripes = {ext.addr.stripe for ext in extents}
        # Reads fence on migrating stripes too: a read racing the placement
        # flip could pull a block from a home that just went stale, and an
        # unfenced open-loop read stream would keep the rebalancer's
        # quiesce from ever draining.
        yield from self._migration_wait(inode, stripes)

        def attempt():
            down_now = set(self.cluster.down_osds) | set(down or ())
            if len(extents) == 1 and not down_now:
                # Single-extent healthy-path read: no child process, no
                # AllOf barrier — just the one RPC.
                ext = extents[0]
                osd = self.cluster.osd_of_block(
                    inode, ext.addr.stripe, ext.addr.block_index
                )
                piece = yield from self._read_one(
                    osd, ext.addr.key(), ext.offset, ext.length
                )
                return [piece], 0
            procs = []
            n_degraded = 0
            for ext in extents:
                osd = self.cluster.osd_of_block(inode, ext.addr.stripe, ext.addr.block_index)
                if osd in down_now:
                    n_degraded += 1
                    procs.append(
                        self.sim.process(
                            self._degraded_read(
                                inode, ext.addr.stripe, ext.addr.block_index,
                                ext.offset, ext.length, down_now,
                            )
                        )
                    )
                else:
                    procs.append(
                        self.sim.process(
                            self._read_one(osd, ext.addr.key(), ext.offset, ext.length)
                        )
                    )
            pieces = yield AllOf(self.sim, procs)
            return pieces, n_degraded

        # Only the attempt that completed counts toward degraded stats.
        self.cluster.note_ops_begin(inode, stripes)
        try:
            pieces, n_degraded = yield from self._retry_downed(attempt, "read_retries")
        finally:
            self.cluster.note_ops_end(inode, stripes)
        out = concat_payloads(pieces)
        latency = self.sim.now - start
        self.read_latency.record(self.sim.now, latency)
        if n_degraded:
            self.degraded_reads += 1
            self.degraded_read_latency.record(self.sim.now, latency)
        return out

    def _read_one(self, osd: str, key, offset: int, length: int):
        reply = yield from self.rpc(
            osd, "read", {"key": key, "offset": offset, "length": length}, nbytes=24
        )
        return reply["data"]

    def _degraded_read(
        self, inode: int, stripe: int, lost_index: int, offset: int, length: int, down: set
    ):
        """Decode one lost block's range from k surviving full blocks.

        Degraded reads are the expensive path the paper's recovery story
        protects: k whole-block transfers plus a decode for every range on
        a failed OSD.  Survivors' logs must have drained for the parity to
        be current — callers recover-or-drain first, as §2.3.2 requires.
        """
        cfg = self.cluster.config
        names = self.cluster.placement(inode, stripe)
        sources = [
            (b, names[b]) for b in range(cfg.k + cfg.m) if names[b] not in down
        ][: cfg.k]
        if len(sources) < cfg.k:
            raise RuntimeError(
                f"stripe ({inode},{stripe}) has only {len(sources)} live blocks; "
                f"unrecoverable with k={cfg.k}"
            )
        pulls = [
            self.sim.process(
                self._read_one(osd, (inode, stripe, b), 0, cfg.block_size)
            )
            for b, osd in sources
        ]
        blocks = yield AllOf(self.sim, pulls)
        shards = {b: blk for (b, _), blk in zip(sources, blocks)}
        rebuilt = self.cluster.codec.reconstruct(shards, [lost_index])[lost_index]
        return rebuilt[offset : offset + length]
