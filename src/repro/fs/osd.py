"""The object storage device server.

An OSD stores blocks on one device, hosts one update-strategy instance,
and serves the core RPCs:

* ``write_block`` — normal (first) writes of whole blocks;
* ``read``        — range reads, overlaid with logged updates when the
  strategy keeps a read cache;
* ``update``      — the strategy's synchronous update path.

Strategies register additional RPC kinds (delta forwards, log replication,
parity appends) on construction.
"""

from __future__ import annotations

from typing import Optional

from repro.dataplane import assemble_overlay
from repro.devices.base import StorageDevice
from repro.fs.blockstore import BlockStore
from repro.fs.messages import HostDownError, Message, RpcHost
from repro.sim.resources import KeyedLock

# Serving a read fully from the in-memory log index costs roughly a memory
# copy + index probe, not a device I/O.
CACHE_HIT_LATENCY = 2e-6


class OSD(RpcHost):
    """One storage server node."""

    def __init__(self, sim, fabric, name, cluster, device: StorageDevice, strategy_factory):
        super().__init__(sim, fabric, name)
        self.cluster = cluster
        self.device = device
        self.store = BlockStore(
            sim,
            device,
            cluster.config.block_size,
            ghost=cluster.config.ghost_dataplane,
        )
        self.register("write_block", self._h_write_block)
        self.register("read", self._h_read)
        self.register("update", self._h_update)
        self.updates_served = 0
        self.reads_served = 0
        self.cache_hits = 0
        # Per-(inode, stripe) update locks.  In-place strategies wrap their
        # read-modify-write critical sections in these (via
        # UpdateStrategy.serialize_stripe) so pipelined same-stripe updates
        # serialize FIFO instead of racing the parity RMW; log-structured
        # strategies never touch them (XOR-delta appends commute).
        self.stripe_locks = KeyedLock(sim, name=f"{name}.stripes")
        self._heartbeat_interval: Optional[float] = None
        self._heartbeat_proc = None
        # The strategy registers its handlers in its constructor, so build
        # it last.
        self.strategy = strategy_factory(self)

    @property
    def index(self) -> int:
        return int(self.name[3:])

    # ------------------------------------------------------------------
    # failure / restart
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop this OSD, then reclaim any stripe locks it died with.

        Aborted handlers release their per-stripe locks through ``finally``
        as the interrupt unwinds them, but a handler interrupted while
        *queued* on a lock — or granted one in the same instant it dies —
        would leave lock state owned by a corpse, wedging every later
        same-stripe writer.  A reaper runs after all the interrupt events of
        this instant have fired and force-resets whatever is left.
        """
        super().crash()
        # The heartbeat dies with the node — and must not resurrect when
        # recovery revives the serving plane for the replica-driven drain
        # (a dead node's stand-in replica must not claim liveness, or the
        # MDS would never flag the failure).  Only restart() re-boots it.
        if self._heartbeat_proc is not None and self._heartbeat_proc.is_alive:
            self._heartbeat_proc.interrupt("crash")
        locks = self.stripe_locks

        def reap():
            # One zero-delay hop: lets same-instant releases/grants from the
            # dying handlers land first, so we only reset true leftovers.
            yield self.sim.timeout(0.0)
            locks.force_reset(HostDownError(self.name, "stripe lock holder crashed"))

        self.sim.process(reap(), name=f"{self.name}.lock-reap")

    def start_heartbeat(self, interval: float = 1.0) -> None:
        """Boot (or re-boot after restart) the MDS heartbeat process."""
        self._heartbeat_interval = interval
        if self._heartbeat_proc is not None and self._heartbeat_proc.is_alive:
            return
        self._heartbeat_proc = self.sim.process(
            self.heartbeat_loop(interval), name=f"{self.name}.heartbeat"
        )

    def restart(self) -> None:
        """Bring a stopped/crashed OSD back into service.

        Restores the serving plane, background recyclers and (if one was
        ever started) the heartbeat.  Block contents are whatever the store
        currently holds — recovery installs rebuilt blocks before calling
        this.
        """
        self.start()
        self.strategy.start_background()
        if self._heartbeat_interval is not None:
            self.start_heartbeat(self._heartbeat_interval)

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _h_write_block(self, msg: Message):
        key = msg.payload["key"]
        data = msg.payload["data"]
        yield from self.store.write_block(key, data, pattern="seq")
        return {"ok": True}, 8

    def _h_update(self, msg: Message):
        key = msg.payload["key"]
        offset = msg.payload["offset"]
        data = msg.payload["data"]
        yield from self.strategy.on_update(key, offset, data)
        self.updates_served += 1
        return {"ok": True}, 8

    def _h_read(self, msg: Message):
        key = msg.payload["key"]
        offset = msg.payload["offset"]
        length = msg.payload["length"]
        data = yield from self.read_range_with_overlay(key, offset, length)
        self.reads_served += 1
        return {"data": data}, length

    # ------------------------------------------------------------------
    def read_range_with_overlay(self, key, offset: int, length: int):
        """Read a block range, overlaying any logged-but-unrecycled bytes.

        Full log hits skip the device entirely (the read-cache effect);
        partial hits pay the device read and patch the fragments on top.
        """
        overlay = self.strategy.read_overlay(key, offset, length)
        if overlay:
            # Snapshot the fragments *before* any yield: they are views
            # into live log-segment buffers, which concurrent inserts may
            # fold into in place — the read must return the bytes as of
            # lookup time, not whatever lands during its simulated wait.
            covered = sum(frag.size for _, frag in overlay)
            if covered == length:
                self.cache_hits += 1
                out = assemble_overlay(length, offset, overlay)
                yield CACHE_HIT_LATENCY
                return out
            overlay = [(off, frag.copy()) for off, frag in overlay]
        base = yield from self.store.read_range(key, offset, length, pattern="rand")
        # ``base`` is a read-only view of the live block; the reply payload
        # crosses transfer yields, so snapshot it (and patch overlay
        # fragments into the snapshot, never into the store).
        base = base.copy()
        if overlay:
            for off, frag in overlay:
                base[off - offset : off - offset + frag.size] = frag
        return base

    # ------------------------------------------------------------------
    def heartbeat_loop(self, interval: float = 1.0):
        """Optional heartbeat process (started by recovery experiments)."""
        while self.running:
            yield from self.rpc("mds", "heartbeat", {}, nbytes=8)
            yield self.sim.sleep(interval)
