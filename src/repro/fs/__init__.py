"""ECFS: the erasure-coded cluster file system (paper §4).

Components mirror Fig. 4:

* :class:`~repro.fs.mds.MDS` — namespace, placement authority, heartbeats;
* :class:`~repro.fs.osd.OSD` — block storage + the update-strategy host;
* :class:`~repro.fs.client.Client` — striping, encoding, the POSIX-ish API;
* :class:`~repro.fs.blockstore.BlockStore` — per-OSD block payloads mapped
  onto device offsets;
* :mod:`repro.fs.messages` — the RPC substrate over :mod:`repro.net`.

The file system is *functional*: blocks hold real bytes, parity is real RS
parity, and every experiment can assert stripe consistency after log drain.
"""

from repro.fs.blockstore import BlockStore
from repro.fs.client import Client
from repro.fs.mds import MDS, FileMeta
from repro.fs.messages import Message, RpcHost
from repro.fs.osd import OSD

__all__ = ["BlockStore", "Client", "FileMeta", "MDS", "Message", "OSD", "RpcHost"]
