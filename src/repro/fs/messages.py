"""RPC over the simulated fabric.

Every node (MDS, OSD, client) is an :class:`RpcHost` with a mailbox; a
dispatcher process pops messages and spawns one handler process per message,
so a node serves requests concurrently while its devices and NIC provide the
real back-pressure.

``rpc`` is request/response (the caller waits for the handler's reply and
pays both transfer directions); ``send`` is one-way fire-and-forget used for
background notifications.

Failure semantics (the failure-injection scenarios build on these):

* a host that is *stopped* (``stop()``, transient maintenance) blocks new
  callers until it restarts — connections retry at the transport level, and
  in-flight handlers run to completion;
* a host that has *crashed* (``crash()``, fail-stop) refuses new calls with
  :class:`HostDownError` immediately, aborts its in-flight handlers and
  fails their reply events, and fails every request queued in its mailbox.
  Callers must treat a :class:`HostDownError` as "the op may or may not
  have been applied" and recover accordingly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, Tuple

from repro.net.fabric import Fabric, LinkLossError
from repro.sim.core import Simulator
from repro.sim.events import AnyOf, Event, Interrupt
from repro.sim.resources import Store

# Fixed protocol overhead charged per message in addition to payload bytes.
MSG_OVERHEAD = 64

Handler = Callable[["Message"], Generator[Event, Any, Optional[Tuple[dict, int]]]]


class HostDownError(RuntimeError):
    """An RPC could not complete because the destination host is down.

    Raised in the *caller*: either fail-fast at connect time (the host has
    crashed), or when the host crashes while the request is queued or being
    served.  The operation may have been partially applied on the dead
    host — callers retry idempotently or rely on post-recovery repair.
    """

    def __init__(self, host: str, detail: str = ""):
        super().__init__(f"host {host!r} is down{': ' + detail if detail else ''}")
        self.host = host


# Transport faults a caller may retry: the destination is down but will
# heal (HostDownError), or a lossy degraded link ate the request before
# delivery (LinkLossError — the handler never ran, so a retry is safe).
TRANSIENT_RPC_ERRORS = (HostDownError, LinkLossError)


class Message:
    """One RPC request in flight.

    A plain slotted class (not a dataclass): one is allocated per RPC, so
    construction cost is part of the per-op fast path.
    """

    __slots__ = ("kind", "src", "dst", "payload", "nbytes", "reply_event", "sent_at")

    def __init__(
        self,
        kind: str,
        src: str,
        dst: str,
        payload: dict,
        nbytes: int,
        reply_event: Optional[Event] = None,
        sent_at: float = 0.0,
    ):
        self.kind = kind
        self.src = src
        self.dst = dst
        self.payload = payload
        self.nbytes = nbytes
        self.reply_event = reply_event
        self.sent_at = sent_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Message {self.kind} {self.src}->{self.dst} {self.nbytes}B>"


class RpcHost:
    """Base class for every networked node in the cluster."""

    # Total virtual-time budget a caller will wait for a stopped (not
    # crashed) host to restart: converts a never-restarted host from a
    # silent hang into a diagnosable error.  Waiters sleep on the host's
    # state-change event, so the budget costs one timer, not a poll loop.
    CONNECT_BUDGET_S = 60.0

    def __init__(self, sim: Simulator, fabric: Fabric, name: str):
        self.sim = sim
        self.fabric = fabric
        self.name = name
        fabric.attach(name)
        self.mailbox: Store = Store(sim, name=f"{name}.mbox")
        self.handlers: Dict[str, Handler] = {}
        self.peers: Dict[str, "RpcHost"] = {}
        self._dispatcher = None
        self.running = False
        self.crashed = False
        # In-flight handler processes, so a crash can abort them and fail
        # their callers instead of leaving replies pending forever.
        self._inflight: Dict[Any, "Message"] = {}
        self._reply_kinds: Dict[str, str] = {}
        # Fired (and replaced) on every liveness transition — start() and
        # crash() — so connect-waiters blocked on a stopped host wake
        # exactly when its state changes instead of busy-polling.
        self._state_change: Optional[Event] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def register(self, kind: str, handler: Handler) -> None:
        if kind in self.handlers:
            raise ValueError(f"handler for {kind!r} already registered on {self.name}")
        self.handlers[kind] = handler

    def connect(self, peers: Dict[str, "RpcHost"]) -> None:
        """Install the cluster-wide name -> host routing table."""
        self.peers = peers

    def start(self) -> None:
        """Boot the dispatcher process (idempotent)."""
        if not self.running:
            self.running = True
            self.crashed = False
            # A previous dispatcher's abandoned get() must not eat the first
            # message meant for the new one.
            self.mailbox.cancel_getters()
            self._dispatcher = self.sim.process(
                self._dispatch_loop(), name=f"{self.name}.dispatch"
            )
            self._notify_state_change()

    def _notify_state_change(self) -> None:
        ev = self._state_change
        if ev is not None:
            self._state_change = None
            ev.succeed()

    def _state_change_event(self) -> Event:
        """The event the next liveness transition (start/crash) will fire."""
        ev = self._state_change
        if ev is None:
            ev = self._state_change = Event(self.sim, name="state-change")
        return ev

    def stop(self) -> None:
        """Graceful stop: no new dispatches; in-flight handlers complete.

        Callers attempting new RPCs block at the transport until a restart
        (transient-outage semantics); queued mailbox messages are served
        when the host comes back.
        """
        self.running = False
        if self._dispatcher is not None and self._dispatcher.is_alive:
            self._dispatcher.interrupt("stop")
        self.mailbox.cancel_getters()

    def crash(self) -> None:
        """Fail-stop: abort in-flight handlers and fail all pending callers.

        New RPCs fail fast with :class:`HostDownError` until the host is
        restarted via :meth:`start`.
        """
        self.running = False
        self.crashed = True
        self._notify_state_change()
        if self._dispatcher is not None and self._dispatcher.is_alive:
            self._dispatcher.interrupt("crash")
        self.mailbox.cancel_getters()
        for proc, msg in list(self._inflight.items()):
            if proc.is_alive:
                proc.interrupt("crash")
            if msg.reply_event is not None and not msg.reply_event.triggered:
                msg.reply_event.fail(HostDownError(self.name, f"crashed serving {msg.kind}"))
        self._inflight.clear()
        for msg in self.mailbox.pop_all():
            if msg.reply_event is not None and not msg.reply_event.triggered:
                msg.reply_event.fail(HostDownError(self.name, f"crashed before {msg.kind}"))

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def _dispatch_loop(self):
        sim = self.sim
        mailbox = self.mailbox
        while self.running:
            msg = yield mailbox.get()
            self._spawn_handler(sim, msg)

    def _reply_kind(self, kind: str) -> str:
        """Cached ``<kind>.reply`` counter tags (no f-string per reply)."""
        tag = self._reply_kinds.get(kind)
        if tag is None:
            tag = self._reply_kinds[kind] = kind + ".reply"
        return tag

    def _spawn_handler(self, sim: Simulator, msg: "Message") -> None:
        inflight = self._inflight
        proc = sim.process(self._handle(msg), name=msg.kind)
        inflight[proc] = msg
        proc.add_callback(lambda _ev, p=proc: inflight.pop(p, None))

    def _deliver(self, msg: "Message") -> None:
        """Accept one inbound message.

        Fast path: a running host's dispatcher is by construction idle in
        ``mailbox.get()`` whenever a message arrives (it spawns handlers
        synchronously and immediately re-waits), so delivery can spawn the
        handler directly and skip the put -> get-event -> dispatcher-resume
        round trip.  Messages for a stopped host queue in the mailbox and
        are served by the dispatcher the restart boots.
        """
        if self.running and not self.crashed:
            self._spawn_handler(self.sim, msg)
        else:
            self.mailbox.put(msg)

    def _handle(self, msg: Message):
        handler = self.handlers.get(msg.kind)
        if handler is None:
            err = KeyError(f"{self.name} has no handler for {msg.kind!r}")
            if msg.reply_event is not None:
                msg.reply_event.fail(err)
                return
            raise err
        try:
            result = yield from handler(msg)
            if msg.reply_event is not None:
                payload, nbytes = result if result is not None else ({}, 0)
                yield from self.fabric.transfer(
                    self.name, msg.src, nbytes + MSG_OVERHEAD,
                    kind=self._reply_kind(msg.kind),
                )
                if not msg.reply_event.triggered:
                    msg.reply_event.succeed(payload)
        except Interrupt:
            # The host crashed under us: no reply transfer (the node is
            # dead); make sure the caller learns rather than hangs.
            if msg.reply_event is not None and not msg.reply_event.triggered:
                msg.reply_event.fail(
                    HostDownError(self.name, f"crashed serving {msg.kind}")
                )
            return
        except Exception as err:
            # Application-level failure: deliver it to the caller as the
            # RPC outcome instead of crashing the serving node.
            if msg.reply_event is not None:
                yield from self.fabric.transfer(
                    self.name, msg.src, MSG_OVERHEAD, kind=f"{msg.kind}.err"
                )
                if not msg.reply_event.triggered:
                    msg.reply_event.fail(err)
                return
            raise

    # ------------------------------------------------------------------
    # calling
    # ------------------------------------------------------------------
    def _route(self, dst: str) -> "RpcHost":
        try:
            return self.peers[dst]
        except KeyError:
            raise KeyError(f"{self.name} has no route to {dst!r}") from None

    def _connect(self, dst: str, host: "RpcHost"):
        """Wait for a stopped host; refuse a crashed one (generator).

        Models the transport: connections to a host down for transient
        maintenance sleep on the host's state-change event and wake exactly
        at its restart (the historical 1 ms busy-poll loop burned a kernel
        event per retry per waiter); a crashed host refuses instantly.
        Gives up with :class:`HostDownError` after ``CONNECT_BUDGET_S`` so
        an unrecovered host surfaces as an error, not a silent simulation
        hang.
        """
        deadline = self.sim.now + self.CONNECT_BUDGET_S
        while not host.running:
            if host.crashed:
                raise HostDownError(dst)
            remaining = deadline - self.sim.now
            if remaining <= 0:
                raise HostDownError(dst, "connect budget exhausted")
            yield AnyOf(
                self.sim,
                (host._state_change_event(), self.sim.timeout(remaining)),
            )

    def rpc(self, dst: str, kind: str, payload: dict, nbytes: int = 0):
        """Request/response call; returns the reply payload (generator)."""
        host = self._route(dst)
        while True:
            if not host.running:
                yield from self._connect(dst, host)
            yield from self.fabric.transfer(
                self.name, dst, nbytes + MSG_OVERHEAD, kind=kind
            )
            if host.running:
                break
            if host.crashed:
                # Went down while the request was on the wire.
                raise HostDownError(dst)
            # Stopped mid-transfer: retransmit once it is back.
        reply = Event(self.sim, name="reply")
        host._deliver(
            Message(kind, self.name, dst, payload, nbytes, reply, self.sim.now)
        )
        result = yield reply
        return result

    def rpc_with_retry(
        self,
        dst: str,
        kind: str,
        payload: dict,
        nbytes: int = 0,
        interval: float = 2e-3,
        budget: float = 120.0,
    ):
        """``rpc`` that retries transient transport faults until they heal.

        For *background* pushes only (log recycle forwards): the work is
        owned by a detached worker with nobody upstream to retry it, and the
        destination is guaranteed to come back (recovery revives the serving
        plane of every down OSD, restores revive it outright).  Foreground
        paths must NOT use this — their callers own the retry policy.
        Note the op may be applied twice when a crash eats the reply of an
        applied request; post-recovery parity repair heals that, which is
        why this helper is reserved for crash-recoverable delta traffic.

        The budget is enforced against a deadline computed once from
        ``sim.now`` — accumulating ``waited += interval`` in floats drifts
        after thousands of retries and can over- or under-shoot the budget.
        """
        deadline = self.sim.now + budget
        while True:
            try:
                result = yield from self.rpc(dst, kind, payload, nbytes=nbytes)
                return result
            except TRANSIENT_RPC_ERRORS:
                if self.sim.now >= deadline:
                    raise
                yield float(interval)

    def send(self, dst: str, kind: str, payload: dict, nbytes: int = 0):
        """One-way message: pays the forward transfer only (generator).

        Sends to a crashed host are dropped (fire-and-forget); sends to a
        stopped host queue and are served at restart.
        """
        host = self._route(dst)
        yield from self.fabric.transfer(
            self.name, dst, nbytes + MSG_OVERHEAD, kind=kind
        )
        if host.crashed:
            return
        host._deliver(Message(kind, self.name, dst, payload, nbytes, None, self.sim.now))
